//! Write-path consistency regressions.
//!
//! * `delete_by_pk` must touch the base table *before* any index: a failing
//!   heap delete leaves every index, the primary map, and the heap exactly
//!   as they were (exercised with a fault-injecting `PageStore`).
//! * The planner must cost table cardinality from the live `heap.len()` and
//!   live per-column counts, not the append-only observed stats — after
//!   heavy deletion the seq-scan fallback stays correctly priced.

use hermit::core::{Database, PlanKind, Query, RangePredicate, SecondaryIndex};
use hermit::fault::FaultyPageStore;
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, F64Key, Schema, StorageError, TidScheme, Value};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")])
}

#[test]
fn failed_heap_delete_leaves_indexes_consistent() {
    // The shared fault-injection wrapper (poisoned reads are the
    // deterministic stand-in for a device error mid-statement).
    let store = Arc::new(FaultyPageStore::new(Arc::new(SimulatedPageStore::new())));
    let pool = Arc::new(BufferPool::new(Arc::<FaultyPageStore>::clone(&store), 8));
    let table = PagedTable::new(schema(), Arc::clone(&pool));
    let mut db = Database::new_paged(table, 0);
    for i in 0..2_000i64 {
        let m = i as f64;
        db.insert(&[Value::Int(i), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();

    // Evict everything (flushing dirty frames), then poison the device: the
    // delete's single fetch-and-tombstone page access must fail.
    pool.clear().unwrap();
    store.set_fail_reads(true);
    let err = db.delete_by_pk(500);
    assert!(matches!(err, Err(StorageError::Io(_))), "expected injected I/O failure, got {err:?}");

    // Nothing may have changed: the row is live, the primary still maps it,
    // and the host index still carries its entry. (Under the old ordering —
    // indexes maintained before the heap delete — the index entries would
    // already be gone here, leaving a live row unreachable by index.)
    store.set_fail_reads(false);
    assert_eq!(db.len(), 2_000, "heap must be untouched by the failed delete");
    assert!(db.primary().get(500).is_some(), "primary entry must survive");
    let SecondaryIndex::Baseline(host_tree) = db.index(1).unwrap() else { unreachable!() };
    assert!(host_tree.read().contains_key(&F64Key(1_000.0)), "host index entry must survive");
    let r = db.execute(&Query::filter(RangePredicate::point(2, 500.0)));
    assert_eq!(r.rows.len(), 1, "row must remain reachable through the Hermit route");

    // Once the device heals, the same delete succeeds and the indexes
    // follow the base table.
    db.delete_by_pk(500).unwrap();
    assert_eq!(db.len(), 1_999);
    assert!(db.primary().get(500).is_none());
    let SecondaryIndex::Baseline(host_tree) = db.index(1).unwrap() else { unreachable!() };
    assert!(!host_tree.read().contains_key(&F64Key(1_000.0)));
    let r = db.execute(&Query::filter(RangePredicate::point(2, 500.0)));
    assert!(r.rows.is_empty());
}

#[test]
fn double_delete_reports_missing_pk_without_index_damage() {
    let mut db = Database::new(schema(), 0, TidScheme::Logical);
    for i in 0..100i64 {
        db.insert(&[Value::Int(i), Value::Float(2.0 * i as f64), Value::Float(i as f64)]).unwrap();
    }
    db.create_baseline_index(2, false).unwrap();
    db.delete_by_pk(42).unwrap();
    assert_eq!(db.delete_by_pk(42), Err(StorageError::PkNotFound { pk: 42 }));
    let SecondaryIndex::Baseline(tree) = db.index(2).unwrap() else { unreachable!() };
    assert_eq!(tree.read().len(), 99, "double delete must not touch other entries");
}

/// The planner's table cardinality must track deletions: the scan fallback
/// is priced from the live `heap.len()`, and per-column live counts shrink
/// with deletes, so a mostly-emptied table plans (and costs) like the small
/// table it now is — not like the big one the append-only stats remember.
#[test]
fn planner_costs_track_heavy_deletion() {
    let mut db = Database::new(schema(), 0, TidScheme::Physical);
    for i in 0..50_000i64 {
        let m = i as f64;
        db.insert(&[Value::Int(i), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
    }
    db.create_baseline_index(2, false).unwrap();

    // A wide predicate (~40% of the domain): the scan wins while the table
    // is large, because the index path pays per candidate.
    let wide = Query::filter(RangePredicate::range(2, 0.0, 20_000.0));
    let before = db.plan(&wide);
    assert_eq!(before.kind(), PlanKind::Scan);
    assert_eq!(before.heap_rows, 50_000);

    // Delete 99% of the table.
    for pk in 0..49_500i64 {
        db.delete_by_pk(pk).unwrap();
    }
    let after = db.plan(&wide);
    assert_eq!(after.heap_rows, 500, "plan-time cardinality must be the live row count");
    assert!(
        after.est_cost < before.est_cost / 50.0,
        "scan cost must shrink with the table: {} -> {}",
        before.est_cost,
        after.est_cost
    );
    // The same wide predicate now matches none of the 500 survivors
    // (they live in [49_500, 50_000)), and execution agrees with the plan.
    assert!(db.execute(&wide).rows.is_empty());

    // A predicate over the survivors: estimates are floored on the live
    // non-null count, so the index path stays sensibly priced.
    let live = Query::filter(RangePredicate::range(2, 49_500.0, 49_999.0));
    let plan = db.plan(&live);
    assert!(plan.est_candidates <= 500.0 + 1.0, "candidates cannot exceed the live table");
    assert_eq!(db.execute(&live).rows.len(), 500);
}

/// A column whose live values were all deleted matches nothing, even though
/// its append-only range stats still overlap the predicate.
#[test]
fn emptied_table_plans_zero_rows() {
    let db = Database::new(schema(), 0, TidScheme::Physical);
    for i in 0..1_000i64 {
        db.insert(&[Value::Int(i), Value::Float(1.0), Value::Float(i as f64)]).unwrap();
    }
    for pk in 0..1_000i64 {
        db.delete_by_pk(pk).unwrap();
    }
    let plan = db.plan(&Query::filter(RangePredicate::range(2, 0.0, 999.0)));
    assert_eq!(plan.heap_rows, 0);
    assert_eq!(plan.est_rows, 0.0, "no live values -> no estimated rows");
}
