//! Property-based planner equivalence: for random multi-conjunct queries
//! over every substrate/tid-scheme combination, the planner-executed
//! results must equal a full-scan oracle computed from the generator
//! formulas — whatever access path the planner picks — and the batched
//! executor must agree with the scalar executor bit-for-bit on rows,
//! false-positive and unresolved counts. Includes the unindexed-column
//! case that, pre-planner, silently returned an empty result.

use hermit::core::{BatchOptions, Database, PlanKind, Query, RangePredicate};
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, RowLoc, Schema, TidScheme, Value};
use proptest::prelude::*;
use std::sync::Arc;

const PK: usize = 0;
const HOST: usize = 1;
const TARGET: usize = 2;
const OTHER: usize = 3;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
        ColumnDef::float("other"),
    ])
}

/// Row generator shared by the builder and the oracle. `host` correlates
/// with `target` except for periodic wild outliers; `other` is
/// deterministic hash noise and stays unindexed.
fn row_values(i: usize) -> [f64; 4] {
    let target = i as f64;
    let host = if i.is_multiple_of(53) { -4.0e6 } else { 2.0 * target + 10.0 };
    let other = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64 / 16.0;
    [i as f64, host, target, other]
}

/// Substrate/tid-scheme combinations under test (the paged substrate is
/// physical-pointer only, like PostgreSQL).
fn build_db(kind: u8, n: usize, delete_every: usize) -> Database {
    let mut db = match kind % 3 {
        0 => Database::new(schema(), PK, TidScheme::Logical),
        1 => Database::new(schema(), PK, TidScheme::Physical),
        _ => {
            let pages = (n / 200 + 8).next_power_of_two();
            let pool = Arc::new(BufferPool::new(Arc::new(SimulatedPageStore::new()), pages));
            Database::new_paged(PagedTable::new(schema(), pool), PK)
        }
    };
    for i in 0..n {
        let v = row_values(i);
        db.insert(&[
            Value::Int(i as i64),
            Value::Float(v[1]),
            Value::Float(v[2]),
            Value::Float(v[3]),
        ])
        .unwrap();
    }
    db.create_baseline_index(HOST, true).unwrap();
    db.create_hermit_index(TARGET, HOST).unwrap();
    if delete_every > 0 {
        for pk in (0..n).step_by(delete_every) {
            db.delete_by_pk(pk as i64).unwrap();
        }
    }
    db
}

fn is_deleted(i: usize, delete_every: usize) -> bool {
    delete_every > 0 && i.is_multiple_of(delete_every)
}

/// Full-scan oracle from the generator formulas (independent of every
/// index and executor under test).
fn oracle(db: &Database, n: usize, delete_every: usize, preds: &[RangePredicate]) -> Vec<RowLoc> {
    let mut out: Vec<RowLoc> = (0..n)
        .filter(|&i| !is_deleted(i, delete_every))
        .filter(|&i| {
            let v = row_values(i);
            preds.iter().all(|p| v[p.column] >= p.lb && v[p.column] <= p.ub)
        })
        .map(|i| db.primary().get(i as i64).expect("live row resolves"))
        .collect();
    out.sort_unstable();
    out
}

fn sorted(rows: &[RowLoc]) -> Vec<RowLoc> {
    let mut v = rows.to_vec();
    v.sort_unstable();
    v
}

/// `(column, lb, width, invert-roll)` → predicate; one roll in eight
/// inverts the bounds to exercise the definitionally-empty case.
type PredSpec = (usize, f64, f64, u8);

fn pred_of(spec: PredSpec) -> RangePredicate {
    let (col, lb, width, invert) = spec;
    if invert % 8 == 0 {
        RangePredicate::range(col, lb + width, lb)
    } else {
        RangePredicate::range(col, lb, lb + width)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Rows from `execute` match the oracle exactly; `execute_batch`
    /// (sequential and 3-threaded) matches `execute` on rows *and*
    /// false-positive/unresolved counts, for every substrate and scheme.
    #[test]
    fn planner_execution_matches_full_scan_oracle(
        kind in 0u8..3,
        n in 300usize..700,
        delete_every in prop_oneof![Just(0usize), 11usize..40],
        specs in proptest::collection::vec(
            (0usize..4, -100.0f64..1500.0, 0.0f64..400.0, 0u8..8),
            1..4,
        ),
    ) {
        let db = build_db(kind, n, delete_every);
        let preds: Vec<RangePredicate> = specs.into_iter().map(pred_of).collect();
        let mut q = Query::new();
        for &p in &preds {
            q = q.and(p);
        }

        let expect = oracle(&db, n, delete_every, &preds);
        let scalar = db.execute(&q);
        prop_assert_eq!(
            sorted(&scalar.rows),
            expect.clone(),
            "scalar execute vs oracle (kind={}, plan={:?})",
            kind,
            db.plan(&q).kind()
        );

        for threads in [1usize, 3] {
            let batched =
                &db.execute_batch(std::slice::from_ref(&q), &BatchOptions::with_threads(threads))[0];
            prop_assert_eq!(sorted(&batched.rows), expect.clone(), "batched rows (t={})", threads);
            prop_assert_eq!(
                batched.false_positives, scalar.false_positives,
                "false positives (t={})", threads
            );
            prop_assert_eq!(batched.unresolved, scalar.unresolved, "unresolved (t={})", threads);
        }
    }

    /// Queries touching only the unindexed column take the scan plan and
    /// return the oracle rows — never the old silent empty result.
    #[test]
    fn unindexed_queries_scan_and_match_oracle(
        kind in 0u8..3,
        n in 300usize..700,
        lb in 0.0f64..900.0,
        width in 10.0f64..500.0,
    ) {
        let db = build_db(kind, n, 0);
        let pred = RangePredicate::range(OTHER, lb, lb + width);
        let plan = db.plan(&Query::filter(pred));
        prop_assert_eq!(plan.kind(), PlanKind::Scan);
        let expect = oracle(&db, n, 0, &[pred]);
        let r = db.execute_plan(&plan);
        prop_assert_eq!(sorted(&r.rows), expect.clone());
        prop_assert_eq!(r.false_positives, 0);
        // And the legacy surface still silently returns nothing — that
        // contract belongs to the wrappers alone now.
        prop_assert!(db.lookup_range(pred, None).rows.is_empty());
        if !expect.is_empty() {
            prop_assert!(!r.rows.is_empty(), "scan fallback must surface the rows");
        }
    }
}
