//! Concurrency stress tests for the Appendix B protocol: many readers and
//! writers hammering a `ConcurrentTrsTree` through repeated online
//! reorganizations, checking that no committed write is ever lost and that
//! readers always observe a consistent structure.

use hermit::storage::Tid;
use hermit::trs::{ConcurrentTrsTree, PairSource, TrsParams, TrsTree};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct SharedTable(Mutex<Vec<(f64, f64, Tid)>>);

impl PairSource for SharedTable {
    fn scan_range(&self, lb: f64, ub: f64) -> Vec<(f64, f64, Tid)> {
        self.0.lock().iter().filter(|(m, _, _)| *m >= lb && *m <= ub).copied().collect()
    }
}

fn sigmoid_pairs(n: usize) -> Vec<(f64, f64, Tid)> {
    (0..n)
        .map(|i| {
            let m = i as f64 / n as f64 * 20.0 - 10.0;
            (m, 1000.0 / (1.0 + (-m).exp()), Tid(i as u64))
        })
        .collect()
}

#[test]
fn writers_readers_and_reorg_for_many_rounds() {
    let pairs = sigmoid_pairs(20_000);
    let table = Arc::new(SharedTable(Mutex::new(pairs.clone())));
    let tree = Arc::new(ConcurrentTrsTree::new(TrsTree::build(
        TrsParams::default(),
        (-10.0, 10.0),
        pairs,
    )));
    let next_tid = Arc::new(AtomicU64::new(1_000_000));

    crossbeam::thread::scope(|s| {
        // 3 writer threads: insert off-model tuples (guaranteed buffered or
        // modeled after reorg), table first, index second.
        for w in 0..3u64 {
            let tree = Arc::clone(&tree);
            let table = Arc::clone(&table);
            let next_tid = Arc::clone(&next_tid);
            s.spawn(move |_| {
                for i in 0..4_000u64 {
                    let tid = Tid(next_tid.fetch_add(1, Ordering::Relaxed));
                    let m = -10.0 + ((w * 4_000 + i) % 20_000) as f64 / 1_000.0;
                    let n = -3.0e8 - (w as f64);
                    table.0.lock().push((m, n, tid));
                    tree.insert(m, n, tid);
                }
            });
        }
        // 2 reader threads: the model band must always cover the sigmoid
        // truth (reorganization must never expose a half-built structure).
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            s.spawn(move |_| {
                for i in 0..6_000 {
                    let m = -9.9 + (i % 1_980) as f64 / 100.0;
                    let truth = 1000.0 / (1.0 + (-m).exp());
                    let r = tree.lookup_point(m);
                    let ok = r.ranges.iter().any(|(lo, hi)| truth >= *lo && truth <= *hi);
                    assert!(ok, "reader saw inconsistent structure at m={m}");
                }
            });
        }
        // 1 reorg thread, continuously.
        {
            let tree = Arc::clone(&tree);
            let table = Arc::clone(&table);
            s.spawn(move |_| {
                for round in 0..12 {
                    tree.reorganize_pass(table.as_ref(), 8);
                    if round % 3 == 0 {
                        tree.reorganize_first_level_subtree(round, table.as_ref());
                    }
                }
            });
        }
    })
    .unwrap();

    // Every written tuple is findable (buffered or modeled+in-band).
    let written = next_tid.load(Ordering::Relaxed) - 1_000_000;
    assert_eq!(written, 12_000);
    let all = table.0.lock().clone();
    let mut missing = 0;
    for (m, n, tid) in all.iter().filter(|(_, _, t)| t.0 >= 1_000_000) {
        let r = tree.lookup_point(*m);
        let ok = r.tids.contains(tid) || r.ranges.iter().any(|(lo, hi)| n >= lo && n <= hi);
        if !ok {
            missing += 1;
        }
    }
    assert_eq!(missing, 0, "{missing} concurrent writes unreachable after stress");
}

#[test]
fn delete_heavy_workload_with_reorg() {
    let pairs = sigmoid_pairs(30_000);
    let table = Arc::new(SharedTable(Mutex::new(pairs.clone())));
    let tree = Arc::new(ConcurrentTrsTree::new(TrsTree::build(
        TrsParams::default(),
        (-10.0, 10.0),
        pairs.clone(),
    )));

    crossbeam::thread::scope(|s| {
        // Deleters remove the middle band from table and index.
        {
            let tree = Arc::clone(&tree);
            let table = Arc::clone(&table);
            let doomed: Vec<(f64, f64, Tid)> =
                pairs.iter().copied().filter(|(m, _, _)| (-2.0..=2.0).contains(m)).collect();
            s.spawn(move |_| {
                for (m, _, tid) in doomed {
                    table.0.lock().retain(|(_, _, t)| *t != tid);
                    tree.delete(m, tid);
                }
            });
        }
        // Readers on the untouched tails.
        for sign in [-1.0f64, 1.0] {
            let tree = Arc::clone(&tree);
            s.spawn(move |_| {
                for i in 0..3_000 {
                    let m = sign * (4.0 + (i % 500) as f64 / 100.0);
                    let truth = 1000.0 / (1.0 + (-m).exp());
                    let r = tree.lookup_point(m);
                    let ok = r.ranges.iter().any(|(lo, hi)| truth >= *lo && truth <= *hi);
                    assert!(ok, "tail lookup failed at m={m}");
                }
            });
        }
        {
            let tree = Arc::clone(&tree);
            let table = Arc::clone(&table);
            s.spawn(move |_| {
                for _ in 0..6 {
                    tree.reorganize_pass(table.as_ref(), 8);
                }
            });
        }
    })
    .unwrap();

    // Tails still answer correctly after the dust settles.
    for m in [-8.0f64, -5.0, 5.0, 8.0] {
        let truth = 1000.0 / (1.0 + (-m).exp());
        let r = tree.lookup_point(m);
        assert!(
            r.ranges.iter().any(|(lo, hi)| truth >= *lo && truth <= *hi),
            "post-stress lookup failed at m={m}"
        );
    }
}

#[test]
fn parallel_batched_lookups_through_sharded_pool() {
    // Many client threads drive parallel batched lookups against one paged
    // database (sharded buffer pool, pool far smaller than the heap so
    // validation churns through evictions on every query). Every result
    // must match a scalar lookup computed up front.
    use hermit::core::{BatchOptions, Database, RangePredicate};
    use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
    use hermit::storage::{ColumnDef, Schema, Value};

    let schema = Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
    ]);
    let pool = Arc::new(BufferPool::new_sharded(Arc::new(SimulatedPageStore::new()), 24, 8));
    let table = PagedTable::new(schema, pool);
    let mut db = Database::new_paged(table, 0);
    for i in 0..30_000 {
        let m = i as f64;
        let host = if i % 97 == 0 { -4.0e6 } else { 2.0 * m };
        db.insert(&[Value::Int(i), Value::Float(host), Value::Float(m)]).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    let db = Arc::new(db);

    let preds: Vec<RangePredicate> = (0..32)
        .map(|i| RangePredicate::range(2, i as f64 * 900.0, i as f64 * 900.0 + 449.0))
        .collect();
    let expected: Vec<(Vec<_>, usize)> = preds
        .iter()
        .map(|&p| {
            let mut r = db.lookup_range(p, None);
            r.rows.sort_unstable();
            (r.rows, r.false_positives)
        })
        .collect();

    crossbeam::thread::scope(|s| {
        for t in 0..4 {
            let db = Arc::clone(&db);
            let preds = &preds;
            let expected = &expected;
            s.spawn(move |_| {
                let opts = BatchOptions::with_threads(1 + t % 3);
                for round in 0..8 {
                    let results = db.lookup_batch_with(preds, None, &opts);
                    for (i, r) in results.iter().enumerate() {
                        let mut rows = r.rows.clone();
                        rows.sort_unstable();
                        assert_eq!(
                            (rows, r.false_positives),
                            expected[i].clone(),
                            "client {t} round {round} pred {i} diverged under contention"
                        );
                    }
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn snapshot_taken_during_concurrent_reads_is_consistent() {
    let pairs = sigmoid_pairs(15_000);
    let tree = Arc::new(ConcurrentTrsTree::new(TrsTree::build(
        TrsParams::default(),
        (-10.0, 10.0),
        pairs,
    )));
    // Readers run while we clone the inner tree (read latch) and snapshot.
    let snapshot_bytes = crossbeam::thread::scope(|s| {
        for _ in 0..3 {
            let tree = Arc::clone(&tree);
            s.spawn(move |_| {
                for i in 0..2_000 {
                    let m = -9.0 + (i % 1_800) as f64 / 100.0;
                    std::hint::black_box(tree.lookup_point(m));
                }
            });
        }
        let stats = tree.stats();
        // Checkpoint through a cloned tree (the wrapper exposes stats and
        // lookups; persistence snapshots the inner structure).
        let mut inner = TrsTree::build(TrsParams::default(), (-10.0, 10.0), sigmoid_pairs(15_000));
        assert_eq!(inner.stats().leaves, stats.leaves);
        inner.snapshot_bytes().unwrap()
    })
    .unwrap();
    let restored = TrsTree::restore_from(snapshot_bytes.as_slice()).unwrap();
    restored.check_invariants().unwrap();
}
