//! Concurrent multi-statement transaction stress suite, checked against
//! oracles.
//!
//! The properties under test are the transaction subsystem's contract
//! (see `hermit_core::txn`):
//!
//! * **No dirty reads, atomic publication** — a snapshot reader never
//!   observes an uncommitted row or a partially committed/rolled-back
//!   transaction, even with writers running full tilt (the visibility
//!   latch keeps the frozen overlay in lockstep with the heap).
//! * **No lost updates** — contended writes are first-writer-wins; every
//!   contested row is consumed exactly once and every winner's write
//!   survives.
//! * **Abort restores the exact pre-transaction state** across the heap,
//!   the primary index, baseline B+-trees, Hermit TRS-trees, and composite
//!   indexes, on both storage substrates and both tid schemes.
//! * **Loser rollback on recovery** — a transaction still open when the
//!   process dies is undone by `Database::open`, while committed
//!   transactions survive.
//! * **Abort on disconnect** — a server connection dropped mid-transaction
//!   leaves no trace.

use hermit::core::shared::SharedDatabase;
use hermit::core::{BatchOptions, CoreError, Database, DurabilityConfig, Query, QueryResult};
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, Schema, StorageError, TidScheme, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
        ColumnDef::float("other"),
    ])
}

/// Deterministic row shape: everything derives from the pk (every 17th row
/// is an off-model outlier, so the Hermit index's outlier buffer is under
/// test too).
fn row_for(pk: i64) -> Vec<Value> {
    let m = pk as f64;
    let host = if pk % 17 == 0 { -5.0e7 } else { 2.0 * m };
    vec![Value::Int(pk), Value::Float(host), Value::Float(m), Value::Float(10.0 * m)]
}

fn seed_db(rows: i64) -> Database {
    let mut db = Database::new(schema(), 0, TidScheme::Logical);
    for pk in 0..rows {
        db.insert(&row_for(pk)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    db
}

/// Sorted pks of a result, fetched from the heap the result came from.
fn result_pks(db: &Database, r: &QueryResult) -> Vec<i64> {
    let mut pks: Vec<i64> =
        r.rows.iter().map(|&loc| db.heap().value_f64(loc, 0).unwrap().unwrap() as i64).collect();
    pks.sort_unstable();
    pks
}

/// Writers commit or roll back whole 8-row transactions in a sentinel
/// target band while readers count the band: every snapshot must contain a
/// whole number of transactions (8·k rows), and the final state must be
/// exactly the committed transactions.
#[test]
fn committed_transactions_publish_atomically_to_readers() {
    const WRITERS: i64 = 3;
    const TXNS_PER_WRITER: i64 = 40;
    const ROWS_PER_TXN: i64 = 8;
    const BAND: f64 = 100_000.0;

    let shared = SharedDatabase::new(seed_db(4_000));
    let done = AtomicBool::new(false);
    let band_query = Query::new().range(2, BAND, BAND + 100_000.0);

    crossbeam::thread::scope(|s| {
        for w in 0..WRITERS {
            let shared = shared.clone();
            s.spawn(move |_| {
                for j in 0..TXNS_PER_WRITER {
                    let txn = shared.begin().unwrap();
                    let base = (w * TXNS_PER_WRITER + j) * ROWS_PER_TXN;
                    for k in 0..ROWS_PER_TXN {
                        let m = BAND + (base + k) as f64;
                        shared
                            .insert_txn(
                                txn,
                                &[
                                    Value::Int(1_000_000 + base + k),
                                    Value::Float(2.0 * m),
                                    Value::Float(m),
                                    Value::Float(10.0 * m),
                                ],
                            )
                            .unwrap();
                    }
                    if j % 2 == 0 {
                        shared.commit(txn).unwrap();
                    } else {
                        shared.rollback(txn).unwrap();
                    }
                }
            });
        }
        for r in 0..2 {
            let shared = shared.clone();
            let (done, band_query) = (&done, &band_query);
            s.spawn(move |_| {
                let mut observations = 0u64;
                while !done.load(Ordering::Relaxed) || observations < 50 {
                    let n = shared.execute(band_query).rows.len() as i64;
                    assert_eq!(
                        n % ROWS_PER_TXN,
                        0,
                        "reader {r} observed a partial transaction: {n} band rows"
                    );
                    observations += 1;
                }
            });
        }
        // Writer spawns above run to completion when the scope joins; flag
        // the readers once every writer thread has finished. crossbeam
        // scopes join in drop order, so emulate "writers done" by spawning
        // a watcher that begins after the writers were spawned — simplest
        // correct form: writers signal via a countdown.
        let shared2 = shared.clone();
        let done = &done;
        s.spawn(move |_| {
            // Wait until every transaction has been begun and closed.
            let expected_begins = (WRITERS * TXNS_PER_WRITER) as u64;
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                let c = shared2.txn_counters();
                if c.begins == expected_begins && c.active == 0 {
                    break;
                }
                assert!(Instant::now() < deadline, "writers stalled: {c:?}");
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    })
    .unwrap();

    // Final state: exactly the committed transactions' rows.
    let mut expected = Vec::new();
    for w in 0..WRITERS {
        for j in (0..TXNS_PER_WRITER).step_by(2) {
            let base = (w * TXNS_PER_WRITER + j) * ROWS_PER_TXN;
            expected.extend((0..ROWS_PER_TXN).map(|k| 1_000_000 + base + k));
        }
    }
    expected.sort_unstable();
    let got = result_pks(shared.db(), &shared.execute(&band_query));
    assert_eq!(got, expected, "final band contents diverged from the committed-txn oracle");
    let batched = &shared
        .db()
        .execute_batch(std::slice::from_ref(&band_query), &BatchOptions::with_threads(2))[0];
    assert_eq!(result_pks(shared.db(), batched), expected, "batched executor diverged");

    let c = shared.txn_counters();
    assert_eq!(c.begins, (WRITERS * TXNS_PER_WRITER) as u64);
    assert_eq!(c.commits, (WRITERS * TXNS_PER_WRITER / 2) as u64);
    assert_eq!(c.aborts, (WRITERS * TXNS_PER_WRITER / 2) as u64);
    assert_eq!(c.conflicts, 0, "disjoint pk ranges must not conflict");
    assert_eq!(c.active, 0);
}

/// Four threads race to consume 256 contested rows (delete + insert a
/// replacement in one transaction). First-writer-wins must hand each row to
/// exactly one winner, concurrent snapshots must always see exactly one of
/// (original, replacement) per contested pk, and no winner's write may be
/// lost.
#[test]
fn contended_read_modify_write_loses_no_updates() {
    const CONTESTED: i64 = 256;
    const REPL_BAND: f64 = 500_000.0;

    let shared = SharedDatabase::new(seed_db(CONTESTED));
    let winners: Mutex<HashMap<i64, usize>> = Mutex::new(HashMap::new());
    let done = AtomicBool::new(false);
    // One query spanning originals and replacements: each snapshot must see
    // exactly one row per contested pk, whatever the interleaving.
    let span_query = Query::new().range(2, 0.0, REPL_BAND + CONTESTED as f64);

    crossbeam::thread::scope(|s| {
        for t in 0..4usize {
            let shared = shared.clone();
            let winners = &winners;
            s.spawn(move |_| {
                for i in 0..CONTESTED {
                    let pk = (i + t as i64 * 64) % CONTESTED;
                    let txn = shared.begin().unwrap();
                    match shared.delete_by_pk_txn(txn, pk) {
                        Ok(()) => {
                            let m = REPL_BAND + pk as f64;
                            shared
                                .insert_txn(
                                    txn,
                                    &[
                                        Value::Int(1_000_000 + pk),
                                        Value::Float(2.0 * m),
                                        Value::Float(m),
                                        Value::Float(10.0 * m),
                                    ],
                                )
                                .unwrap();
                            shared.commit(txn).unwrap();
                            let prev = winners.lock().insert(pk, t);
                            assert_eq!(prev, None, "pk {pk} consumed twice (by {prev:?} and {t})");
                        }
                        Err(CoreError::Storage(
                            StorageError::WriteConflict { .. } | StorageError::PkNotFound { .. },
                        )) => {
                            // Lost the race (open-txn lock, or already
                            // consumed): walk away empty-handed.
                            shared.rollback(txn).unwrap();
                        }
                        Err(e) => panic!("unexpected delete error: {e}"),
                    }
                }
            });
        }
        {
            let shared = shared.clone();
            let (done, span_query) = (&done, &span_query);
            s.spawn(move |_| {
                let mut observations = 0u64;
                while !done.load(Ordering::Relaxed) || observations < 50 {
                    let n = shared.execute(span_query).rows.len() as i64;
                    assert_eq!(
                        n, CONTESTED,
                        "snapshot saw {n} rows — an original/replacement swap was not atomic"
                    );
                    observations += 1;
                }
            });
        }
        {
            let shared = shared.clone();
            let done = &done;
            s.spawn(move |_| {
                let deadline = Instant::now() + Duration::from_secs(60);
                while shared.txn_counters().commits < CONTESTED as u64 {
                    assert!(Instant::now() < deadline, "stalled: {:?}", shared.txn_counters());
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Relaxed);
            });
        }
    })
    .unwrap();

    let winners = winners.into_inner();
    assert_eq!(winners.len() as i64, CONTESTED, "every contested pk must be consumed once");
    // No lost updates: every winner's replacement row is present, every
    // original is gone.
    for pk in 0..CONTESTED {
        let orig = shared.execute(&Query::new().point(2, pk as f64));
        assert!(orig.rows.is_empty(), "original row {pk} survived its committed delete");
        let repl = shared.execute(&Query::new().point(2, REPL_BAND + pk as f64));
        assert_eq!(repl.rows.len(), 1, "replacement row for pk {pk} was lost");
    }
    let c = shared.txn_counters();
    assert_eq!(c.commits, CONTESTED as u64);
    assert_eq!(c.begins, c.commits + c.aborts);
    assert_eq!(c.active, 0);
    assert_eq!(shared.db().len(), CONTESTED as usize);
}

enum Substrate {
    Mem,
    Paged,
}

fn build_substrate(substrate: &Substrate, rows: i64) -> Database {
    let mut db = match substrate {
        Substrate::Mem => Database::new(schema(), 0, TidScheme::Logical),
        Substrate::Paged => {
            let pool =
                Arc::new(BufferPool::new_sharded(Arc::new(SimulatedPageStore::new()), 512, 8));
            Database::new_paged(PagedTable::new(schema(), pool), 0)
        }
    };
    for pk in 0..rows {
        db.insert(&row_for(pk)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    if matches!(substrate, Substrate::Mem) {
        db.create_composite_baseline(0, 2).unwrap();
    }
    db
}

/// One query per plan kind the database supports.
fn query_panel(with_composite: bool) -> Vec<Query> {
    let mut panel = vec![
        Query::new().range(2, 100.0, 400.0),     // Hermit route
        Query::new().point(2, 777.0),            // Hermit point probe
        Query::new().range(1, 1_000.0, 1_500.0), // baseline index scan
        Query::new().range(2, 200.0, 900.0).range(3, 2_500.0, 6_000.0), // residual conjunct
        Query::new().range(3, 5_000.0, 6_000.0), // unindexed: seq scan
    ];
    if with_composite {
        panel.push(Query::new().range(0, 300.0, 600.0).range(2, 310.0, 590.0));
    }
    panel
}

fn panel_snapshot(db: &Database, panel: &[Query]) -> Vec<Vec<i64>> {
    panel.iter().map(|q| result_pks(db, &db.execute(q))).collect()
}

/// Abort must restore the exact pre-transaction state across every index
/// kind (baseline, Hermit, composite, primary) and the heap — scalar and
/// batched executors, both substrates.
#[test]
fn abort_restores_exact_state_across_all_index_kinds() {
    for substrate in [Substrate::Mem, Substrate::Paged] {
        let with_composite = matches!(substrate, Substrate::Mem);
        let db = build_substrate(&substrate, 1_000);
        let panel = query_panel(with_composite);
        let before = panel_snapshot(&db, &panel);
        let len_before = db.len();

        let txn = db.begin().unwrap();
        // On-model inserts, an off-model outlier insert, deferred deletes of
        // seed rows (one an outlier row), and a delete of the txn's own
        // insert.
        db.insert_txn(txn, &row_for(5_000)).unwrap();
        db.insert_txn(
            txn,
            &[Value::Int(5_001), Value::Float(-9.0e8), Value::Float(350.5), Value::Float(1.0)],
        )
        .unwrap();
        db.delete_by_pk_txn(txn, 123).unwrap();
        db.delete_by_pk_txn(txn, 170).unwrap(); // 170 % 17 == 0: outlier row
        db.delete_by_pk_txn(txn, 777).unwrap();
        db.insert_txn(txn, &row_for(5_002)).unwrap();
        db.delete_by_pk_txn(txn, 5_002).unwrap(); // own insert, applied immediately

        // Mid-transaction, auto-commit readers still see the pre-state.
        assert_eq!(
            panel_snapshot(&db, &panel),
            before,
            "{}: open transaction leaked into auto-commit snapshots",
            if with_composite { "mem" } else { "paged" }
        );

        db.rollback_txn(txn).unwrap();

        assert_eq!(db.len(), len_before);
        assert_eq!(
            panel_snapshot(&db, &panel),
            before,
            "{}: abort failed to restore the panel state",
            if with_composite { "mem" } else { "paged" }
        );
        let batched = db.execute_batch(&panel, &BatchOptions::with_threads(2));
        for (i, r) in batched.iter().enumerate() {
            assert_eq!(
                result_pks(&db, r),
                before[i],
                "batched executor diverged after abort on panel query {i}"
            );
        }
        assert_eq!(db.txn_counters().active, 0);
    }
}

/// A transaction still open when the process dies is a loser: reopening the
/// directory must roll it back from the WAL, while committed transactions
/// (and the seed) survive. Checkpoints are refused while it is open.
#[test]
fn loser_transaction_rolls_back_on_reopen() {
    let dir = std::env::temp_dir().join(format!("hermit-txn-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig { wal_sync_every: 1, ..Default::default() };
    let highest_id;
    {
        let mut db = Database::create_durable(schema(), 0, &dir, &config).unwrap();
        for pk in 0..300 {
            db.insert(&row_for(pk)).unwrap();
        }
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();

        // A committed transaction: survives.
        let t1 = db.begin().unwrap();
        db.insert_txn(t1, &row_for(1_000)).unwrap();
        db.insert_txn(t1, &row_for(1_001)).unwrap();
        db.delete_by_pk_txn(t1, 5).unwrap();
        db.commit_txn(t1).unwrap();

        // An explicitly rolled-back transaction: no trace.
        let t2 = db.begin().unwrap();
        db.insert_txn(t2, &row_for(2_000)).unwrap();
        db.rollback_txn(t2).unwrap();

        // The loser: still open at "crash" time.
        let t3 = db.begin().unwrap();
        db.insert_txn(t3, &row_for(3_000)).unwrap();
        db.insert_txn(t3, &row_for(3_001)).unwrap();
        db.delete_by_pk_txn(t3, 7).unwrap(); // deferred, never applied
        db.delete_by_pk_txn(t3, 3_000).unwrap(); // own insert, applied + logged
        highest_id = t3;

        // Checkpointing around an open transaction would bake its applied
        // writes into the new epoch while discarding their undo records.
        assert!(matches!(db.checkpoint(&dir), Err(CoreError::OpenTransactions { active: 1 })));
        // Drop without commit/rollback: the kill -9 model (every WAL record
        // was fsynced via wal_sync_every=1).
    }

    let db = Database::open(&dir, &config).unwrap();
    // Seed 300 − committed delete of 5 + committed inserts 1000/1001; the
    // loser's 3000/3001 and its deferred delete of 7 are rolled back.
    assert_eq!(db.len(), 301);
    let present = |pk: i64| !db.execute(&Query::new().point(2, pk as f64)).rows.is_empty();
    assert!(!present(5), "committed delete must survive recovery");
    assert!(present(1_000) && present(1_001), "committed inserts must survive recovery");
    assert!(!present(2_000), "rolled-back insert resurrected");
    assert!(!present(3_000) && !present(3_001), "loser inserts must be undone");
    assert!(present(7), "loser's deferred delete must leave the row alone");
    assert_eq!(db.txn_active(), 0);
    // Ids never rewind past ids in the replayed log.
    assert!(db.begin().unwrap() > highest_id, "txn ids must be reseeded past the WAL's maximum");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A connection dropped mid-transaction must be rolled back by the server:
/// no trace in the data, and the abort shows up in the exported counters.
#[test]
fn server_disconnect_mid_transaction_leaves_no_trace() {
    use hermit::server::{HermitClient, HermitServer, ServerConfig};

    let shared = SharedDatabase::new(seed_db(500));
    let server = HermitServer::start(shared.clone(), None, ServerConfig::default(), "127.0.0.1:0")
        .expect("bind loopback server");
    let addr = server.local_addr();

    {
        let mut doomed = HermitClient::connect(addr).unwrap();
        let txn = doomed.begin().unwrap();
        assert!(txn > 0);
        doomed
            .insert(vec![
                Value::Int(9_000),
                Value::Float(2.0 * 123_456.5),
                Value::Float(123_456.5),
                Value::Float(1.0),
            ])
            .unwrap();
        doomed.delete(3).unwrap(); // deferred under the open txn
                                   // Drop without commit: the server must roll the transaction back.
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    while shared.txn_active() > 0 {
        assert!(Instant::now() < deadline, "server never reaped the disconnected transaction");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut client = HermitClient::connect(addr).unwrap();
    let ghost = client.query(&Query::new().point(2, 123_456.5)).unwrap();
    assert!(ghost.is_empty(), "disconnected transaction's insert leaked");
    let survivor = client.query(&Query::new().point(2, 3.0)).unwrap();
    assert_eq!(survivor.len(), 1, "disconnected transaction's deferred delete was applied");
    let stats = client.stats().unwrap();
    assert!(
        stats.lines().any(|l| l == "hermit_txn_aborts 1"),
        "abort-on-disconnect missing from the exporter:\n{stats}"
    );
    assert!(stats.lines().any(|l| l == "hermit_txn_active 0"), "active gauge stuck:\n{stats}");
    server.stop();
}
