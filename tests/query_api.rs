//! Integration tests for the unified Query API: the cost-based planner,
//! the stable EXPLAIN format, the seq-scan fallback, and scalar/batched
//! executor agreement.
//!
//! The EXPLAIN assertions pin the exact `Display` output for all four plan
//! shapes (hermit route, index range scan, composite box scan, seq scan) —
//! the format is a public artifact (README, `examples/query_plans.rs`) and
//! must not drift silently.

use hermit::core::{AccessPath, BatchOptions, Database, PlanKind, Query, RangePredicate};
use hermit::storage::{ColumnDef, RowLoc, Schema, TidScheme, Value};

const TIME: usize = 0;
const DJ: usize = 1;
const SP: usize = 2;
const VOL: usize = 3;

/// The `examples/query_plans.rs` fixture: every index kind the planner
/// knows, plus the deliberately-unindexed VOL column.
fn stock_db(scheme: TidScheme, days: usize) -> Database {
    let schema = Schema::new(vec![
        ColumnDef::int("time"),
        ColumnDef::float("dj"),
        ColumnDef::float("sp"),
        ColumnDef::float("vol"),
    ]);
    let mut db = Database::new(schema, TIME, scheme);
    for t in 0..days {
        let (dj, sp, vol) = stock_row(t);
        db.insert(&[Value::Int(t as i64), Value::Float(dj), Value::Float(sp), Value::Float(vol)])
            .unwrap();
    }
    db.create_baseline_index(DJ, true).unwrap();
    db.create_hermit_index(SP, DJ).unwrap();
    db.create_composite_baseline(TIME, DJ).unwrap();
    db.create_composite_hermit(TIME, SP, DJ).unwrap();
    db
}

fn stock_row(t: usize) -> (f64, f64, f64) {
    let dj = 3_000.0 + t as f64 * 0.5 + ((t % 97) as f64 - 48.0);
    let sp = dj / 8.0 + ((t % 13) as f64 - 6.0) * 0.05;
    let vol = 1.0e6 + ((t * 7_919) % 100_000) as f64;
    (dj, sp, vol)
}

/// Independent full-scan oracle: recompute every row from the generator
/// formula and filter with plain comparisons.
fn oracle_rows(db: &Database, days: usize, preds: &[RangePredicate]) -> Vec<RowLoc> {
    let mut out = Vec::new();
    for t in 0..days {
        let (dj, sp, vol) = stock_row(t);
        let vals = [t as f64, dj, sp, vol];
        if preds.iter().all(|p| vals[p.column] >= p.lb && vals[p.column] <= p.ub) {
            out.push(db.primary().get(t as i64).expect("row is live"));
        }
    }
    out.sort_unstable();
    out
}

fn sorted(rows: &[RowLoc]) -> Vec<RowLoc> {
    let mut v = rows.to_vec();
    v.sort_unstable();
    v
}

#[test]
fn explain_hermit_route_is_stable() {
    let db = stock_db(TidScheme::Physical, 20_000);
    let plan = db.plan(&Query::new().range(SP, 700.0, 710.0));
    assert_eq!(plan.kind(), PlanKind::Hermit);
    assert_eq!(
        plan.to_string(),
        "Query Plan [hermit route] (cost=769.3, candidates~167, rows~159, heap_rows=20000)\n\
         \x20 phase 1: TRS-Tree translate sp#2 in [700, 710] -> ranges on dj#1\n\
         \x20 phase 2: probe baseline B+-tree on dj#1\n\
         \x20 phase 3: resolve tids (physical tids: direct)\n\
         \x20 phase 4: validate sp#2 in [700, 710]\n"
    );
}

#[test]
fn explain_baseline_is_stable() {
    let db = stock_db(TidScheme::Physical, 20_000);
    let plan = db.plan(&Query::new().range(DJ, 5_600.0, 5_680.0));
    assert_eq!(plan.kind(), PlanKind::Baseline);
    assert_eq!(
        plan.to_string(),
        "Query Plan [index range scan] (cost=725.8, candidates~159, rows~159, heap_rows=20000)\n\
         \x20 phase 2: range scan baseline B+-tree on dj#1 in [5600, 5680] (exact)\n\
         \x20 phase 3: resolve tids (physical tids: direct)\n\
         \x20 phase 4: validate (exact index hits; nothing to re-check)\n"
    );
}

#[test]
fn explain_composite_box_is_stable() {
    let db = stock_db(TidScheme::Physical, 20_000);
    let plan = db.plan(&Query::new().range(TIME, 5_000.0, 10_000.0).range(SP, 700.0, 800.0));
    assert_eq!(plan.kind(), PlanKind::Composite);
    assert_eq!(
        plan.to_string(),
        "Query Plan [composite box scan] (cost=4113.9, candidates~398, rows~396, heap_rows=20000)\n\
         \x20 phase 1: TRS-Tree translate sp#2 in [700, 800] -> ranges on dj#1\n\
         \x20 phase 2: box scan composite B+-tree #1 on (time#0 in [5000, 10000], dj#1 ranges)\n\
         \x20 phase 3: resolve tids (physical tids: direct)\n\
         \x20 phase 4: validate time#0 in [5000, 10000] AND sp#2 in [700, 800]\n"
    );
}

#[test]
fn explain_seq_scan_is_stable() {
    let db = stock_db(TidScheme::Physical, 20_000);
    let q = Query::new().range(VOL, 1_000_000.0, 1_002_000.0).select([TIME, VOL]).limit(3);
    let plan = db.plan(&q);
    assert_eq!(plan.kind(), PlanKind::Scan);
    assert_eq!(
        plan.to_string(),
        "Query Plan [seq scan] (cost=20000.0, candidates~20000, rows~400, heap_rows=20000)\n\
         \x20 phase 2: seq scan heap (20000 rows)\n\
         \x20 phase 4: validate vol#3 in [1000000, 1002000]\n\
         \x20 limit: 3\n\
         \x20 project: [time#0, vol#3]\n"
    );
}

#[test]
fn unindexed_column_scans_instead_of_silent_empty() {
    for scheme in [TidScheme::Physical, TidScheme::Logical] {
        let db = stock_db(scheme, 5_000);
        let pred = RangePredicate::range(VOL, 1_000_000.0, 1_010_000.0);
        // The legacy surface stays the oracle for its old contract: no
        // index, no rows.
        assert!(db.lookup_range(pred, None).rows.is_empty(), "legacy contract preserved");
        // The Query surface returns the actual rows via the scan plan.
        let r = db.execute(&Query::filter(pred));
        let expect = oracle_rows(&db, 5_000, &[pred]);
        assert!(!expect.is_empty(), "fixture must produce matches");
        assert_eq!(sorted(&r.rows), expect, "{scheme:?}");
        assert_eq!(r.false_positives, 0, "a scan fetches no speculative candidates");
    }
}

#[test]
fn execute_agrees_with_legacy_wrappers_on_indexed_paths() {
    for scheme in [TidScheme::Physical, TidScheme::Logical] {
        let db = stock_db(scheme, 10_000);
        for pred in
            [RangePredicate::range(SP, 700.0, 705.0), RangePredicate::range(DJ, 5_600.0, 5_650.0)]
        {
            let legacy = db.lookup_range(pred, None);
            let plan = db.plan(&Query::filter(pred));
            let via_plan = db.execute_plan(&plan);
            assert_eq!(sorted(&legacy.rows), sorted(&via_plan.rows), "{scheme:?} {pred:?}");
            assert_eq!(legacy.false_positives, via_plan.false_positives);
            assert_eq!(legacy.unresolved, via_plan.unresolved);
        }
    }
}

#[test]
fn wide_predicate_on_hermit_column_prefers_scan() {
    let db = stock_db(TidScheme::Physical, 10_000);
    // Selectivity ~1: fetching every candidate through the index estate
    // costs more than streaming the heap once.
    let plan = db.plan(&Query::new().range(SP, 0.0, 1.0e9));
    assert_eq!(plan.kind(), PlanKind::Scan);
    let r = db.execute_plan(&plan);
    assert_eq!(r.rows.len(), 10_000);
}

#[test]
fn multi_conjunct_residuals_validate_at_base_table() {
    let db = stock_db(TidScheme::Physical, 20_000);
    let preds = [
        RangePredicate::range(SP, 700.0, 800.0),
        RangePredicate::range(VOL, 1_000_000.0, 1_050_000.0),
        RangePredicate::range(TIME, 0.0, 15_000.0),
    ];
    let q = Query::new().and(preds[0]).and(preds[1]).and(preds[2]);
    let r = db.execute(&q);
    assert_eq!(sorted(&r.rows), oracle_rows(&db, 20_000, &preds));
}

#[test]
fn execute_batch_matches_execute_across_plan_shapes() {
    for scheme in [TidScheme::Physical, TidScheme::Logical] {
        let db = stock_db(scheme, 10_000);
        let queries = vec![
            Query::new().range(SP, 700.0, 710.0),
            Query::new().range(DJ, 5_600.0, 5_680.0),
            Query::new().range(TIME, 2_000.0, 4_000.0).range(SP, 650.0, 700.0),
            Query::new().range(VOL, 1_000_000.0, 1_020_000.0),
            Query::new().range(SP, 9.0e8, 9.1e8), // out of domain
        ];
        for threads in [1usize, 3] {
            let batched = db.execute_batch(&queries, &BatchOptions::with_threads(threads));
            assert_eq!(batched.len(), queries.len());
            for (q, b) in queries.iter().zip(&batched) {
                let s = db.execute(q);
                assert_eq!(sorted(&s.rows), sorted(&b.rows), "{scheme:?} t{threads} {q:?}");
                assert_eq!(s.false_positives, b.false_positives, "{scheme:?} t{threads} {q:?}");
                assert_eq!(s.unresolved, b.unresolved, "{scheme:?} t{threads} {q:?}");
            }
        }
    }
}

#[test]
fn composite_box_query_matches_oracle() {
    for scheme in [TidScheme::Physical, TidScheme::Logical] {
        let db = stock_db(scheme, 20_000);
        let preds = [
            RangePredicate::range(TIME, 5_000.0, 10_000.0),
            RangePredicate::range(SP, 700.0, 800.0),
        ];
        let q = Query::new().and(preds[0]).and(preds[1]);
        let plan = db.plan(&q);
        assert_eq!(plan.kind(), PlanKind::Composite, "{scheme:?}");
        let r = db.execute_plan(&plan);
        assert_eq!(sorted(&r.rows), oracle_rows(&db, 20_000, &preds), "{scheme:?}");
        // Batched path produces the same result through the page-ordered
        // validator.
        let b = &db.execute_plans(std::slice::from_ref(&plan), &BatchOptions::default())[0];
        assert_eq!(sorted(&b.rows), sorted(&r.rows), "{scheme:?}");
        assert_eq!(b.false_positives, r.false_positives, "{scheme:?}");
    }
}

#[test]
fn composite_baseline_plan_is_exact() {
    let db = stock_db(TidScheme::Physical, 20_000);
    // Narrow TIME, wide-ish DJ: the (time, dj) composite baseline beats
    // both the single-column DJ index and the scan.
    let preds = [
        RangePredicate::range(TIME, 5_000.0, 5_500.0),
        RangePredicate::range(DJ, 5_400.0, 6_600.0),
    ];
    let q = Query::new().and(preds[0]).and(preds[1]);
    let plan = db.plan(&q);
    assert!(
        matches!(plan.access, AccessPath::CompositeBaseline { .. }),
        "expected the composite baseline box, got: {plan}"
    );
    let r = db.execute_plan(&plan);
    assert_eq!(sorted(&r.rows), oracle_rows(&db, 20_000, &preds));
    assert_eq!(r.false_positives, 0, "the box scan is exact; nothing to validate away");
    let b = &db.execute_batch(std::slice::from_ref(&q), &BatchOptions::default())[0];
    assert_eq!(sorted(&b.rows), sorted(&r.rows));
    assert_eq!(b.false_positives, 0);
}

#[test]
fn limit_truncates_and_projection_materializes() {
    let db = stock_db(TidScheme::Physical, 5_000);
    let full = db.execute(&Query::new().range(SP, 650.0, 700.0));
    assert!(full.rows.len() > 10);
    assert!(full.projected.is_none(), "no projection requested, none paid for");

    let q = Query::new().range(SP, 650.0, 700.0).select([TIME, SP]).limit(7);
    let r = db.execute(&q);
    assert_eq!(r.rows.len(), 7);
    let projected = r.projected.as_deref().expect("projection materialized");
    assert_eq!(projected.len(), 7);
    let full_sorted = sorted(&full.rows);
    for (loc, row) in r.rows.iter().zip(projected) {
        assert!(full_sorted.binary_search(loc).is_ok(), "limited rows are a subset");
        assert_eq!(row.len(), 2);
        let Value::Int(t) = row[0] else { panic!("projected time must be Int") };
        let (_, sp, _) = stock_row(t as usize);
        assert_eq!(row[1], Value::Float(sp), "projection reads the right cells");
    }

    // Limit on the scan plan stops the scan early but still returns
    // correct (prefix) rows.
    let q = Query::new().range(VOL, 1_000_000.0, 1_050_000.0).limit(5);
    let r = db.execute(&q);
    assert_eq!(r.rows.len(), 5);
    let oracle = oracle_rows(&db, 5_000, &[RangePredicate::range(VOL, 1_000_000.0, 1_050_000.0)]);
    for loc in &r.rows {
        assert!(oracle.binary_search(loc).is_ok());
    }
}

#[test]
fn empty_query_scans_every_row() {
    let db = stock_db(TidScheme::Physical, 2_000);
    let r = db.execute(&Query::new());
    assert_eq!(r.rows.len(), 2_000);
    let plan = db.plan(&Query::new());
    assert_eq!(plan.kind(), PlanKind::Scan);
}

#[test]
fn inverted_and_out_of_domain_queries_are_empty_everywhere() {
    let db = stock_db(TidScheme::Physical, 2_000);
    for q in [
        Query::new().range(SP, 800.0, 700.0),  // inverted, hermit column
        Query::new().range(VOL, 500.0, 400.0), // inverted, unindexed column
        Query::new().range(DJ, 9.0e9, 9.1e9),  // out of domain, baseline column
        Query::new().range(SP, 100.0, 200.0).range(VOL, 10.0, 5.0), // contradictory conjunct
    ] {
        let r = db.execute(&q);
        assert!(r.rows.is_empty(), "{q:?}");
        let b = &db.execute_batch(std::slice::from_ref(&q), &BatchOptions::default())[0];
        assert!(b.rows.is_empty(), "{q:?} (batched)");
    }
}

#[test]
fn composite_indexes_are_maintained_across_delete_and_reinsert() {
    for scheme in [TidScheme::Physical, TidScheme::Logical] {
        let db = stock_db(scheme, 10_000);
        // Delete rows inside the box, then re-insert one of them with its
        // original values: without delete-side composite maintenance the
        // stale entry and the fresh one both qualify and (under logical
        // tids) resolve to the same row — a duplicate.
        for pk in [5_100i64, 5_200, 5_300] {
            db.delete_by_pk(pk).unwrap();
        }
        let (dj, sp, vol) = stock_row(5_200);
        db.insert(&[Value::Int(5_200), Value::Float(dj), Value::Float(sp), Value::Float(vol)])
            .unwrap();

        let preds = [
            RangePredicate::range(TIME, 5_000.0, 10_000.0),
            RangePredicate::range(SP, 700.0, 800.0),
        ];
        let q = Query::new().and(preds[0]).and(preds[1]);
        let plan = db.plan(&q);
        assert_eq!(plan.kind(), PlanKind::Composite, "{scheme:?}");
        let r = db.execute_plan(&plan);

        let rows = sorted(&r.rows);
        let mut deduped = rows.clone();
        deduped.dedup();
        assert_eq!(rows.len(), deduped.len(), "{scheme:?}: duplicate rows from stale entries");
        assert_eq!(r.unresolved, 0, "{scheme:?}: deleted entries must leave the composite tree");

        let expect: Vec<RowLoc> = (5_000..10_000usize)
            .filter(|t| ![5_100, 5_300].contains(t))
            .filter(|&t| {
                let (_, sp, _) = stock_row(t);
                (700.0..=800.0).contains(&sp)
            })
            .map(|t| db.primary().get(t as i64).expect("live row"))
            .collect();
        assert!(expect.contains(&db.primary().get(5_200).unwrap()), "re-insert is in the box");
        assert_eq!(rows, sorted(&expect), "{scheme:?}");
    }
}

#[test]
fn deleted_rows_never_resurface_through_any_plan() {
    for scheme in [TidScheme::Physical, TidScheme::Logical] {
        let db = stock_db(scheme, 5_000);
        for pk in (0..5_000).step_by(10) {
            db.delete_by_pk(pk).unwrap();
        }
        for q in [
            Query::new().range(SP, 650.0, 700.0),
            Query::new().range(DJ, 5_000.0, 5_400.0),
            Query::new().range(VOL, 1_000_000.0, 1_020_000.0),
            Query::new().range(TIME, 1_000.0, 2_000.0).range(SP, 0.0, 1.0e9),
        ] {
            let r = db.execute(&q);
            for &loc in &r.rows {
                let t = db.heap().value_f64(loc, TIME).unwrap().unwrap() as i64;
                assert!(t % 10 != 0, "{scheme:?} {q:?}: deleted pk {t} resurfaced");
            }
        }
    }
}
