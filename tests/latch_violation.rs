//! Seeded lock-order inversion, caught by the **runtime witness**.
//!
//! The static half of the same acceptance criterion lives in
//! `crates/analysis/tests/lint.rs` (`seeding_a_cross_function_inversion_
//! fails_the_lint`); this binary proves the dynamic half: holding the heap
//! latch while a query takes the index latches contradicts
//! [`hermit::core::latches::LATCH_HIERARCHY`], and debug builds must
//! refuse to execute it.
//!
//! This is deliberately a **separate test binary** from `latch_witness`:
//! the witness's observed-edge set is process-global, and the inverted
//! edges seeded here would pollute that binary's declared-vs-observed
//! reconciliation.

use hermit::core::latches::{set_witness_panic, witness_violations};
use hermit::core::{Database, Heap, Query, RangePredicate};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn build_db() -> Database {
    let schema = Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
    ]);
    let mut db = Database::new(schema, 0, TidScheme::Physical);
    for pk in 0..500i64 {
        let m = pk as f64;
        db.insert(&[Value::Int(pk), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    db
}

/// The inversion the PR 10 workload tests used to contain for real (heap
/// guard held across `lookup_range`, which takes the host-tree latch):
/// rank 40 under rank 60. In panic mode the witness aborts the query; in
/// count mode it records the violation and lets execution continue.
#[test]
fn heap_guard_held_across_query_is_caught() {
    if !cfg!(debug_assertions) {
        // Release builds compile the witness out; nothing to assert.
        return;
    }
    let db = build_db();

    // Panic mode (the default): the acquisition itself must abort.
    let Heap::Mem(table) = db.heap() else { unreachable!() };
    let guard = table.read();
    let result = catch_unwind(AssertUnwindSafe(|| {
        db.lookup_range(RangePredicate::range(2, 100.0, 200.0), None)
    }));
    let err = result.expect_err("witness must panic on the inversion");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("latch witness"), "unexpected panic: {msg}");
    drop(guard);

    // Count mode: same inversion, recorded instead of fatal.
    set_witness_panic(false);
    let before = witness_violations();
    let guard = table.read();
    let r = db.lookup_range(RangePredicate::range(2, 100.0, 200.0), None);
    drop(guard);
    set_witness_panic(true);
    assert!(witness_violations() > before, "count mode must record the violation");
    assert!(!r.rows.is_empty(), "count mode must not alter results");

    // Sanity: the same query without the held guard is clean either way.
    let clean = db.execute(&Query::filter(RangePredicate::range(2, 100.0, 200.0)));
    assert_eq!(clean.rows.len(), r.rows.len());
}
