//! Declared-vs-observed latch-edge reconciliation.
//!
//! `hermit_core::latches::LATCH_NESTING_EDGES` claims to be the exact set
//! of nestings the engine exercises. This binary drives every workload
//! family — in-memory DML, every query plan shape, composite
//! reorganization, transactions, durable DML with WAL commits and
//! checkpoints — then asserts **set equality both ways** against what the
//! runtime witness actually recorded:
//!
//! * an edge observed but not declared means an undeclared nesting crept
//!   into the engine (fix the code or declare and justify the edge);
//! * an edge declared but not observed means the workloads stopped
//!   exercising a load-bearing path, or the declaration is fiction.
//!
//! The observed set is process-global, which is why this reconciliation
//! owns its test binary: nothing else may take engine latches in this
//! process. (The seeded-inversion test lives in `latch_violation.rs` for
//! the same reason.) Debug builds only — release compiles the witness out.

use hermit::core::latches::{observed_nesting_edges, witness_violations, LATCH_NESTING_EDGES};
use hermit::core::recovery::DurabilityConfig;
use hermit::core::shared::SharedDatabase;
use hermit::core::{Database, Query, RangePredicate};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};
use std::path::PathBuf;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
        ColumnDef::float("other"),
    ])
}

fn row(pk: i64) -> Vec<Value> {
    let m = (pk % 10_000) as f64;
    let host = if pk % 17 == 0 { -5.0e7 } else { 2.0 * m };
    vec![Value::Int(pk), Value::Float(host), Value::Float(m), Value::Float(10.0 * m)]
}

/// Every query plan shape: Hermit route (range + point), baseline index
/// range, composite box scan, multi-conjunct, seq scan, projection/limit.
fn queries() -> Vec<Query> {
    vec![
        Query::filter(RangePredicate::range(2, 100.0, 400.0)),
        Query::filter(RangePredicate::point(2, 250.0)),
        Query::filter(RangePredicate::range(1, 300.0, 700.0)),
        Query::new().range(0, 100.0, 900.0).range(3, 0.0, 5_000.0),
        Query::new().range(2, 0.0, 800.0).range(1, 100.0, 500.0),
        Query::filter(RangePredicate::range(3, 50.0, 120.0)),
        Query::filter(RangePredicate::range(2, 600.0, 650.0)).select([0, 2]).limit(10),
    ]
}

/// In-memory substrate: heap-latched DML, every plan shape, transactions,
/// and the §4.4 composite reorganization (registry → heap).
fn mem_workload() {
    let mut db = Database::new(schema(), 0, TidScheme::Physical);
    for pk in 0..3_000i64 {
        db.insert(&row(pk)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    db.create_composite_baseline(0, 3).unwrap();

    let shared = SharedDatabase::new(db);
    for pk in 3_000..3_200i64 {
        shared.insert(&row(pk)).unwrap();
    }
    for pk in (0..400i64).step_by(3) {
        shared.delete_by_pk(pk).unwrap();
    }
    for q in queries() {
        shared.execute(&q);
    }
    // Transactions: a committed writer and a rolled-back one, with a
    // snapshot read in between.
    let txn = shared.begin().unwrap();
    for pk in 10_000..10_020i64 {
        shared.insert_txn(txn, &row(pk)).unwrap();
    }
    shared.execute_for_txn(&queries()[0], txn);
    shared.commit(txn).unwrap();
    let loser = shared.begin().unwrap();
    shared.insert_txn(loser, &row(20_000)).unwrap();
    shared.rollback(loser).unwrap();
    // Composite reorganization until the queue drains.
    while shared.maintenance_pass(64) > 0 {}
    for q in queries() {
        shared.execute(&q);
    }
}

/// Durable (paged) substrate: quiesce/WAL-bracketed DML, WAL commit
/// boundaries, checkpoints, and durable transactions.
fn durable_workload() {
    let dir: PathBuf = std::env::temp_dir().join(format!("hermit-witness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig::default();
    let mut db = Database::create_durable(schema(), 0, &dir, &config).unwrap();
    for pk in 0..2_000i64 {
        db.insert(&row(pk)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    for pk in (0..300i64).step_by(7) {
        db.delete_by_pk(pk).unwrap();
    }
    db.wal_commit().unwrap();
    db.checkpoint(&dir).unwrap();

    let shared = SharedDatabase::new(db);
    for pk in 5_000..5_100i64 {
        shared.insert(&row(pk)).unwrap();
    }
    let txn = shared.begin().unwrap();
    shared.insert_txn(txn, &row(30_000)).unwrap();
    shared.commit(txn).unwrap();
    let loser = shared.begin().unwrap();
    shared.insert_txn(loser, &row(31_000)).unwrap();
    shared.rollback(loser).unwrap();
    for q in queries() {
        shared.execute(&q);
    }
    shared.checkpoint().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn declared_edges_match_observed_edges_exactly() {
    if !cfg!(debug_assertions) {
        // Release builds compile the witness out; nothing to reconcile.
        return;
    }
    mem_workload();
    durable_workload();

    let observed = observed_nesting_edges();
    let declared: Vec<(u32, u32)> = LATCH_NESTING_EDGES.to_vec();

    let undeclared: Vec<_> = observed.iter().filter(|e| !declared.contains(e)).collect();
    let unexercised: Vec<_> = declared.iter().filter(|e| !observed.contains(e)).collect();
    assert!(
        undeclared.is_empty() && unexercised.is_empty(),
        "latch-edge reconciliation failed\n  observed but undeclared: {undeclared:?}\n  \
         declared but never observed: {unexercised:?}\n  full observed set: {observed:?}",
    );
    assert_eq!(witness_violations(), 0, "workloads must not trip the witness");
}
