//! Crash-schedule explorer acceptance test.
//!
//! Runs the canonical DML+checkpoint workload, crashing (`kill -9` model:
//! directory snapshot at the instant of an instrumented I/O site) at every
//! chosen site, recovering via `Database::open`, and comparing
//! query-for-query against a statement-prefix oracle. See
//! `hermit_fault::explorer` for the model.
//!
//! Site budget: `HERMIT_CRASH_SITES=all` explores the full matrix (a few
//! hundred sites, seconds in release); `HERMIT_CRASH_SITES=<n>` explores
//! an evenly-strided sample of `n`. Unset defaults to 64 so the tier-1
//! debug run stays fast while still landing inside the transactional tail
//! of the workload; CI's `chaos-smoke` job raises it in release.

use hermit_fault::explore;
use std::path::PathBuf;

fn budget() -> Option<usize> {
    match std::env::var("HERMIT_CRASH_SITES") {
        Ok(v) if v.eq_ignore_ascii_case("all") => None,
        Ok(v) => Some(v.parse().expect("HERMIT_CRASH_SITES must be a number or 'all'")),
        Err(_) => Some(64),
    }
}

fn root(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hermit-explorer-{}-{}", name, std::process::id()))
}

#[test]
fn every_explored_crash_site_recovers_to_a_statement_prefix() {
    let report = explore(&root("matrix"), budget());
    eprintln!(
        "crash explorer: {} sites total, {} explored, site classes: {:?}",
        report.total_sites,
        report.explored.len(),
        report.site_names
    );
    assert!(
        report.total_sites >= 30,
        "canonical workload must pass ≥ 30 crash sites, found {}",
        report.total_sites
    );
    assert!(
        report.site_names.len() >= 5,
        "expected several distinct site classes, found {:?}",
        report.site_names
    );
    // The transactional tail of the canonical workload must register its
    // commit and abort WAL appends as crash sites — losing these classes
    // means the atomicity contract is no longer under test.
    for class in ["wal.txn_commit", "wal.txn_abort"] {
        assert!(
            report.site_names.contains_key(class),
            "site class `{class}` missing from the schedule: {:?}",
            report.site_names
        );
    }
    assert!(!report.explored.is_empty());
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("site {} ({}): {}", f.site, f.name, f.detail);
        }
        panic!("{} crash sites failed the recovery oracle", report.failures.len());
    }
}
