//! Property-based tests on the core data structures' invariants.
//!
//! * **TRS-Tree no-false-negative**: for arbitrary data and predicates,
//!   every matching tuple is reachable through the returned host ranges or
//!   the outlier tids.
//! * **B+-tree multimap model**: arbitrary insert/remove/range sequences
//!   behave like a reference `BTreeMap<K, Vec<V>>`.
//! * **Outlier-buffer layout equivalence**: the hash and sorted-vec
//!   layouts answer identically.
//! * **Range-union correctness**: `union_ranges` preserves coverage and
//!   produces disjoint output.

use hermit::btree::BPlusTree;
use hermit::storage::{F64Key, Tid};
use hermit::trs::lookup::union_ranges;
use hermit::trs::node::{OutlierBuffer, OutlierBufferKind};
use hermit::trs::{TrsParams, TrsTree};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Data generators: (m, n) pairs from a few correlation families with
/// injected outliers.
fn pair_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    let family = prop_oneof![
        // Linear with noise flag.
        Just(0u8),
        // Quadratic.
        Just(1u8),
        // Step function (piecewise constant).
        Just(2u8),
    ];
    (family, proptest::collection::vec((0.0f64..1000.0, 0.0f64..1.0), 50..400)).prop_map(
        |(fam, raw)| {
            raw.into_iter()
                .map(|(m, noise)| {
                    let base = match fam {
                        0 => 2.0 * m + 10.0,
                        1 => m * m / 100.0,
                        _ => (m / 100.0).floor() * 500.0,
                    };
                    // ~5% of tuples become wild outliers.
                    let n = if noise < 0.05 { base + 1.0e6 * (noise + 0.1) } else { base };
                    (m, n)
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trs_tree_never_loses_a_tuple(
        pairs in pair_strategy(),
        q in (0.0f64..1000.0, 0.0f64..300.0),
    ) {
        let data: Vec<(f64, f64, Tid)> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(m, n))| (m, n, Tid(i as u64)))
            .collect();
        let (lo, hi) = data.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |acc, p| {
            (acc.0.min(p.0), acc.1.max(p.0))
        });
        let tree = TrsTree::build(TrsParams::default(), (lo, hi), data.clone());
        tree.check_invariants().unwrap();

        let (qlb, width) = q;
        let qub = qlb + width;
        let result = tree.lookup(qlb, qub);
        for (m, n, tid) in &data {
            if *m >= qlb && *m <= qub {
                let in_band = result.ranges.iter().any(|(a, b)| n >= a && n <= b);
                let in_outliers = result.tids.contains(tid);
                prop_assert!(
                    in_band || in_outliers,
                    "tuple (m={m}, n={n}) lost for predicate [{qlb}, {qub}]"
                );
            }
        }
    }

    #[test]
    fn trs_tree_maintenance_never_loses_inserts(
        pairs in pair_strategy(),
        inserts in proptest::collection::vec((0.0f64..1000.0, -5.0e5f64..5.0e5), 1..50),
    ) {
        let data: Vec<(f64, f64, Tid)> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(m, n))| (m, n, Tid(i as u64)))
            .collect();
        let mut tree = TrsTree::build(TrsParams::default(), (0.0, 1000.0), data);
        for (i, &(m, n)) in inserts.iter().enumerate() {
            tree.insert(m, n, Tid(1_000_000 + i as u64));
        }
        for (i, &(m, n)) in inserts.iter().enumerate() {
            let r = tree.lookup_point(m);
            let tid = Tid(1_000_000 + i as u64);
            let ok = r.tids.contains(&tid)
                || r.ranges.iter().any(|(a, b)| n >= *a && n <= *b);
            prop_assert!(ok, "inserted tuple (m={m}, n={n}) unreachable");
        }
    }

    #[test]
    fn btree_behaves_like_reference_multimap(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u64..200, 0u64..1000).prop_map(|(k, v)| (0u8, k, v)), // insert
                (0u64..200, 0u64..1000).prop_map(|(k, v)| (1u8, k, v)), // remove
                (0u64..200, 0u64..200).prop_map(|(a, b)| (2u8, a, b)),  // range check
            ],
            1..500,
        ),
    ) {
        let mut tree: BPlusTree<u64, u64> = BPlusTree::new();
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (op, a, b) in ops {
            match op {
                0 => {
                    tree.insert(a, b);
                    model.entry(a).or_default().push(b);
                }
                1 => {
                    let in_model = model.get_mut(&a).and_then(|v| {
                        v.iter().position(|x| *x == b).map(|i| v.remove(i))
                    });
                    let removed = tree.remove(&a, &b);
                    prop_assert_eq!(removed, in_model.is_some());
                    if model.get(&a).is_some_and(|v| v.is_empty()) {
                        model.remove(&a);
                    }
                }
                _ => {
                    let (lb, ub) = (a.min(b), a.max(b));
                    let mut got: Vec<(u64, u64)> =
                        tree.range(lb, ub).map(|(k, v)| (*k, *v)).collect();
                    got.sort_unstable();
                    let mut want: Vec<(u64, u64)> = model
                        .range(lb..=ub)
                        .flat_map(|(k, vs)| vs.iter().map(move |v| (*k, *v)))
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
        }
        let total: usize = model.values().map(|v| v.len()).sum();
        prop_assert_eq!(tree.len(), total);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn outlier_buffer_layouts_agree(
        entries in proptest::collection::vec((0.0f64..100.0, 0u64..50), 0..100),
        removes in proptest::collection::vec((0.0f64..100.0, 0u64..50), 0..30),
        query in (0.0f64..100.0, 0.0f64..50.0),
    ) {
        let mut hash = OutlierBuffer::new(OutlierBufferKind::Hash);
        let mut vec = OutlierBuffer::new(OutlierBufferKind::SortedVec);
        for &(m, t) in &entries {
            hash.add(m, Tid(t));
            vec.add(m, Tid(t));
        }
        for &(m, t) in &removes {
            let a = hash.remove(m, Tid(t));
            let b = vec.remove(m, Tid(t));
            prop_assert_eq!(a, b, "remove({}, {}) diverged", m, t);
        }
        prop_assert_eq!(hash.len(), vec.len());
        let (lb, w) = query;
        let ub = lb + w;
        let mut got_h = Vec::new();
        let mut got_v = Vec::new();
        hash.collect_range(lb, ub, &mut got_h);
        vec.collect_range(lb, ub, &mut got_v);
        got_h.sort_unstable();
        got_v.sort_unstable();
        prop_assert_eq!(got_h, got_v);
    }

    #[test]
    fn union_ranges_preserves_coverage_and_disjointness(
        ranges in proptest::collection::vec((0.0f64..1000.0, 0.0f64..100.0), 0..50),
        probes in proptest::collection::vec(0.0f64..1100.0, 20),
    ) {
        let input: Vec<(f64, f64)> = ranges.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let merged = union_ranges(input.clone());
        // Disjoint and sorted.
        for w in merged.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "output overlaps: {:?}", merged);
        }
        // Coverage-equivalent.
        for &p in &probes {
            let in_input = input.iter().any(|&(lo, hi)| p >= lo && p <= hi);
            let in_merged = merged.iter().any(|&(lo, hi)| p >= lo && p <= hi);
            prop_assert_eq!(in_input, in_merged, "coverage diverged at {}", p);
        }
    }

    #[test]
    fn f64key_ordering_matches_f64(
        mut values in proptest::collection::vec(-1.0e9f64..1.0e9, 2..50),
    ) {
        let mut keys: Vec<F64Key> = values.iter().map(|&v| F64Key(v)).collect();
        keys.sort();
        values.sort_by(f64::total_cmp);
        let unwrapped: Vec<f64> = keys.iter().map(|k| k.0).collect();
        prop_assert_eq!(unwrapped, values);
    }
}
