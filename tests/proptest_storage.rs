//! Property-based tests on the storage substrate: the in-memory table and
//! the paged heap must agree with a reference model under arbitrary
//! insert/delete/read sequences, and pages must round-trip through the
//! buffer pool under arbitrary access orders.

use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, RowLoc, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float_null("a")])
}

#[derive(Debug, Clone)]
enum Op {
    Insert { pk: i64, a: Option<f64> },
    Delete { victim: usize },
    Read { probe: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i64>(), proptest::option::of(-1.0e6f64..1.0e6))
            .prop_map(|(pk, a)| Op::Insert { pk, a }),
        (0usize..64).prop_map(|victim| Op::Delete { victim }),
        (0usize..64).prop_map(|probe| Op::Read { probe }),
    ]
}

/// Apply the same op sequence to the in-memory table, the paged table, and
/// a plain `Vec` model; all three must agree at every read.
fn run_against_model(ops: Vec<Op>, pool_pages: usize) -> Result<(), TestCaseError> {
    let mem = &mut Table::new(schema());
    let pool = Arc::new(BufferPool::new(Arc::new(SimulatedPageStore::new()), pool_pages));
    let paged = PagedTable::new(schema(), pool);
    // model: (loc_mem, loc_paged, row, live)
    let mut model: Vec<(RowLoc, RowLoc, Vec<Value>, bool)> = Vec::new();

    for op in ops {
        match op {
            Op::Insert { pk, a } => {
                let row = vec![Value::Int(pk), a.map_or(Value::Null, Value::Float)];
                let lm = mem.insert(&row).unwrap();
                let lp = paged.insert(&row).unwrap();
                model.push((lm, lp, row, true));
            }
            Op::Delete { victim } => {
                if model.is_empty() {
                    continue;
                }
                let idx = victim % model.len();
                let (lm, lp, _, live) = &mut model[idx];
                if *live {
                    mem.delete(*lm).unwrap();
                    paged.delete(*lp).unwrap();
                    *live = false;
                } else {
                    prop_assert!(mem.delete(*lm).is_err());
                    prop_assert!(paged.delete(*lp).is_err());
                }
            }
            Op::Read { probe } => {
                if model.is_empty() {
                    continue;
                }
                let idx = probe % model.len();
                let (lm, lp, row, live) = &model[idx];
                if *live {
                    prop_assert_eq!(&mem.get(*lm).unwrap(), row);
                    prop_assert_eq!(&paged.get(*lp).unwrap(), row);
                    prop_assert_eq!(
                        mem.value_f64(*lm, 1).unwrap(),
                        paged.value_f64(*lp, 1).unwrap()
                    );
                } else {
                    prop_assert!(mem.get(*lm).is_err());
                    prop_assert!(paged.get(*lp).is_err());
                }
            }
        }
    }

    // Final census.
    let live = model.iter().filter(|(_, _, _, l)| *l).count();
    prop_assert_eq!(mem.len(), live);
    prop_assert_eq!(paged.len(), live);
    // Scans agree with the model.
    let mem_rows = mem.scan().count();
    let paged_rows = paged.scan().unwrap().len();
    prop_assert_eq!(mem_rows, live);
    prop_assert_eq!(paged_rows, live);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heaps_agree_with_model(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        pool_pages in 1usize..8,
    ) {
        run_against_model(ops, pool_pages)?;
    }

    #[test]
    fn project_pairs_agree_between_heaps(
        rows in proptest::collection::vec(
            (any::<i64>(), proptest::option::of(-1.0e3f64..1.0e3)),
            1..200,
        ),
    ) {
        let mut mem = Table::new(schema());
        let pool = Arc::new(BufferPool::new(Arc::new(SimulatedPageStore::new()), 4));
        let paged = PagedTable::new(schema(), pool);
        for (pk, a) in &rows {
            let row = vec![Value::Int(*pk), a.map_or(Value::Null, Value::Float)];
            mem.insert(&row).unwrap();
            paged.insert(&row).unwrap();
        }
        let mut pm: Vec<(f64, f64)> =
            mem.project_pairs(0, 1).unwrap().iter().map(|(m, n, _)| (*m, *n)).collect();
        let mut pp: Vec<(f64, f64)> =
            paged.project_pairs(0, 1).unwrap().iter().map(|(m, n, _)| (*m, *n)).collect();
        pm.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pp.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(pm, pp);
    }

    #[test]
    fn stats_track_true_min_max(
        values in proptest::collection::vec(-1.0e9f64..1.0e9, 1..500),
    ) {
        let schema = Schema::new(vec![ColumnDef::float("v")]);
        let mut t = Table::new(schema);
        for &v in &values {
            t.insert(&[Value::Float(v)]).unwrap();
        }
        let (lo, hi) = t.stats(0).unwrap().range().unwrap();
        let true_lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let true_hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, true_lo);
        prop_assert_eq!(hi, true_hi);
    }
}
