//! Stress suite for the concurrent serving layer (`hermit_core::shared`).
//!
//! Readers, writers, and the §4.4 background reorganization worker hammer
//! one [`SharedDatabase`] simultaneously; afterwards the survivors are
//! compared query-for-query against a *quiesced scalar oracle* — a fresh
//! single-threaded [`Database`] holding the same logical contents. Every
//! plan kind is exercised (Hermit route, baseline index range scan,
//! composite box scan on the in-memory substrate, seq scan), on both tuple
//! schemes and both storage substrates.
//!
//! The workload is deterministic *in its final state*: each writer owns a
//! disjoint pk range for inserts and a disjoint slice of the seed rows for
//! deletes, so whatever the interleaving, the surviving logical rows are
//! known and the oracle can be replayed sequentially.

use hermit::core::shared::{MaintenanceConfig, MaintenanceWorker, SharedDatabase};
use hermit::core::{BatchOptions, Database, Query, QueryResult};
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

const SEED_ROWS: i64 = 10_000;
const WRITERS: i64 = 4;
const INSERTS_PER_WRITER: i64 = 1_000;
const DELETES_PER_WRITER: i64 = 500;
const READERS: usize = 2;
const READER_QUERIES: usize = 120;
/// pk base for writer-inserted rows, far above every seed pk.
const INSERT_BASE: i64 = 1_000_000;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
        ColumnDef::float("other"),
    ])
}

/// The one deterministic row shape: everything derives from the pk, so the
/// shared run and the oracle replay agree cell-for-cell.
fn row_for(pk: i64) -> Vec<Value> {
    let m = (pk % 50_000) as f64 + if pk >= INSERT_BASE { 0.25 } else { 0.0 };
    // Every 17th row is an outlier (host off the 2·m model).
    let host = if pk % 17 == 0 { -5.0e7 } else { 2.0 * m };
    vec![Value::Int(pk), Value::Float(host), Value::Float(m), Value::Float(10.0 * m)]
}

/// pks deleted by writer `w` (a disjoint slice of the seed rows).
fn deleted_pks(w: i64) -> impl Iterator<Item = i64> {
    (w * DELETES_PER_WRITER)..((w + 1) * DELETES_PER_WRITER)
}

/// pks inserted by writer `w` (a disjoint range above the seeds).
fn inserted_pks(w: i64) -> impl Iterator<Item = i64> {
    (INSERT_BASE + w * INSERTS_PER_WRITER)..(INSERT_BASE + (w + 1) * INSERTS_PER_WRITER)
}

enum Substrate {
    Mem,
    Paged,
}

/// Build an indexed database over the seed rows.
fn build_db(substrate: &Substrate, scheme: TidScheme, with_composite: bool) -> Database {
    let mut db = match substrate {
        Substrate::Mem => Database::new(schema(), 0, scheme),
        Substrate::Paged => {
            let store = Arc::new(SimulatedPageStore::new());
            // Hot sharded pool: the stress is about latches, not misses.
            let pool = Arc::new(BufferPool::new_sharded(store, 4_096, 8));
            Database::new_paged(PagedTable::new(schema(), pool), 0)
        }
    };
    for pk in 0..SEED_ROWS {
        db.insert(&row_for(pk)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    if with_composite {
        db.create_composite_baseline(0, 2).unwrap();
    }
    db
}

/// The query panel: one query per plan kind the database supports.
fn query_panel(with_composite: bool) -> Vec<Query> {
    let mut panel = vec![
        // Hermit route on the target column.
        Query::new().range(2, 1_200.0, 1_450.0),
        // Point probe through the Hermit route (seed pk 2500 stays alive:
        // the writers only delete seed pks below 2000).
        Query::new().point(2, 2_500.0),
        // Baseline index range scan on the host column.
        Query::new().range(1, 4_000.0, 4_500.0),
        // Hermit route + residual conjunct validated at the base table.
        Query::new().range(2, 2_000.0, 3_000.0).range(3, 21_000.0, 24_000.0),
        // Unindexed column: the seq-scan fallback.
        Query::new().range(3, 55_000.0, 56_000.0),
    ];
    if with_composite {
        // Composite (pk, target) box scan.
        panel.push(Query::new().range(0, 3_000.0, 6_000.0).range(2, 3_100.0, 5_900.0));
    }
    panel
}

/// Sorted surviving pks of a result (fetched from the heap the result came
/// from, so the comparison is location-scheme agnostic).
fn result_pks(db: &Database, r: &QueryResult) -> Vec<i64> {
    let mut pks: Vec<i64> =
        r.rows.iter().map(|&loc| db.heap().value_f64(loc, 0).unwrap().unwrap() as i64).collect();
    pks.sort_unstable();
    pks
}

/// Run the mixed readers/writers/worker stress over one configuration and
/// compare the quiesced database against the scalar oracle.
fn run_stress(substrate: Substrate, scheme: TidScheme) {
    let with_composite = matches!(substrate, Substrate::Mem);
    let shared = SharedDatabase::new(build_db(&substrate, scheme, with_composite));
    let worker = MaintenanceWorker::start(shared.clone(), MaintenanceConfig::default());
    let panel = query_panel(with_composite);

    crossbeam::thread::scope(|s| {
        for w in 0..WRITERS {
            let shared = shared.clone();
            s.spawn(move |_| {
                let mut deletes = deleted_pks(w);
                for (i, pk) in inserted_pks(w).enumerate() {
                    shared.insert(&row_for(pk)).unwrap();
                    // Interleave deletes of this writer's seed slice.
                    if i % 2 == 0 {
                        if let Some(del) = deletes.next() {
                            shared.delete_by_pk(del).unwrap();
                        }
                    }
                }
                for del in deletes {
                    shared.delete_by_pk(del).unwrap();
                }
            });
        }
        for r in 0..READERS {
            let shared = shared.clone();
            let panel = &panel;
            s.spawn(move |_| {
                for i in 0..READER_QUERIES {
                    let q = &panel[(i + r) % panel.len()];
                    // Results under churn are a consistent snapshot of each
                    // structure at probe time; validation guarantees no
                    // false positives, so executing must never panic and
                    // the batched path must stay runnable too.
                    let _ = shared.execute(q);
                    if i % 16 == 0 {
                        let _ = shared.execute_batch(panel, &BatchOptions::with_threads(2));
                    }
                }
            });
        }
    })
    .unwrap();

    // Quiesce: writers joined; give the worker a bounded window to drain
    // whatever is still queued, then stop it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while shared.reorg_queue_len() > 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    let (sweeps, _) = worker.stop();
    assert!(sweeps > 0, "worker must have run");
    assert_eq!(shared.reorg_queue_len(), 0, "worker failed to drain the reorg queue in time");

    // The scalar oracle: same logical contents, built sequentially.
    let oracle = build_db(&substrate, scheme, with_composite);
    for w in 0..WRITERS {
        for pk in inserted_pks(w) {
            oracle.insert(&row_for(pk)).unwrap();
        }
        for pk in deleted_pks(w) {
            oracle.delete_by_pk(pk).unwrap();
        }
    }
    assert_eq!(shared.db().len(), oracle.len(), "live row counts diverged");

    // Every panel query agrees with the oracle, on both the scalar and the
    // vectorized executors.
    let batched = shared.db().execute_batch(&panel, &BatchOptions::with_threads(3));
    for (i, q) in panel.iter().enumerate() {
        let want = result_pks(&oracle, &oracle.execute(q));
        assert!(!want.is_empty(), "panel query {i} must select something");
        let got_scalar = result_pks(shared.db(), &shared.execute(q));
        assert_eq!(got_scalar, want, "scalar executor diverged from oracle on panel query {i}");
        let got_batched = result_pks(shared.db(), &batched[i]);
        assert_eq!(got_batched, want, "batched executor diverged from oracle on panel query {i}");
    }

    // Spot-check membership semantics: deleted seed pks are gone, inserted
    // pks are present (via the Hermit route, which must have no false
    // negatives across reorganizations).
    let all = Query::new().range(2, 0.0, 60_000.0);
    let survivors: BTreeSet<i64> =
        result_pks(shared.db(), &shared.execute(&all)).into_iter().collect();
    assert!(deleted_pks(0).all(|pk| !survivors.contains(&pk)));
    assert!(inserted_pks(WRITERS - 1).all(|pk| survivors.contains(&pk)));
}

#[test]
fn stress_mem_logical() {
    run_stress(Substrate::Mem, TidScheme::Logical);
}

#[test]
fn stress_mem_physical() {
    run_stress(Substrate::Mem, TidScheme::Physical);
}

#[test]
fn stress_paged_physical() {
    // The paged substrate is physical-pointer only, like PostgreSQL.
    run_stress(Substrate::Paged, TidScheme::Physical);
}

/// Regression: `SharedDatabase::outlier_share` is documented as *buffered
/// outliers over the tuples the index accounts for* (model-covered +
/// buffered). It used to divide by the table's total row count instead,
/// which silently deflates the ratio whenever the table holds rows the
/// index never saw — e.g. NULL target cells — and that in turn starves
/// the maintenance scheduling built on top of it.
#[test]
fn outlier_share_denominator_is_index_covered_not_table_len() {
    let nullable_schema = Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float_null("target"),
    ]);
    let mut db = Database::new(nullable_schema, 0, TidScheme::Physical);
    // 800 perfectly on-model rows: host = 2·target.
    for pk in 0..800i64 {
        let m = pk as f64;
        db.insert(&[Value::Int(pk), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    let shared = SharedDatabase::new(db);
    assert_eq!(shared.outlier_share(2), Some(0.0), "linear build keeps no outliers");

    // 200 buffered outliers: host far off the model.
    for i in 0..200i64 {
        let m = (i % 800) as f64;
        shared.insert(&[Value::Int(10_000 + i), Value::Float(-1.0e9), Value::Float(m)]).unwrap();
    }
    // 500 rows the index never sees (NULL target): table rows, not index
    // tuples — they must not dilute the denominator.
    for i in 0..500i64 {
        shared.insert(&[Value::Int(20_000 + i), Value::Float(1.0), Value::Null]).unwrap();
    }
    assert_eq!(shared.db().len(), 1_500);
    let share = shared.outlier_share(2).unwrap();
    let want = 200.0 / 1_000.0; // outliers / (modeled + buffered)
    assert!(
        (share - want).abs() < 1e-9,
        "share must be {want} (not 200/1500 = {:.4}), got {share}",
        200.0 / 1_500.0
    );

    // Deleting buffered rows shrinks both sides of the ratio.
    for pk in 10_000..10_100i64 {
        shared.delete_by_pk(pk).unwrap();
    }
    let share = shared.outlier_share(2).unwrap();
    let want = 100.0 / 900.0;
    assert!((share - want).abs() < 1e-9, "after deletes share must be {want}, got {share}");

    // Unindexed / baseline columns still report nothing.
    assert_eq!(shared.outlier_share(1), None);
    assert_eq!(shared.outlier_share(0), None);
}

/// Sustained outlier-heavy churn: with the worker running, outlier share
/// must end up strictly below an identical run without the worker, and
/// background passes must actually have happened.
#[test]
fn churn_with_worker_shrinks_outlier_share() {
    let run = |with_worker: bool| -> (f64, u64, u64) {
        let shared = SharedDatabase::new(build_db(&Substrate::Mem, TidScheme::Physical, false));
        let worker = with_worker.then(|| {
            MaintenanceWorker::start(
                shared.clone(),
                MaintenanceConfig { pass_limit: 8, ..Default::default() },
            )
        });
        // Regime change under load: vacate [2000, 6000), then refill the
        // region with a different (locally linear) correlation. Every new
        // row is an outlier under the stale model; reorganization refits.
        crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                for pk in 2_000..6_000i64 {
                    shared.delete_by_pk(pk).unwrap();
                }
                for i in 0..8_000i64 {
                    let m = 2_000.0 + i as f64 * 0.5;
                    shared
                        .insert(&[
                            Value::Int(2 * INSERT_BASE + i),
                            Value::Float(9.0 * m + 77.0),
                            Value::Float(m),
                            Value::Float(10.0 * m),
                        ])
                        .unwrap();
                }
            });
        })
        .unwrap();
        let sweeps = match worker {
            // Joins the thread, so no background pass is still in flight.
            Some(w) => w.stop().0,
            None => 0,
        };
        if with_worker {
            // Deterministic end state: catch up on whatever the worker had
            // not reached yet (scheduling-dependent) with synchronous
            // passes. `reorg_passes` counts these too, so `passes > 0`
            // holds whenever candidates were ever queued.
            let mut rounds = 0;
            while shared.maintenance_pass(64) > 0 && rounds < 100 {
                rounds += 1;
            }
            assert_eq!(shared.reorg_queue_len(), 0, "drain must converge");
        }
        (shared.outlier_share(2).unwrap(), shared.reorg_passes(), sweeps)
    };

    let (without_worker, passes_idle, _) = run(false);
    let (with_worker, passes_active, sweeps) = run(true);
    assert_eq!(passes_idle, 0);
    assert!(sweeps > 0, "the background worker must have swept");
    assert!(passes_active > 0, "reorganization passes must have executed");
    assert!(
        with_worker < without_worker / 2.0,
        "worker must shrink outlier share under churn: {without_worker} -> {with_worker}"
    );
}
