//! End-to-end integration tests spanning all crates: the full Hermit
//! pipeline against ground truth on every workload, both tuple-identifier
//! schemes, both storage substrates, and through distribution shifts.

use hermit::core::database::TablePairSource;
use hermit::core::{Database, DiscoveryConfig, Heap, RangePredicate, SecondaryIndex};
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};
use hermit::trs::PairSource;
use hermit::trs::TrsParams;
use hermit::workloads::synthetic::cols;
use hermit::workloads::{
    build_sensor, build_stock, build_synthetic, CorrelationKind, QueryGen, SensorConfig,
    StockConfig, SyntheticConfig,
};
use std::sync::Arc;

/// Ground truth by sequential scan over the in-memory heap.
fn scan_count(
    db: &Database,
    col: usize,
    lb: f64,
    ub: f64,
    extra: Option<(usize, f64, f64)>,
) -> usize {
    let Heap::Mem(table) = db.heap() else { unreachable!("mem heap expected") };
    let table = table.read();
    let c = table.column(col).unwrap();
    table
        .scan()
        .filter(|loc| {
            let i = loc.index();
            let main = c.get_f64(i).is_some_and(|v| v >= lb && v <= ub);
            let extra_ok = extra.is_none_or(|(ec, elb, eub)| {
                table.column(ec).unwrap().get_f64(i).is_some_and(|v| v >= elb && v <= eub)
            });
            main && extra_ok
        })
        .count()
}

#[test]
fn synthetic_hermit_matches_scan_all_configs() {
    for kind in [CorrelationKind::Linear, CorrelationKind::Sigmoid] {
        for scheme in [TidScheme::Logical, TidScheme::Physical] {
            let cfg = SyntheticConfig {
                tuples: 30_000,
                correlation: kind,
                noise_fraction: 0.02,
                ..Default::default()
            };
            let mut db = build_synthetic(&cfg, scheme);
            db.create_hermit_index(cols::COL_C, cols::COL_B).unwrap();
            let mut gen = QueryGen::new(cfg.target_domain(), 0xE2E);
            for (lb, ub) in gen.ranges(0.005, 20) {
                let got = db.lookup_range(RangePredicate::range(cols::COL_C, lb, ub), None);
                let want = scan_count(&db, cols::COL_C, lb, ub, None);
                assert_eq!(got.rows.len(), want, "{kind:?}/{scheme:?} on [{lb}, {ub}]");
            }
            for p in gen.points(20) {
                let got = db.lookup_point(cols::COL_C, p);
                let want = scan_count(&db, cols::COL_C, p, p, None);
                assert_eq!(got.rows.len(), want, "{kind:?}/{scheme:?} point {p}");
            }
        }
    }
}

#[test]
fn stock_hermit_matches_scan_with_time_conjunct() {
    let cfg = StockConfig { stocks: 4, days: 5_000, ..Default::default() };
    let mut db = build_stock(&cfg, TidScheme::Logical);
    for s in 0..cfg.stocks {
        db.create_hermit_index(cfg.high_col(s), cfg.low_col(s)).unwrap();
    }
    for s in 0..cfg.stocks {
        let col = cfg.high_col(s);
        let Heap::Mem(table) = db.heap() else { unreachable!() };
        let (lo, hi) = table.read().stats(col).unwrap().range().unwrap();
        let band = (lo + (hi - lo) * 0.3, lo + (hi - lo) * 0.6);
        let got = db.lookup_range(
            RangePredicate::range(col, band.0, band.1),
            Some(RangePredicate::range(0, 1_000.0, 3_000.0)),
        );
        let want = scan_count(&db, col, band.0, band.1, Some((0, 1_000.0, 3_000.0)));
        assert_eq!(got.rows.len(), want, "stock {s}");
    }
}

#[test]
fn sensor_hermit_matches_scan_on_every_sensor() {
    let cfg = SensorConfig { tuples: 15_000, ..Default::default() };
    let mut db = build_sensor(&cfg, TidScheme::Physical);
    for i in 0..cfg.sensors {
        db.create_hermit_index(cfg.sensor_col(i), cfg.avg_col()).unwrap();
    }
    for i in 0..cfg.sensors {
        let col = cfg.sensor_col(i);
        let Heap::Mem(table) = db.heap() else { unreachable!() };
        let (lo, hi) = table.read().stats(col).unwrap().range().unwrap();
        let band = (lo + (hi - lo) * 0.4, lo + (hi - lo) * 0.5);
        let got = db.lookup_range(RangePredicate::range(col, band.0, band.1), None);
        let want = scan_count(&db, col, band.0, band.1, None);
        assert_eq!(got.rows.len(), want, "sensor {i}");
    }
}

#[test]
fn hermit_equals_baseline_row_sets() {
    let cfg = SyntheticConfig { tuples: 25_000, noise_fraction: 0.05, ..Default::default() };
    let mut hermit = build_synthetic(&cfg, TidScheme::Physical);
    hermit.create_hermit_index(cols::COL_C, cols::COL_B).unwrap();
    let mut baseline = build_synthetic(&cfg, TidScheme::Physical);
    baseline.create_baseline_index(cols::COL_C, false).unwrap();

    let mut gen = QueryGen::new(cfg.target_domain(), 7);
    for (lb, ub) in gen.ranges(0.01, 25) {
        let mut h = hermit.lookup_range(RangePredicate::range(cols::COL_C, lb, ub), None).rows;
        let mut b = baseline.lookup_range(RangePredicate::range(cols::COL_C, lb, ub), None).rows;
        h.sort();
        b.sort();
        assert_eq!(h, b, "row sets must be identical on [{lb}, {ub}]");
    }
}

#[test]
fn inserts_deletes_stay_consistent() {
    let cfg = SyntheticConfig { tuples: 10_000, ..Default::default() };
    let mut db = build_synthetic(&cfg, TidScheme::Logical);
    db.create_hermit_index(cols::COL_C, cols::COL_B).unwrap();

    // Insert new rows, some on-model, some as outliers.
    for i in 0..2_000i64 {
        let c = 500.0 + i as f64 * 0.25;
        let b = if i % 10 == 0 { -9.9e7 } else { cfg.correlate(c) };
        db.insert(&[Value::Int(10_000 + i), Value::Float(b), Value::Float(c), Value::Float(0.0)])
            .unwrap();
    }
    // Delete a slice of original rows.
    for pk in 100..200 {
        db.delete_by_pk(pk).unwrap();
    }
    // Hermit results still exactly match the scan.
    let mut gen = QueryGen::new((400.0, 1_200.0), 3);
    for (lb, ub) in gen.ranges(0.05, 15) {
        let got = db.lookup_range(RangePredicate::range(cols::COL_C, lb, ub), None);
        let want = scan_count(&db, cols::COL_C, lb, ub, None);
        assert_eq!(got.rows.len(), want, "after churn on [{lb}, {ub}]");
    }
}

#[test]
fn reorganization_through_database_pair_source() {
    let cfg = SyntheticConfig { tuples: 20_000, noise_fraction: 0.0, ..Default::default() };
    let mut db = build_synthetic(&cfg, TidScheme::Physical);
    db.create_hermit_index(cols::COL_C, cols::COL_B).unwrap();

    // Shift a region's correlation by updating colB through raw inserts of
    // fresh rows (simpler than UPDATE: new rows with a different regime).
    for i in 0..6_000i64 {
        let c = 2_000.0 + (i as f64) * 0.5;
        db.insert(&[
            Value::Int(100_000 + i),
            Value::Float(9.0 * c + 77.0), // new regime
            Value::Float(c),
            Value::Float(0.0),
        ])
        .unwrap();
    }
    let before = match db.index(cols::COL_C).unwrap() {
        SecondaryIndex::Hermit { trs, .. } => trs.stats().outliers,
        _ => unreachable!(),
    };
    assert!(before > 1_000, "regime shift should buffer outliers, got {before}");

    // Reorganize via the TablePairSource adapter. Split borrow: snapshot
    // the pairs first, then rebuild the tree.
    let pairs = TablePairSource { db: &db, target: cols::COL_C, host: cols::COL_B }
        .scan_range(f64::NEG_INFINITY, f64::INFINITY);
    let Some(SecondaryIndex::Hermit { trs, .. }) = db.index_mut(cols::COL_C) else {
        unreachable!()
    };
    trs.rebuild(&hermit::trs::VecPairSource(pairs));
    let after = trs.stats().outliers;
    assert!(after * 5 < before, "reorg should shrink buffers: {before} -> {after}");

    // Queries remain exact.
    let got = db.lookup_range(RangePredicate::range(cols::COL_C, 2_100.0, 2_200.0), None);
    let want = scan_count(&db, cols::COL_C, 2_100.0, 2_200.0, None);
    assert_eq!(got.rows.len(), want);
}

#[test]
fn paged_database_full_pipeline() {
    let store = Arc::new(SimulatedPageStore::new());
    let pool = Arc::new(BufferPool::new(store, 64));
    let schema = Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
    ]);
    let table = PagedTable::new(schema, pool);
    let mut db = Database::new_paged(table, 0);
    for i in 0..20_000i64 {
        let m = i as f64;
        db.insert(&[Value::Int(i), Value::Float(3.0 * m - 1.0), Value::Float(m)]).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();

    let r = db.lookup_range(RangePredicate::range(2, 5_000.0, 5_099.0), None);
    assert_eq!(r.rows.len(), 100);
    for &loc in &r.rows {
        let v = db.heap().value_f64(loc, 2).unwrap().unwrap();
        assert!((5_000.0..=5_099.0).contains(&v));
    }
}

#[test]
fn discovery_end_to_end_multiple_hosts() {
    // Table with two indexed candidates: a strongly correlated host and a
    // noise column; auto-creation must choose the right one.
    let schema = Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("good_host"),
        ColumnDef::float("noise_host"),
        ColumnDef::float("target"),
    ]);
    let mut db = Database::new(schema, 0, TidScheme::Physical);
    let mut state = 99u64;
    for i in 0..30_000i64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let t = i as f64;
        db.insert(&[
            Value::Int(i),
            Value::Float(t * t / 1_000.0), // monotone non-linear in target
            Value::Float((state >> 33) as f64),
            Value::Float(t),
        ])
        .unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_baseline_index(2, true).unwrap();
    let used_hermit = db.create_index_auto(3, &DiscoveryConfig::default()).unwrap();
    assert!(used_hermit);
    assert_eq!(db.index(3).unwrap().host_column(), Some(1), "must pick the correlated host");
}

#[test]
fn memory_claim_holds_across_workloads() {
    // The headline claim: Hermit's new indexes cost a small fraction of
    // the baseline's, across all three applications.
    let cfg = SyntheticConfig { tuples: 30_000, ..Default::default() };
    let mut hermit = build_synthetic(&cfg, TidScheme::Physical);
    hermit.create_hermit_index(cols::COL_C, cols::COL_B).unwrap();
    let mut baseline = build_synthetic(&cfg, TidScheme::Physical);
    baseline.create_baseline_index(cols::COL_C, false).unwrap();
    let (h, b) = (hermit.memory_report().new_indexes, baseline.memory_report().new_indexes);
    assert!(h * 5 < b, "synthetic: hermit {h} vs baseline {b}");

    let cfg = SensorConfig { tuples: 20_000, ..Default::default() };
    let mut hermit = build_sensor(&cfg, TidScheme::Physical);
    let mut baseline = build_sensor(&cfg, TidScheme::Physical);
    for i in 0..cfg.sensors {
        hermit.create_hermit_index(cfg.sensor_col(i), cfg.avg_col()).unwrap();
        baseline.create_baseline_index(cfg.sensor_col(i), false).unwrap();
    }
    let (h, b) = (hermit.memory_report().new_indexes, baseline.memory_report().new_indexes);
    assert!(h * 5 < b, "sensor: hermit {h} vs baseline {b}");
}

#[test]
fn error_bound_zero_and_huge_both_stay_exact() {
    // §6's tradeoff discussion: error_bound trades memory for lookup work,
    // but results must stay exact at both extremes.
    for eb in [0.0, 10_000.0] {
        let cfg = SyntheticConfig { tuples: 10_000, noise_fraction: 0.01, ..Default::default() };
        let mut db = build_synthetic(&cfg, TidScheme::Physical);
        db.set_trs_params(TrsParams::with_error_bound(eb));
        db.create_hermit_index(cols::COL_C, cols::COL_B).unwrap();
        let got = db.lookup_range(RangePredicate::range(cols::COL_C, 1_000.0, 1_500.0), None);
        let want = scan_count(&db, cols::COL_C, 1_000.0, 1_500.0, None);
        assert_eq!(got.rows.len(), want, "error_bound = {eb}");
    }
}
