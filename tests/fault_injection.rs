//! Fault-injection behaviors through the full `Database` stack.
//!
//! Two contracts:
//!
//! * **Mangled WAL**: whatever bytes a crash (or a corrupting device)
//!   leaves in the log, `Database::open` either recovers a valid state or
//!   fails with a typed error — it never panics and never applies garbage
//!   (proptest over seed-deterministic corruption schedules).
//! * **Seeded fault plans are replayable**: the same `u64` seed produces
//!   the same injected-fault schedule through the same workload, so any
//!   failure found by a seeded run can be handed around as one number.

use hermit::core::recovery::{DurabilityConfig, WAL_FILE};
use hermit::core::{Database, Query, RangePredicate};
use hermit::fault::{mangle_file, FaultPlan, FaultRates, FaultyPageStore};
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, Schema, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")])
}

fn row(pk: i64, m: f64) -> Vec<Value> {
    vec![Value::Int(pk), Value::Float(2.0 * m), Value::Float(m)]
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hermit-fi-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable directory with a checkpointed base state plus WAL-committed
/// post-checkpoint DML — the WAL actually carries records worth corrupting.
fn build_durable(dir: &std::path::Path) {
    let config = DurabilityConfig::default();
    let mut db = Database::create_durable(schema(), 0, dir, &config).unwrap();
    for i in 0..60i64 {
        db.insert(&row(i, 10.0 + i as f64)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    db.checkpoint(dir).unwrap();
    for i in 0..40i64 {
        db.insert(&row(100 + i, 200.0 + i as f64)).unwrap();
    }
    for pk in (0..20i64).step_by(3) {
        db.delete_by_pk(pk).unwrap();
    }
    db.wal_commit().unwrap();
    drop(db);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mangled WAL must recover (possibly to a prefix of the history)
    /// or fail with a typed error — never panic. When recovery succeeds,
    /// the recovered state must be internally consistent: a full scan
    /// works and no primary key appears twice.
    #[test]
    fn mangled_wal_recovers_or_fails_typed_never_panics(seed in 0u64..1u64 << 48) {
        let dir = fresh_dir(&format!("mangle-{seed}"));
        build_durable(&dir);
        mangle_file(&dir.join(WAL_FILE), seed).unwrap();

        // A typed error is an acceptable outcome for arbitrary corruption;
        // reaching past the call at all proves no panic.
        if let Ok(db) = Database::open(&dir, &DurabilityConfig::default()) {
            let r = db.execute(&Query::filter(RangePredicate::range(0, -1.0e15, 1.0e15)));
            let mut pks = std::collections::HashSet::new();
            for &loc in &r.rows {
                let row = db.heap().get(loc).unwrap();
                prop_assert!(
                    pks.insert(row[0].as_i64()),
                    "duplicate pk {:?} after mangled-WAL recovery (seed {seed})",
                    row[0]
                );
            }
            prop_assert_eq!(r.rows.len(), db.len(), "scan disagrees with len()");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The same seed must produce the same fault schedule through the same
/// workload: identical injected-fault counts, identical per-op outcomes,
/// identical surviving rows.
#[test]
fn seeded_fault_plan_replays_identically() {
    let run = |seed: u64| {
        // Append-only inserts only reach the device on eviction, so the
        // op count is modest — a generous rate keeps the schedule dense.
        let rates = FaultRates { eio: 0.2, ..FaultRates::NONE };
        let store = Arc::new(FaultyPageStore::with_plan(
            Arc::new(SimulatedPageStore::new()),
            FaultPlan::seeded(seed, rates),
        ));
        // A 2-frame pool forces evictions (and so store reads/writes) from
        // early on; an all-in-pool workload would never reach the device.
        let pool = Arc::new(BufferPool::new(Arc::<FaultyPageStore>::clone(&store), 2));
        let db = Database::new_paged(PagedTable::new(schema(), Arc::clone(&pool)), 0);
        let mut outcomes = Vec::new();
        for i in 0..2_000i64 {
            outcomes.push(db.insert(&row(i, i as f64)).is_ok());
        }
        (outcomes, db.len(), store.injected())
    };
    let (outcomes_a, len_a, injected_a) = run(42);
    let (outcomes_b, len_b, injected_b) = run(42);
    assert_eq!(outcomes_a, outcomes_b, "same seed must give the same per-op outcomes");
    assert_eq!(len_a, len_b);
    assert_eq!(injected_a, injected_b);
    assert!(injected_a > 0, "a 20% EIO rate over dozens of page ops must fire at least once");

    let (outcomes_c, _, _) = run(43);
    assert_ne!(outcomes_a, outcomes_c, "different seeds should explore different schedules");
}
