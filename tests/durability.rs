//! Crash-consistency suite for the checkpoint/WAL/recovery subsystem.
//!
//! The contract under test (see `hermit_core::recovery`):
//!
//! * **Checkpoint-only**: a checkpointed database, dropped and reopened,
//!   answers every query-API shape (Hermit route, baseline range, seq
//!   scan, multi-conjunct, projection/limit; scalar and batched) exactly
//!   like the pre-crash database did.
//! * **Checkpoint + WAL replay**: DML after the last checkpoint survives a
//!   crash as long as it was WAL-committed.
//! * **Torn WAL tail**: a crash mid-append recovers to the last complete
//!   record — silently, never an error.
//! * **Fault injection**: a device that starts failing writes makes the
//!   checkpoint fail cleanly (recovery then lands on the *previous*
//!   durable state); a device that *lies* (accepts writes and fsync but
//!   drops the data) is detected at open and reported as corruption rather
//!   than serving wrong rows.
//! * **Typed rejection**: the in-memory substrate cannot checkpoint.

use hermit::core::recovery::{DurabilityConfig, PAGES_FILE, WAL_FILE};
use hermit::core::shared::SharedDatabase;
use hermit::core::{BatchOptions, CoreError, Database, PlanKind, Query, RangePredicate};
use hermit::fault::FaultyPageStore;
use hermit::storage::paged::{PageId, PageStore};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")])
}

fn row(pk: i64, m: f64) -> Vec<Value> {
    vec![Value::Int(pk), Value::Float(2.0 * m), Value::Float(m)]
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hermit-dur-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Snapshot the durable state of a database directory — what a `kill -9`
/// would leave behind — *before* the in-process database is dropped (the
/// buffer pool's drop-flush would otherwise persist in-memory state the
/// simulated crash is supposed to lose).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap().flatten() {
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// The query shapes the acceptance contract enumerates. With data on
/// pk/host/target and indexes host=baseline, target=Hermit, these exercise
/// every plan kind reachable on the paged substrate (composites are
/// in-memory-only and cannot exist here).
fn queries() -> Vec<Query> {
    vec![
        Query::filter(RangePredicate::range(2, 100.0, 180.0)), // Hermit route
        Query::filter(RangePredicate::point(2, 250.0)),        // Hermit point
        Query::filter(RangePredicate::range(1, 300.0, 700.0)), // baseline index range
        Query::filter(RangePredicate::range(0, 50.0, 120.0)),  // seq scan (pk unindexed)
        Query::new().range(2, 0.0, 400.0).range(1, 100.0, 500.0), // multi-conjunct
        Query::filter(RangePredicate::range(2, 0.0, 1.0e9)),   // wide → scan fallback
        Query::filter(RangePredicate::range(2, 600.0, 650.0)).select([0, 2]).limit(10),
    ]
}

/// Materialize a query result as full rows keyed by pk (row locations are
/// an implementation detail; contents are the contract).
fn rows_of(db: &Database, result: &hermit::core::QueryResult) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> =
        result.rows.iter().map(|&loc| db.heap().get(loc).unwrap()).collect();
    rows.sort_by_key(|r| r[0].as_i64());
    rows
}

fn snapshot_results(db: &Database) -> Vec<Vec<Vec<Value>>> {
    queries().iter().map(|q| rows_of(db, &db.execute(q))).collect()
}

/// Assert `db` answers every query shape — scalar and batched, single- and
/// multi-threaded — exactly as `expected` (captured pre-crash).
fn assert_matches_oracle(db: &Database, expected: &[Vec<Vec<Value>>], ctx: &str) {
    let qs = queries();
    for (q, want) in qs.iter().zip(expected) {
        let got = rows_of(db, &db.execute(q));
        assert_eq!(&got, want, "{ctx}: scalar result diverged for {q:?}");
    }
    for threads in [1, 3] {
        let opts = BatchOptions::with_threads(threads);
        let batched = db.execute_batch(&qs, &opts);
        for ((q, want), r) in qs.iter().zip(expected).zip(&batched) {
            let got = rows_of(db, r);
            assert_eq!(&got, want, "{ctx}: batched({threads}) result diverged for {q:?}");
        }
    }
}

/// 4000 rows, host baseline + target Hermit, a few deletes and outliers.
fn build(dir: &Path, config: &DurabilityConfig) -> Database {
    let mut db = Database::create_durable(schema(), 0, dir, config).unwrap();
    for i in 0..4_000i64 {
        db.insert(&row(i, i as f64)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    for pk in (0..4_000i64).step_by(17) {
        db.delete_by_pk(pk).unwrap();
    }
    // Off-model outliers land in the TRS outlier buffers.
    for i in 0..50i64 {
        db.insert(&[Value::Int(100_000 + i), Value::Float(9.0e8), Value::Float(150.0 + i as f64)])
            .unwrap();
    }
    db
}

#[test]
fn mem_substrate_rejected_with_typed_error() {
    let dir = fresh_dir("mem");
    let db = Database::new(schema(), 0, TidScheme::Physical);
    assert!(matches!(db.checkpoint(&dir), Err(CoreError::NotDurable { .. })));
    let shared = SharedDatabase::new(db);
    assert!(matches!(shared.checkpoint(), Err(CoreError::NotDurable { .. })));
    shared.wal_commit().unwrap(); // no-op, not an error
}

#[test]
fn checkpoint_only_restart_matches_oracle() {
    let dir = fresh_dir("ckpt");
    let config = DurabilityConfig::default();
    let db = build(&dir, &config);
    db.checkpoint(&dir).unwrap();
    let expected = snapshot_results(&db);
    let len = db.len();

    // All plan kinds reachable on the paged substrate must actually be
    // exercised by the oracle set, or "identical results" proves little.
    let kinds: BTreeSet<&'static str> =
        queries().iter().map(|q| db.plan(q).kind().label()).collect();
    for kind in [PlanKind::Hermit, PlanKind::Baseline, PlanKind::Scan] {
        assert!(kinds.contains(kind.label()), "oracle set misses plan kind {kind:?}: {kinds:?}");
    }

    drop(db); // process "restart": everything in memory is gone
    let back = Database::open(&dir, &config).unwrap();
    assert_eq!(back.len(), len);
    assert_matches_oracle(&back, &expected, "checkpoint-only");

    // The recovered database keeps serving writes (and stays recoverable).
    back.insert(&row(500_000, 77.5)).unwrap();
    back.wal_commit().unwrap();
    let r = back.execute(&Query::filter(RangePredicate::point(2, 77.5)));
    assert_eq!(r.rows.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_replay_recovers_post_checkpoint_dml() {
    let dir = fresh_dir("wal");
    let config = DurabilityConfig::default();
    let db = build(&dir, &config);
    db.checkpoint(&dir).unwrap();

    // Post-checkpoint churn: inserts (some off-model), deletes of both old
    // and new rows. Only the WAL can carry these across the "crash".
    for i in 0..600i64 {
        db.insert(&row(200_000 + i, 4_100.0 + i as f64)).unwrap();
    }
    db.insert(&[Value::Int(300_000), Value::Float(-5.0e8), Value::Float(123.25)]).unwrap();
    for pk in (200_000..200_600i64).step_by(7) {
        db.delete_by_pk(pk).unwrap();
    }
    db.delete_by_pk(1_001).unwrap();
    db.wal_commit().unwrap();
    let expected = snapshot_results(&db);
    let len = db.len();

    drop(db);
    let back = Database::open(&dir, &config).unwrap();
    assert_eq!(back.len(), len, "WAL replay must restore the exact live row count");
    assert_matches_oracle(&back, &expected, "checkpoint+wal");
    // The off-model insert must be reachable through the Hermit route.
    let r = back.execute(&Query::filter(RangePredicate::point(2, 123.25)));
    assert_eq!(r.rows.len(), 1, "outlier inserted after the checkpoint lost in recovery");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_recovers_to_last_complete_record() {
    let dir = fresh_dir("torn");
    // Commit batch of 1: every append is fsynced, so every frame boundary
    // is a valid crash point.
    let config = DurabilityConfig { wal_sync_every: 1, ..Default::default() };
    let db = build(&dir, &config);
    db.checkpoint(&dir).unwrap();
    let mut wal_len_after = Vec::new();
    for i in 0..10i64 {
        db.insert(&row(400_000 + i, 5_000.0 + i as f64)).unwrap();
        wal_len_after.push(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len());
    }
    let base_len = db.len();
    // `kill -9` now: capture the durable state before drop can flush the
    // dirty heap pages, then tear the copy's WAL mid-append of record #10
    // (keep 9 complete frames plus a few bytes of the tenth).
    let crash = fresh_dir("torn-crash");
    copy_dir(&dir, &crash);
    drop(db);
    let dir = crash;
    let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    std::fs::write(dir.join(WAL_FILE), &bytes[..wal_len_after[8] as usize + 5]).unwrap();

    // Recovery must land on exactly the 9 committed records, without error.
    let back = Database::open(&dir, &config).unwrap();
    assert_eq!(back.len(), base_len - 1, "exactly the torn record must be missing");
    for i in 0..9i64 {
        let r = back.execute(&Query::filter(RangePredicate::point(2, 5_000.0 + i as f64)));
        assert_eq!(r.rows.len(), 1, "committed record {i} lost");
    }
    let r = back.execute(&Query::filter(RangePredicate::point(2, 5_009.0)));
    assert!(r.rows.is_empty(), "torn record must not resurface");

    // Appends continue cleanly after the truncated tear.
    back.insert(&row(400_009, 5_009.0)).unwrap();
    back.wal_commit().unwrap();
    let len = back.len();
    drop(back);
    let again = Database::open(&dir, &config).unwrap();
    assert_eq!(again.len(), len);
    assert_eq!(
        again.execute(&Query::filter(RangePredicate::point(2, 5_009.0))).rows.len(),
        1,
        "append after tear must survive the next restart"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// Device failure modes (dying / lying / page-granular drops) come from the
// shared `hermit_fault::FaultyPageStore` wrapper — the same double the
// crash-schedule explorer and the fault-injection suite use.

#[test]
fn dying_device_fails_checkpoint_and_recovery_lands_on_previous_state() {
    let dir = fresh_dir("dying");
    let config = DurabilityConfig::default();
    let db = build(&dir, &config);
    db.checkpoint(&dir).unwrap();
    drop(db);

    // Reopen through a store that will start failing after N more ops.
    let store = Arc::new(FaultyPageStore::open(&dir.join(PAGES_FILE)).unwrap());
    let db =
        Database::open_with_store(&dir, Arc::clone(&store) as Arc<dyn PageStore>, &config).unwrap();
    for i in 0..200i64 {
        db.insert(&row(600_000 + i, 7_000.0 + i as f64)).unwrap();
    }
    db.wal_commit().unwrap();
    let expected = snapshot_results(&db);
    let len = db.len();

    // Device dies; the checkpoint must fail cleanly, leaving the previous
    // catalog + committed WAL as the durable truth.
    store.set_dying(true);
    assert!(db.checkpoint(&dir).is_err(), "flush through a dead device cannot succeed");
    drop(db); // Drop-flush also fails; it is best-effort by design.

    let back = Database::open(&dir, &config).unwrap();
    assert_eq!(back.len(), len, "previous checkpoint + committed WAL must fully recover");
    assert_matches_oracle(&back, &expected, "dying-device");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lying_device_is_detected_at_open_instead_of_serving_wrong_rows() {
    let dir = fresh_dir("lying");
    let config = DurabilityConfig::default();
    let db = build(&dir, &config);
    db.checkpoint(&dir).unwrap();
    drop(db);

    let store = Arc::new(FaultyPageStore::open(&dir.join(PAGES_FILE)).unwrap());
    let db =
        Database::open_with_store(&dir, Arc::clone(&store) as Arc<dyn PageStore>, &config).unwrap();
    // Mutate a checkpointed page (tombstone), then checkpoint through the
    // now-lying device: every write "succeeds" but nothing reaches disk,
    // so the new catalog's live counts disagree with the durable pages.
    store.set_lying(true);
    db.delete_by_pk(2).unwrap();
    db.checkpoint(&dir).expect("a lying device cannot be observed at checkpoint time");
    drop(db);

    let err = Database::open(&dir, &config);
    assert!(
        matches!(err, Err(CoreError::Recovery(_)) | Err(CoreError::Storage(_))),
        "torn checkpoint must be reported, got {:?}",
        err.map(|db| db.len())
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Same lying device, but with a *count-neutral* content change: one
/// delete plus one insert on the same (last) page keeps the live count
/// identical, so only the catalog's per-page CRC can expose the dropped
/// write.
#[test]
fn lying_device_detected_even_when_live_counts_are_unchanged() {
    let dir = fresh_dir("lying-crc");
    let config = DurabilityConfig::default();
    let db = build(&dir, &config);
    db.checkpoint(&dir).unwrap();
    drop(db);

    let store = Arc::new(FaultyPageStore::open(&dir.join(PAGES_FILE)).unwrap());
    let db =
        Database::open_with_store(&dir, Arc::clone(&store) as Arc<dyn PageStore>, &config).unwrap();
    // pk 100_049 is the last-inserted outlier: it lives on the last page,
    // where the replacement insert will also land.
    let victim_page = db.primary().get(100_049).expect("outlier row is live").block;
    store.set_lying(true);
    db.delete_by_pk(100_049).unwrap();
    db.insert(&row(900_000, 42.25)).unwrap();
    let new_page = db.primary().get(900_000).unwrap().block;
    assert_eq!(victim_page, new_page, "scenario needs a count-neutral same-page change");
    db.checkpoint(&dir).expect("a lying device cannot be observed at checkpoint time");
    drop(db);

    let err = Database::open(&dir, &config);
    assert!(
        matches!(err, Err(CoreError::Recovery(_)) | Err(CoreError::Storage(_))),
        "count-neutral dropped write must still be reported, got {:?}",
        err.map(|db| db.len())
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The pool steals at page granularity, so a crash can persist a
/// re-insert's page while losing the page holding the original row's
/// tombstone: two live heap rows for one pk. Recovery must tombstone the
/// older ghost before idempotent replay, or it survives forever (seq scans
/// return it, `len()` is off by one).
#[test]
fn lost_tombstone_page_plus_flushed_reinsert_leaves_no_ghost_row() {
    let dir = fresh_dir("ghost");
    let config = DurabilityConfig::default();
    let db = build(&dir, &config);
    db.checkpoint(&dir).unwrap();
    drop(db);

    let store = Arc::new(FaultyPageStore::open(&dir.join(PAGES_FILE)).unwrap());
    let db =
        Database::open_with_store(&dir, Arc::clone(&store) as Arc<dyn PageStore>, &config).unwrap();
    let victim_page = db.primary().get(5).expect("pk 5 is live").block as PageId;
    db.delete_by_pk(5).unwrap(); // tombstone dirties the victim page
    db.insert(&row(5, 777.5)).unwrap(); // re-insert lands on the last page
    let reinsert_page = db.primary().get(5).unwrap().block as PageId;
    assert_ne!(victim_page, reinsert_page, "scenario needs the copies on different pages");
    db.wal_commit().unwrap();
    let expected = snapshot_results(&db);
    let len = db.len();

    // Crash: the re-insert's page reaches the device, the tombstone's
    // page does not.
    store.drop_page(victim_page);
    drop(db);

    let back = Database::open(&dir, &config).unwrap();
    assert_eq!(back.len(), len, "ghost duplicate row survived recovery");
    let r = back.execute(&Query::filter(RangePredicate::point(0, 5.0)));
    assert_eq!(r.rows.len(), 1, "exactly one live row for pk 5");
    assert_eq!(back.heap().get(r.rows[0]).unwrap(), row(5, 777.5), "the newer version wins");
    let old = back.execute(&Query::filter(RangePredicate::point(2, 5.0)));
    assert!(old.rows.is_empty(), "the pre-delete version must not resurface");
    assert_matches_oracle(&back, &expected, "ghost-dedup");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_checkpoint_under_concurrent_writers_loses_nothing() {
    let dir = fresh_dir("live");
    let config = DurabilityConfig::default();
    let db = build(&dir, &config);
    let shared = SharedDatabase::new(db);

    let writers = 4;
    let per_writer = 400i64;
    std::thread::scope(|s| {
        for w in 0..writers {
            let shared = shared.clone();
            s.spawn(move || {
                for i in 0..per_writer {
                    let pk = 700_000 + w as i64 * per_writer + i;
                    shared.insert(&row(pk, 8_000.0 + pk as f64 / 100.0)).unwrap();
                    if i % 5 == 4 {
                        shared.delete_by_pk(pk).unwrap();
                    }
                }
            });
        }
        // Live checkpoints racing the writers: each briefly quiesces them.
        let shared = shared.clone();
        s.spawn(move || {
            for _ in 0..5 {
                shared.checkpoint().unwrap();
                std::thread::yield_now();
            }
        });
    });
    shared.wal_commit().unwrap();
    let db = shared.into_inner().ok().expect("all clones dropped");
    let expected = snapshot_results(&db);
    let len = db.len();
    let dir2 = db.durability_dir().unwrap().to_path_buf();
    assert_eq!(dir2, dir);
    drop(db);

    let back = Database::open(&dir, &config).unwrap();
    assert_eq!(back.len(), len, "row lost or duplicated across live checkpoint + restart");
    assert_matches_oracle(&back, &expected, "live-checkpoint");
    // Spot-check: every surviving writer pk is present exactly once.
    for w in 0..writers {
        let pk = 700_000 + w as i64 * per_writer; // i = 0 survives (only i%5==4 deleted)
        let r = back.execute(&Query::filter(RangePredicate::range(0, pk as f64, pk as f64)));
        assert_eq!(r.rows.len(), 1, "writer {w}'s first row missing after recovery");
    }
    std::fs::remove_dir_all(&dir).ok();
}
