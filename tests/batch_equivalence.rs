//! Equivalence suite: the batched executor (`Database::lookup_batch`) must
//! return exactly the rows, false-positive counts, and unresolved counts of
//! the scalar oracle (`Database::lookup_range`) — across both tuple-id
//! schemes, both storage substrates, outliers, deletions, out-of-domain
//! predicates, extra conjuncts, and parallel validation.

use hermit::core::{BatchOptions, Database, QueryResult, RangePredicate};
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, RowLoc, Schema, TidScheme, Value};
use hermit::trs::TrsParams;
use std::sync::Arc;

const TARGET: usize = 2;
const OTHER: usize = 3;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("pk"),
        ColumnDef::float("host"),
        ColumnDef::float("target"),
        ColumnDef::float("other"),
    ])
}

/// Rows with target = i, host = 2i except every `noise_every`-th row, whose
/// wild host value forces the TRS-Tree's outlier buffers.
fn insert_rows(db: &mut Database, n: usize, noise_every: usize) {
    for i in 0..n {
        let m = i as f64;
        let host = if noise_every > 0 && i % noise_every == 0 { -5.0e6 } else { 2.0 * m };
        db.insert(&[
            Value::Int(i as i64),
            Value::Float(host),
            Value::Float(m),
            Value::Float(m * 10.0),
        ])
        .unwrap();
    }
}

fn mem_hermit(scheme: TidScheme, n: usize, noise_every: usize) -> Database {
    let mut db = Database::new(schema(), 0, scheme);
    insert_rows(&mut db, n, noise_every);
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(TARGET, 1).unwrap();
    db
}

fn mem_baseline(scheme: TidScheme, n: usize) -> Database {
    let mut db = Database::new(schema(), 0, scheme);
    insert_rows(&mut db, n, 0);
    db.create_baseline_index(TARGET, false).unwrap();
    db
}

/// Paged database with a small, sharded buffer pool so validation churns
/// through evictions during the comparison.
fn paged_hermit(n: usize, noise_every: usize, pool_pages: usize, shards: usize) -> Database {
    let store = Arc::new(SimulatedPageStore::new());
    let pool = Arc::new(BufferPool::new_sharded(store, pool_pages, shards));
    let table = PagedTable::new(schema(), pool);
    let mut db = Database::new_paged(table, 0);
    insert_rows(&mut db, n, noise_every);
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(TARGET, 1).unwrap();
    db
}

fn sorted_rows(r: &QueryResult) -> Vec<RowLoc> {
    let mut rows = r.rows.clone();
    rows.sort_unstable();
    rows
}

fn assert_equivalent(scalar: &QueryResult, batched: &QueryResult, ctx: &str) {
    assert_eq!(sorted_rows(scalar), sorted_rows(batched), "{ctx}: row sets differ");
    assert_eq!(
        scalar.false_positives, batched.false_positives,
        "{ctx}: false-positive counts differ"
    );
    assert_eq!(scalar.unresolved, batched.unresolved, "{ctx}: unresolved counts differ");
}

/// The predicate mix every test drives: dense ranges, ranges crossing
/// outlier rows, points (on-row, between-rows, on-outlier), inverted and
/// out-of-domain ranges, and domain-straddling edges.
fn predicate_mix(n: usize) -> Vec<RangePredicate> {
    let hi = n as f64;
    vec![
        RangePredicate::range(TARGET, 0.0, 50.0),
        RangePredicate::range(TARGET, 100.5, 299.25),
        RangePredicate::range(TARGET, hi - 100.0, hi + 500.0),
        RangePredicate::range(TARGET, -1_000.0, 25.0),
        RangePredicate::point(TARGET, 0.0),
        RangePredicate::point(TARGET, 123.0),
        RangePredicate::point(TARGET, 250.0), // outlier row when noise_every = 50
        RangePredicate::point(TARGET, 0.5),   // between rows: no matches
        RangePredicate::range(TARGET, 900.0, 100.0), // inverted: empty
        RangePredicate::range(TARGET, hi * 2.0, hi * 3.0), // out of domain: empty
    ]
}

#[test]
fn hermit_batch_matches_scalar_both_schemes() {
    for scheme in [TidScheme::Logical, TidScheme::Physical] {
        let db = mem_hermit(scheme, 10_000, 50);
        let preds = predicate_mix(10_000);
        let batched = db.lookup_batch(&preds);
        assert_eq!(batched.len(), preds.len());
        for (pred, b) in preds.iter().zip(&batched) {
            let s = db.lookup_range(*pred, None);
            assert_equivalent(&s, b, &format!("{scheme:?} [{}, {}]", pred.lb, pred.ub));
        }
    }
}

#[test]
fn baseline_batch_matches_scalar_both_schemes() {
    for scheme in [TidScheme::Logical, TidScheme::Physical] {
        let db = mem_baseline(scheme, 10_000);
        let preds = predicate_mix(10_000);
        for (pred, b) in preds.iter().zip(db.lookup_batch(&preds)) {
            let s = db.lookup_range(*pred, None);
            assert_equivalent(&s, &b, &format!("baseline {scheme:?} [{}, {}]", pred.lb, pred.ub));
        }
    }
}

#[test]
fn batch_survives_deletions() {
    for scheme in [TidScheme::Logical, TidScheme::Physical] {
        let db = mem_hermit(scheme, 2_000, 0);
        for pk in (0..2_000).step_by(3) {
            db.delete_by_pk(pk).unwrap();
        }
        let preds = predicate_mix(2_000);
        for (pred, b) in preds.iter().zip(db.lookup_batch(&preds)) {
            let s = db.lookup_range(*pred, None);
            assert_equivalent(&s, &b, &format!("deletions {scheme:?} [{}, {}]", pred.lb, pred.ub));
        }
        // Deleted rows must be gone from both paths.
        let r = &db.lookup_batch(&[RangePredicate::range(TARGET, 0.0, 8.0)])[0];
        assert_eq!(r.rows.len(), 6, "targets 1,2,4,5,7,8 survive");
    }
}

#[test]
fn batch_with_inflated_error_bound_counts_false_positives() {
    let mut db = Database::new(schema(), 0, TidScheme::Physical);
    insert_rows(&mut db, 10_000, 0);
    db.set_trs_params(TrsParams::with_error_bound(5_000.0));
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(TARGET, 1).unwrap();
    let pred = RangePredicate::range(TARGET, 1_000.0, 1_009.0);
    let s = db.lookup_range(pred, None);
    let b = &db.lookup_batch(&[pred])[0];
    assert_equivalent(&s, b, "inflated error bound");
    assert!(b.false_positives > 0, "wide bands must produce validated-away candidates");
}

#[test]
fn batch_extra_conjunct_matches_scalar() {
    for scheme in [TidScheme::Logical, TidScheme::Physical] {
        let db = mem_hermit(scheme, 10_000, 97);
        let extra = Some(RangePredicate::range(OTHER, 1_500.0, 1_590.0));
        let preds = [RangePredicate::range(TARGET, 100.0, 199.0)];
        let b = &db.lookup_batch_with(&preds, extra, &BatchOptions::default())[0];
        let s = db.lookup_range(preds[0], extra);
        assert_equivalent(&s, b, &format!("extra conjunct {scheme:?}"));
    }
}

#[test]
fn paged_batch_matches_scalar_under_pool_churn() {
    // 12-page pool over a ~140-page heap: validation constantly evicts.
    let db = paged_hermit(40_000, 50, 12, 4);
    let preds = predicate_mix(40_000);
    let batched = db.lookup_batch(&preds);
    for (pred, b) in preds.iter().zip(&batched) {
        let s = db.lookup_range(*pred, None);
        assert_equivalent(&s, b, &format!("paged [{}, {}]", pred.lb, pred.ub));
    }
}

#[test]
fn paged_batch_reduces_pool_traffic() {
    // Hot pool: every page resident. The scalar path pays one pool access
    // per candidate per column; the batched path pins each page once.
    let db = paged_hermit(20_000, 0, 256, 4);
    let pred = RangePredicate::range(TARGET, 5_000.0, 5_999.0);
    let pool_accesses = |db: &Database| {
        let hermit::core::Heap::Paged(t) = db.heap() else { unreachable!() };
        t.pool().stats().hits() + t.pool().stats().misses()
    };
    let stats_reset = |db: &Database| {
        let hermit::core::Heap::Paged(t) = db.heap() else { unreachable!() };
        t.pool().stats().reset();
    };

    stats_reset(&db);
    let s = db.lookup_range(pred, None);
    let scalar_accesses = pool_accesses(&db);

    stats_reset(&db);
    let b = &db.lookup_batch(&[pred])[0];
    let batched_accesses = pool_accesses(&db);

    assert_equivalent(&s, b, "hot-pool range");
    assert_eq!(s.rows.len(), 1_000);
    assert!(
        batched_accesses * 10 <= scalar_accesses,
        "page-grouped validation should collapse pool traffic: scalar {scalar_accesses} vs batched {batched_accesses}"
    );
}

#[test]
fn scalar_extra_conjunct_is_single_fetch() {
    // The scalar path reads both predicate columns from one heap visit;
    // with an extra conjunct the pool traffic must not double.
    let db = paged_hermit(20_000, 0, 256, 1);
    let pred = RangePredicate::range(TARGET, 1_000.0, 1_499.0);
    let extra = Some(RangePredicate::range(OTHER, 0.0, f64::MAX));
    let hermit::core::Heap::Paged(t) = db.heap() else { unreachable!() };

    t.pool().stats().reset();
    let without = db.lookup_range(pred, None);
    let accesses_without = t.pool().stats().hits() + t.pool().stats().misses();

    t.pool().stats().reset();
    let with = db.lookup_range(pred, extra);
    let accesses_with = t.pool().stats().hits() + t.pool().stats().misses();

    assert_eq!(without.rows.len(), 500);
    assert_eq!(with.rows.len(), 500);
    assert_eq!(accesses_with, accesses_without, "extra conjunct must not re-fetch the row's page");
}

#[test]
fn parallel_batch_matches_sequential_on_paged_substrate() {
    let db = paged_hermit(30_000, 100, 64, 8);
    let preds: Vec<RangePredicate> = (0..48)
        .map(|i| RangePredicate::range(TARGET, i as f64 * 600.0, i as f64 * 600.0 + 299.0))
        .collect();
    let sequential = db.lookup_batch(&preds);
    for threads in [2, 4, 7] {
        let parallel = db.lookup_batch_with(&preds, None, &BatchOptions::with_threads(threads));
        assert_eq!(sequential.len(), parallel.len());
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert_equivalent(s, p, &format!("threads={threads} pred {i}"));
        }
    }
}
