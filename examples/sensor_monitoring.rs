//! Sensor-monitoring scenario (Appendix A's Sensor application): 16 gas
//! sensors plus their average reading, where every sensor column is a
//! *non-linear* function of the average — the workload that exercises
//! TRS-Tree's tiered (hierarchical) curve fitting.
//!
//! ```text
//! cargo run --release --example sensor_monitoring
//! ```

use hermit::core::RangePredicate;
use hermit::storage::TidScheme;
use hermit::workloads::{build_sensor, QueryGen, SensorConfig};
use std::time::Instant;

fn main() {
    let cfg = SensorConfig { tuples: 200_000, ..Default::default() };
    println!("building {} readings from {} sensors…", cfg.tuples, cfg.sensors);
    let mut db = build_sensor(&cfg, TidScheme::Physical);

    // Index every sensor column through the average column's existing
    // index — 16 succinct structures instead of 16 full B+-trees.
    let t0 = Instant::now();
    for i in 0..cfg.sensors {
        db.create_hermit_index(cfg.sensor_col(i), cfg.avg_col()).unwrap();
    }
    println!("built {} Hermit indexes in {:.2?}", cfg.sensors, t0.elapsed());

    let report = db.memory_report();
    println!(
        "memory: table {:.1} MB | avg-column index {:.1} MB | all 16 Hermit indexes {:.2} MB",
        report.table as f64 / 1048576.0,
        report.existing_indexes as f64 / 1048576.0,
        report.new_indexes as f64 / 1048576.0,
    );

    // The paper's query: "during which time period do the readings in
    // sensor X fall between Y and Z?"
    let sensor = 7;
    let col = cfg.sensor_col(sensor);
    let hermit::core::Heap::Mem(table) = db.heap() else { unreachable!() };
    let domain = table.read().stats(col).unwrap().range().unwrap();
    let mut gen = QueryGen::new(domain, 99);

    let mut total_rows = 0usize;
    let mut total_fps = 0usize;
    let queries = gen.ranges(0.02, 200);
    let t0 = Instant::now();
    for &(lb, ub) in &queries {
        let r = db.lookup_range(RangePredicate::range(col, lb, ub), None);
        total_rows += r.rows.len();
        total_fps += r.false_positives;
    }
    let elapsed = t0.elapsed();
    println!(
        "{} range queries on sensor_{sensor} (2% selectivity): {:.0} q/s, {} rows, {:.2}% false positives validated away",
        queries.len(),
        queries.len() as f64 / elapsed.as_secs_f64(),
        total_rows,
        100.0 * total_fps as f64 / (total_rows + total_fps).max(1) as f64,
    );

    // Show the tiered structure that the non-linear correlation forced.
    let hermit::core::SecondaryIndex::Hermit { trs, .. } = db.index(col).unwrap() else {
        unreachable!()
    };
    let s = trs.stats();
    println!(
        "TRS-Tree on sensor_{sensor}: {} leaves across height {} (non-linear ⇒ tiered regression), {} outliers",
        s.leaves, s.height, s.outliers
    );
}
