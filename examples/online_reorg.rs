//! Online structure reorganization (§4.4 / Appendix B / §7.7): a workload
//! whose data distribution shifts at runtime, with a background-style
//! reorganization pass restoring index quality while lookups and inserts
//! keep flowing.
//!
//! ```text
//! cargo run --release --example online_reorg
//! ```

use hermit::storage::Tid;
use hermit::trs::{ConcurrentTrsTree, PairSource, TrsParams, TrsTree};
use parking_lot::Mutex;
use std::sync::Arc;

/// Base table stand-in that concurrent writers append to *before* touching
/// the index, as a real executor would.
struct SharedTable(Mutex<Vec<(f64, f64, Tid)>>);

impl PairSource for SharedTable {
    fn scan_range(&self, lb: f64, ub: f64) -> Vec<(f64, f64, Tid)> {
        self.0.lock().iter().filter(|(m, _, _)| *m >= lb && *m <= ub).copied().collect()
    }
}

fn main() {
    // Regime 1: host = 2·target. Build the index on it.
    let n = 200_000usize;
    let pairs: Vec<(f64, f64, Tid)> =
        (0..n).map(|i| (i as f64, 2.0 * i as f64, Tid(i as u64))).collect();
    let table = Arc::new(SharedTable(Mutex::new(pairs.clone())));
    let tree = Arc::new(ConcurrentTrsTree::new(TrsTree::build(
        TrsParams::default(),
        (0.0, n as f64),
        pairs,
    )));
    let s = tree.stats();
    println!(
        "initial tree: {} leaves, {} outliers, {:.1} KB",
        s.leaves,
        s.outliers,
        s.memory_bytes as f64 / 1024.0
    );

    // Regime 2: a third of the domain shifts to host = 5·target + 1000.
    // Every insert in that region misses the old model and lands in
    // outlier buffers.
    println!("\n-- distribution shift: [60k, 130k] now follows 5·m + 1000 --");
    {
        let mut t = table.0.lock();
        for p in t.iter_mut() {
            if p.0 >= 60_000.0 && p.0 <= 130_000.0 {
                p.1 = 5.0 * p.0 + 1_000.0;
            }
        }
    }
    for (m, nv, tid) in table.scan_range(60_000.0, 130_000.0) {
        tree.insert(m, nv, tid);
    }
    let s = tree.stats();
    println!(
        "after shift: {} outliers buffered, {:.1} KB",
        s.outliers,
        s.memory_bytes as f64 / 1024.0
    );

    // Background reorganization with concurrent readers and writers
    // (Appendix B's flag + side-buffer protocol).
    crossbeam::thread::scope(|scope| {
        {
            let tree = Arc::clone(&tree);
            let table = Arc::clone(&table);
            scope.spawn(move |_| {
                let mut passes = 0;
                while passes < 16 {
                    let processed = tree.reorganize_pass(table.as_ref(), 8);
                    passes += 1;
                    if processed == 0 {
                        break;
                    }
                }
            });
        }
        // A reader hammering the shifted region the whole time.
        {
            let tree = Arc::clone(&tree);
            scope.spawn(move |_| {
                for i in 0..20_000 {
                    let m = 60_000.0 + (i % 70_000) as f64;
                    let r = tree.lookup_point(m);
                    std::hint::black_box(r.ranges.len());
                }
            });
        }
        // A writer appending fresh rows under the new regime.
        {
            let tree = Arc::clone(&tree);
            let table = Arc::clone(&table);
            scope.spawn(move |_| {
                for i in 0..10_000u64 {
                    let m = 60_000.0 + (i % 70_000) as f64 + 0.5;
                    let nv = 5.0 * m + 1_000.0;
                    table.0.lock().push((m, nv, Tid(1_000_000 + i)));
                    tree.insert(m, nv, Tid(1_000_000 + i));
                }
            });
        }
    })
    .unwrap();

    let memory = tree.compacted_memory_bytes();
    let s = tree.stats();
    println!(
        "after {} reorganization passes: {} leaves, {} outliers, {:.1} KB",
        tree.reorg_passes(),
        s.leaves,
        s.outliers,
        memory as f64 / 1024.0
    );

    // Correctness spot-check under the new regime.
    let probe = 100_000.0;
    let truth = 5.0 * probe + 1_000.0;
    let r = tree.lookup_point(probe);
    let covered = r.ranges.iter().any(|(lo, hi)| truth >= *lo && truth <= *hi)
        || r.tids.contains(&Tid(100_000));
    println!("lookup m={probe}: true host value {truth} covered = {covered}");
    assert!(covered);
}
