//! EXPLAIN tour of the unified Query API: one declarative surface, four
//! access paths, chosen by the cost-based planner.
//!
//! A `STOCK_HISTORY`-style table `(TIME, DJ, SP, VOL)` carries every index
//! kind the planner knows: a baseline B+-tree on DJ, a Hermit TRS-Tree on
//! SP routed through DJ, a composite `(TIME, DJ)` baseline with a composite
//! Hermit `(TIME, SP)` routed through it — and VOL is deliberately left
//! unindexed, so predicates on it fall back to the sequential-scan plan
//! (instead of the pre-planner behavior of silently returning nothing).
//!
//! ```text
//! cargo run --release --example query_plans
//! ```

use hermit::core::{Database, Query};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};

const TIME: usize = 0;
const DJ: usize = 1;
const SP: usize = 2;
const VOL: usize = 3;

fn explain_and_run(db: &Database, title: &str, q: &Query) {
    println!("=== {title}");
    let plan = db.plan(q);
    print!("{plan}");
    let r = db.execute_plan(&plan);
    println!(
        "--> {} rows, {} false positives, {} unresolved\n",
        r.rows.len(),
        r.false_positives,
        r.unresolved
    );
}

fn main() {
    let schema = Schema::new(vec![
        ColumnDef::int("time"),
        ColumnDef::float("dj"),
        ColumnDef::float("sp"),
        ColumnDef::float("vol"),
    ]);
    let mut db = Database::new(schema, TIME, TidScheme::Physical);
    let days = 20_000usize;
    for t in 0..days {
        // DJ drifts upward with deterministic wiggle; SP tracks DJ at ~1/8
        // scale (the paper's Fig. 26 relationship); VOL is uncorrelated.
        let dj = 3_000.0 + t as f64 * 0.5 + ((t % 97) as f64 - 48.0);
        let sp = dj / 8.0 + ((t % 13) as f64 - 6.0) * 0.05;
        let vol = 1.0e6 + ((t * 7_919) % 100_000) as f64;
        db.insert(&[Value::Int(t as i64), Value::Float(dj), Value::Float(sp), Value::Float(vol)])
            .unwrap();
    }

    // The index estate: complete index on DJ; Hermit index on SP routed
    // through it; composite (TIME, DJ) baseline hosting a composite Hermit
    // (TIME, SP). VOL stays unindexed on purpose.
    db.create_baseline_index(DJ, true).unwrap();
    db.create_hermit_index(SP, DJ).unwrap();
    db.create_composite_baseline(TIME, DJ).unwrap();
    db.create_composite_hermit(TIME, SP, DJ).unwrap();

    explain_and_run(
        &db,
        "narrow SP range: the Hermit route wins",
        &Query::new().range(SP, 700.0, 710.0),
    );
    explain_and_run(
        &db,
        "narrow DJ range: the complete index answers exactly",
        &Query::new().range(DJ, 5_600.0, 5_680.0),
    );
    explain_and_run(
        &db,
        "TIME x SP box: the composite Hermit route wins",
        &Query::new().range(TIME, 5_000.0, 10_000.0).range(SP, 700.0, 800.0),
    );
    explain_and_run(
        &db,
        "VOL predicate: no index, seq-scan fallback (correct rows, not silence)",
        &Query::new().range(VOL, 1_000_000.0, 1_002_000.0),
    );

    // Projection + limit ride on any plan; here the scan.
    let q = Query::new().range(VOL, 1_000_000.0, 1_002_000.0).select([TIME, VOL]).limit(3);
    println!("=== projection and limit");
    let plan = db.plan(&q);
    print!("{plan}");
    let r = db.execute_plan(&plan);
    for row in r.projected.as_deref().unwrap_or_default() {
        println!("--> {row:?}");
    }
}
