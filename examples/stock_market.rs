//! Stock-market scenario from the paper's introduction (§3's running
//! example and Fig. 26): a wide table of daily high/low prices where each
//! high column is indexed through its correlated low column, with jump
//! days surfacing as TRS-Tree outliers.
//!
//! ```text
//! cargo run --release --example stock_market
//! ```

use hermit::core::RangePredicate;
use hermit::storage::TidScheme;
use hermit::trs::ConcurrentTrsTree;
use hermit::workloads::{build_stock, StockConfig};

fn main() {
    let cfg =
        StockConfig { stocks: 20, days: 10_000, jump_probability: 0.003, ..Default::default() };
    println!(
        "building {} stocks × {} trading days ({} columns)…",
        cfg.stocks,
        cfg.days,
        cfg.width()
    );
    let mut db = build_stock(&cfg, TidScheme::Physical);

    // The DBA has indexes on every *low* column. Queries keep arriving on
    // the *high* columns, so index all of them the Hermit way: each high
    // column routes through its own low column.
    for s in 0..cfg.stocks {
        db.create_hermit_index(cfg.high_col(s), cfg.low_col(s)).unwrap();
    }

    let report = db.memory_report();
    println!(
        "memory: table {:.1} MB | existing (low) indexes {:.1} MB | new (high) Hermit indexes {:.1} MB",
        report.table as f64 / 1048576.0,
        report.existing_indexes as f64 / 1048576.0,
        report.new_indexes as f64 / 1048576.0,
    );

    // Fig. 26's point: jump days (high diverging >50% from low) live in
    // outlier buffers rather than poisoning the regression.
    let stock = 0;
    let hermit::core::SecondaryIndex::Hermit { trs, .. } = db.index(cfg.high_col(stock)).unwrap()
    else {
        unreachable!()
    };
    report_outliers(trs, stock);

    // The paper's example query: "during which time periods does stock X's
    // highest price fall between Y and Z?" — a high-column range conjoined
    // with a TIME range, both validated at the base table.
    let hermit::core::Heap::Mem(table) = db.heap() else { unreachable!() };
    let (lo, hi) = table.read().stats(cfg.high_col(stock)).unwrap().range().unwrap();
    let band = (lo + (hi - lo) * 0.45, lo + (hi - lo) * 0.55);
    let result = db.lookup_range(
        RangePredicate::range(cfg.high_col(stock), band.0, band.1),
        Some(RangePredicate::range(0, 2_000.0, 8_000.0)),
    );
    println!(
        "days with high_{stock} in [{:.2}, {:.2}] during days 2000–8000: {} (false positives filtered: {})",
        band.0,
        band.1,
        result.rows.len(),
        result.false_positives
    );

    // Show a few matching days.
    for &loc in result.rows.iter().take(5) {
        let t = db.heap().value_f64(loc, 0).unwrap().unwrap();
        let h = db.heap().value_f64(loc, cfg.high_col(stock)).unwrap().unwrap();
        println!("  day {t:>6.0}  high = {h:.2}");
    }
}

fn report_outliers(trs: &ConcurrentTrsTree, stock: usize) {
    let stats = trs.stats();
    println!(
        "TRS-Tree on high_{stock}: {} leaves, {} internals, height {}, {} buffered outliers, {:.1} KB",
        stats.leaves,
        stats.internals,
        stats.height,
        stats.outliers,
        stats.memory_bytes as f64 / 1024.0
    );
}
