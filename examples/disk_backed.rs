//! Hermit on a disk-based RDBMS (§7.8): tuples live in 8 KiB slotted pages
//! behind a buffer pool (PostgreSQL style, physical pointers), while the
//! TRS-Tree and the host B+-tree stay in memory. The per-query cost is
//! dominated by heap page fetches; TRS-Tree translation is effectively
//! free.
//!
//! ```text
//! cargo run --release --example disk_backed
//! ```

use hermit::core::{Database, RangePredicate};
use hermit::storage::paged::{BufferPool, PagedTable, SimulatedPageStore};
use hermit::storage::{ColumnDef, Schema, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // Simulated SSD: 20 µs per page access, 128-page (1 MiB) buffer pool.
    let store = Arc::new(SimulatedPageStore::with_latency(
        Duration::from_micros(20),
        Duration::from_micros(20),
    ));
    let pool = Arc::new(BufferPool::new(store, 128));

    let schema = Schema::new(vec![
        ColumnDef::int("id"),
        ColumnDef::float("reading"),
        ColumnDef::float("calibrated"), // calibrated ≈ 1.25·reading − 2
    ]);
    let table = PagedTable::new(schema, Arc::clone(&pool));
    let mut db = Database::new_paged(table, 0);

    println!("loading 200k rows into slotted pages…");
    for i in 0..200_000i64 {
        let reading = (i % 50_021) as f64 * 0.13;
        db.insert(&[Value::Int(i), Value::Float(reading), Value::Float(1.25 * reading - 2.0)])
            .unwrap();
    }
    let hermit::core::Heap::Paged(t) = db.heap() else { unreachable!() };
    println!("heap: {} pages, pool capacity {} pages", t.page_count(), pool.capacity());

    // Existing index on `reading`; Hermit index on `calibrated` routed
    // through it. Both index structures live in memory.
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();

    pool.stats().reset();
    let t0 = Instant::now();
    let mut rows = 0usize;
    let queries = 50;
    for q in 0..queries {
        let lb = (q * 97) as f64;
        let r = db.lookup_range(RangePredicate::range(2, lb, lb + 60.0), None);
        rows += r.rows.len();
    }
    let elapsed = t0.elapsed();
    println!(
        "{queries} range queries → {rows} rows in {elapsed:.2?} ({:.0} q/s)",
        queries as f64 / elapsed.as_secs_f64()
    );
    println!(
        "buffer pool: {} hits, {} misses, {} evictions — misses are where the time went",
        pool.stats().hits(),
        pool.stats().misses(),
        pool.stats().evictions()
    );
}
