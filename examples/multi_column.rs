//! The paper's §3 running example, multi-column form: a `STOCK_HISTORY`
//! table `(TIME, DJ, SP, VOL)` with an existing composite index on
//! `(TIME, DJ)`. The DBA wants an index on `(TIME, SP)` for queries like
//!
//! ```sql
//! SELECT * FROM STOCK_HISTORY
//! WHERE (TIME BETWEEN ? AND ?) AND (SP BETWEEN ? AND ?)
//! ```
//!
//! Hermit notices SP correlates with DJ, builds a TRS-Tree from SP to DJ,
//! and answers the box query through the existing `(TIME, DJ)` index.
//!
//! ```text
//! cargo run --release --example multi_column
//! ```

use hermit::core::composite::CompositeIndexes;
use hermit::core::{Database, RangePredicate};
use hermit::stats::pearson;
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};
use hermit::trs::TrsParams;

const TIME: usize = 0;
const DJ: usize = 1;
const SP: usize = 2;
const VOL: usize = 3;

fn main() {
    let schema = Schema::new(vec![
        ColumnDef::int("time"),
        ColumnDef::float("dj"),
        ColumnDef::float("sp"),
        ColumnDef::float("vol"),
    ]);
    let db = Database::new(schema, TIME, TidScheme::Physical);

    // 60 years of trading days: DJ drifts upward; SP tracks DJ at roughly
    // 1/8 scale with its own wiggle (the Fig. 26 relationship).
    let days = 15_000usize;
    let mut dj = 3_000.0f64;
    let mut spread = 0.0f64;
    for t in 0..days {
        dj = (dj * (1.0 + 0.0002 + 0.004 * ((t as f64 * 0.7).sin()))).max(100.0);
        spread = 0.95 * spread + 0.3 * ((t as f64 * 1.3).cos());
        let sp = dj / 8.0 + spread * 3.0;
        let vol = 1.0e6 + (t % 1000) as f64 * 500.0;
        db.insert(&[Value::Int(t as i64), Value::Float(dj), Value::Float(sp), Value::Float(vol)])
            .unwrap();
    }

    // Correlation check a DBA would run before recommending Hermit.
    let hermit::core::Heap::Mem(table) = db.heap() else { unreachable!() };
    let table = table.read();
    let djs: Vec<f64> = table.column(DJ).unwrap().iter_f64().flatten().collect();
    let sps: Vec<f64> = table.column(SP).unwrap().iter_f64().flatten().collect();
    println!("pearson(SP, DJ) = {:.4}", pearson(&sps, &djs));

    // Existing composite index on (TIME, DJ); Hermit composite on
    // (TIME, SP) routed through DJ.
    let mut comp = CompositeIndexes::new();
    let host = comp.create_baseline(&db, TIME, DJ).unwrap();
    let hermit_idx = comp.create_hermit(&db, TIME, SP, DJ, TrsParams::default()).unwrap();
    println!(
        "index sizes: (TIME,DJ) host = {:.1} KB | (TIME,SP) Hermit = {:.2} KB",
        comp.get(host).unwrap().memory_bytes() as f64 / 1024.0,
        comp.get(hermit_idx).unwrap().memory_bytes() as f64 / 1024.0,
    );

    // The paper's box query: a TIME window AND an SP band.
    let (sp_lo, sp_hi) = {
        let mid = djs[10_000] / 8.0;
        (mid - 5.0, mid + 5.0)
    };
    let result = comp.lookup_box(
        &db,
        hermit_idx,
        RangePredicate::range(TIME, 8_000.0, 12_000.0),
        RangePredicate::range(SP, sp_lo, sp_hi),
    );
    println!(
        "days 8000–12000 with SP in [{sp_lo:.2}, {sp_hi:.2}]: {} rows ({} false positives removed)",
        result.rows.len(),
        result.false_positives
    );

    // Cross-check against a direct composite baseline on (TIME, SP).
    let direct = comp.create_baseline(&db, TIME, SP).unwrap();
    let expected = comp.lookup_box(
        &db,
        direct,
        RangePredicate::range(TIME, 8_000.0, 12_000.0),
        RangePredicate::range(SP, sp_lo, sp_hi),
    );
    assert_eq!(result.rows.len(), expected.rows.len());
    println!("verified against a complete (TIME, SP) composite index ✓");

    for &loc in result.rows.iter().take(3) {
        let row = db.heap().get(loc).unwrap();
        println!("  time={} dj={} sp={} vol={}", row[TIME], row[DJ], row[SP], row[VOL]);
    }
}
