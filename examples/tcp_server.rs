//! Serving over the wire: boot a `HermitServer` on a loopback socket,
//! drive it with the typed `HermitClient`, and read the metrics exporter.
//! Everything the `hermit-server` / `hermit-cli` binaries do, in-process.
//!
//! ```text
//! cargo run --release --example tcp_server
//! ```

use hermit::core::shared::{MaintenanceConfig, MaintenanceWorker, SharedDatabase};
use hermit::core::{Database, Query};
use hermit::server::{HermitClient, HermitServer, ServerConfig};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};
use std::time::Duration;

fn main() {
    // A small sensor table: `calibrated` is linearly correlated with `raw`,
    // so a Hermit index on `calibrated` can route through the B+-tree on
    // `raw` instead of materializing its own full index.
    let schema = Schema::new(vec![
        ColumnDef::int("id"),
        ColumnDef::float("raw"),
        ColumnDef::float("calibrated"),
    ]);
    let mut db = Database::new(schema, 0, TidScheme::Physical);
    for id in 0..10_000i64 {
        let raw = id as f64;
        db.insert(&[Value::Int(id), Value::Float(raw), Value::Float(1.25 * raw - 2.0)]).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();

    // Put it behind TCP. Port 0 → the OS picks an ephemeral port. The
    // background maintenance worker is owned by the server and stopped as
    // part of graceful shutdown.
    let shared = SharedDatabase::new(db);
    let worker = MaintenanceWorker::start(shared.clone(), MaintenanceConfig::default());
    let config = ServerConfig {
        max_connections: 8,
        query_deadline: Some(Duration::from_secs(2)),
        ..Default::default()
    };
    let server = HermitServer::start(shared, Some(worker), config, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}");

    // Any number of clients may connect; each gets its own server thread.
    let mut client = HermitClient::connect(addr).unwrap();

    // DML over the wire.
    let id = client
        .insert(vec![Value::Int(10_000), Value::Float(10_000.0), Value::Float(12_498.0)])
        .unwrap();
    println!("inserted pk {id}");
    client.delete(17).unwrap();

    // Queries route through the planner exactly as local calls do.
    let q = Query::new().range(2, 100.0, 110.0);
    println!("explain: {}", client.explain(&q).unwrap().trim_end());
    let rows = client.query(&q).unwrap();
    println!("range [100, 110] on calibrated -> {} rows", rows.len());
    let hits = client.query(&Query::new().point(2, 12_498.0)).unwrap();
    println!("point 12498 on calibrated    -> {} rows", hits.len());

    // The Stats response is the metrics exporter: a stable text dump of
    // server, pool, reorganization, WAL, and worker counters.
    let stats = client.stats().unwrap();
    let interesting =
        ["hermit_requests_total", "hermit_connections_active", "hermit_outlier_share"];
    for line in stats.lines().filter(|l| interesting.iter().any(|k| l.starts_with(k))) {
        println!("stats: {line}");
    }

    // Graceful shutdown: drain connections, stop the worker, final
    // checkpoint (a no-op here — this database is not durable).
    client.shutdown().unwrap();
    server.wait();
    println!("server shut down cleanly");
}
