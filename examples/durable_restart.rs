//! Durability end-to-end: checkpoint a disk-backed database, "crash" by
//! dropping every in-memory structure, reopen from the directory, and show
//! the queries answer identically — including DML that happened after the
//! checkpoint and only survived through the write-ahead log.
//!
//! ```text
//! cargo run --release --example durable_restart
//! ```

use hermit::core::recovery::DurabilityConfig;
use hermit::core::{Database, Query, RangePredicate};
use hermit::storage::{ColumnDef, Schema, Value};

fn row(pk: i64, m: f64) -> Vec<Value> {
    vec![Value::Int(pk), Value::Float(2.0 * m), Value::Float(m)]
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hermit-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig::default();

    let schema = Schema::new(vec![
        ColumnDef::int("id"),
        ColumnDef::float("reading"),    // host column
        ColumnDef::float("calibrated"), // target column, correlated
    ]);
    let mut db = Database::create_durable(schema, 0, &dir, &config).unwrap();

    println!("loading 50k rows into {} …", dir.display());
    for i in 0..50_000i64 {
        db.insert(&row(i, i as f64)).unwrap();
    }
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();

    println!("checkpoint…");
    db.checkpoint(&dir).unwrap();

    // Post-checkpoint DML: only the WAL can carry these across a crash.
    for i in 0..500i64 {
        db.insert(&row(100_000 + i, 60_000.0 + i as f64)).unwrap();
    }
    db.delete_by_pk(17).unwrap();
    db.wal_commit().unwrap();

    let probe = Query::filter(RangePredicate::range(2, 60_100.0, 60_149.0));
    let before = db.execute(&probe).rows.len();
    let len_before = db.len();
    println!("pre-crash : {len_before} live rows, probe finds {before}");

    drop(db); // the "crash": heap frames, indexes, stats — all gone

    let back = Database::open(&dir, &config).unwrap();
    let after = back.execute(&probe).rows.len();
    println!("recovered : {} live rows, probe finds {after}", back.len());

    assert_eq!(back.len(), len_before, "live row count must survive restart");
    assert_eq!(after, before, "query results must survive restart");
    assert!(
        back.execute(&Query::filter(RangePredicate::point(0, 17.0))).rows.is_empty(),
        "WAL-logged delete must survive restart"
    );
    println!("restart-survivable: checkpoint + WAL replay verified ✓");
    let _ = std::fs::remove_dir_all(&dir);
}
