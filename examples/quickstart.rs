//! Quickstart: build a table, let Hermit discover a correlation, and query
//! through a TRS-Tree instead of a full secondary index.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hermit::core::{Database, DiscoveryConfig, RangePredicate};
use hermit::storage::{ColumnDef, Schema, TidScheme, Value};

fn main() {
    // A table of orders: id (pk), subtotal, total (≈ subtotal × 1.08 + shipping).
    let schema = Schema::new(vec![
        ColumnDef::int("order_id"),
        ColumnDef::float("subtotal"),
        ColumnDef::float("total"),
    ]);
    let mut db = Database::new(schema, 0, TidScheme::Physical);

    // Load 100 K orders. `total` correlates with `subtotal` with a little
    // scatter from variable shipping fees.
    for i in 0..100_000i64 {
        let subtotal = 5.0 + (i % 9_973) as f64 * 0.37;
        let shipping = 3.0 + (i % 7) as f64;
        db.insert(&[
            Value::Int(i),
            Value::Float(subtotal),
            Value::Float(subtotal * 1.08 + shipping),
        ])
        .unwrap();
    }

    // The shop already queries `subtotal`, so that column has an index.
    db.create_baseline_index(1, true).unwrap();

    // Now the analyst wants fast queries on `total`. Instead of paying for
    // a second complete B+-tree, ask Hermit: it screens the correlation
    // registry and builds a succinct TRS-Tree routed through `subtotal`.
    let used_hermit = db.create_index_auto(2, &DiscoveryConfig::default()).unwrap();
    println!("index on `total` is {}", if used_hermit { "a Hermit TRS-Tree" } else { "a B+-tree" });

    let trs_bytes = db.index(2).unwrap().memory_bytes();
    let host_bytes = db.index(1).unwrap().memory_bytes();
    println!(
        "index sizes: total → {:.1} KB (TRS-Tree)   subtotal → {:.1} KB (B+-tree)",
        trs_bytes as f64 / 1024.0,
        host_bytes as f64 / 1024.0
    );

    // Range query on the Hermit-indexed column. Results are exact: the
    // three-phase lookup validates candidates against the base table.
    let result = db.lookup_range(RangePredicate::range(2, 500.0, 520.0), None);
    println!(
        "orders with total in [500, 520]: {} rows ({} false positives removed)",
        result.rows.len(),
        result.false_positives
    );

    // Verify against a full scan.
    let hermit::core::Heap::Mem(table) = db.heap() else { unreachable!() };
    let table = table.read();
    let col = table.column(2).unwrap();
    let expected = (0..table.total_rows())
        .filter(|&i| col.get_f64(i).is_some_and(|v| (500.0..=520.0).contains(&v)))
        .count();
    assert_eq!(result.rows.len(), expected, "Hermit must return exactly the scan's rows");
    println!("verified against a sequential scan ✓");
}
