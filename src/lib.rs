#![forbid(unsafe_code)]
//! # hermit
//!
//! Facade crate for the Hermit reproduction: re-exports the public API of
//! every sub-crate so examples and downstream users need a single
//! dependency.
//!
//! Hermit ("Designing Succinct Secondary Indexing Mechanism by Exploiting
//! Column Correlations", SIGMOD 2019) answers secondary-index queries on a
//! *target* column through a tiny ML-enhanced structure — the TRS-Tree —
//! that models the correlation between the target column and a *host* column
//! that already has a complete index.
//!
//! See the `examples/` directory for end-to-end usage.

pub use hermit_btree as btree;
pub use hermit_cm as cm;
pub use hermit_core as core;
pub use hermit_fault as fault;
pub use hermit_server as server;
pub use hermit_stats as stats;
pub use hermit_storage as storage;
pub use hermit_trs as trs;
pub use hermit_txn as txn;
pub use hermit_workloads as workloads;
