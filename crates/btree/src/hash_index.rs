//! Hash-based primary index.
//!
//! Under the logical-pointer scheme (§5.1), every secondary-index lookup —
//! baseline or Hermit — must resolve primary keys to row locations through
//! the primary index. The resolution is always a point lookup, so a hash
//! map is the natural structure; the B+-tree variant is also available when
//! the primary index doubles as a host index (the paper notes a primary
//! index can serve as the host index).

use hermit_storage::RowLoc;
use std::collections::HashMap;

/// Primary index: primary key → row location.
#[derive(Debug, Default, Clone)]
pub struct HashPrimaryIndex {
    map: HashMap<i64, RowLoc>,
}

impl HashPrimaryIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty index with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HashPrimaryIndex { map: HashMap::with_capacity(cap) }
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Register (or move) a primary key.
    pub fn insert(&mut self, pk: i64, loc: RowLoc) {
        self.map.insert(pk, loc);
    }

    /// Resolve a primary key to its row location.
    #[inline]
    pub fn get(&self, pk: i64) -> Option<RowLoc> {
        self.map.get(&pk).copied()
    }

    /// Remove a primary key; returns its old location.
    pub fn remove(&mut self, pk: i64) -> Option<RowLoc> {
        self.map.remove(&pk)
    }

    /// Approximate heap bytes. A `HashMap` bucket holds the key, value, and
    /// control metadata; we charge capacity × entry size plus one control
    /// byte per slot (hashbrown layout).
    pub fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(i64, RowLoc)>();
        self.map.capacity() * (entry + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut idx = HashPrimaryIndex::new();
        idx.insert(1, RowLoc::new(0, 5));
        idx.insert(2, RowLoc::new(1, 0));
        assert_eq!(idx.get(1), Some(RowLoc::new(0, 5)));
        assert_eq!(idx.get(3), None);
        assert_eq!(idx.remove(1), Some(RowLoc::new(0, 5)));
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn reinsert_moves_key() {
        let mut idx = HashPrimaryIndex::new();
        idx.insert(7, RowLoc::new(0, 0));
        idx.insert(7, RowLoc::new(9, 9));
        assert_eq!(idx.get(7), Some(RowLoc::new(9, 9)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn memory_scales() {
        let mut idx = HashPrimaryIndex::new();
        for i in 0..10_000 {
            idx.insert(i, RowLoc::from_index(i as usize));
        }
        assert!(idx.memory_bytes() >= 10_000 * 16);
    }
}
