//! B+-tree node representation.
//!
//! Nodes live in a flat arena ([`crate::tree::BPlusTree`] owns the `Vec`)
//! and reference each other by index, which keeps the tree compact,
//! cache-friendly, and free of `unsafe`. The per-node key budget is chosen
//! so an internal node's key array is ~256 bytes for 8-byte keys, matching
//! the node size used by DBMS-X in the paper (§7.1).

/// Index of a node inside the tree's arena.
pub type NodeId = u32;

/// Sentinel meaning "no node" (used for the last leaf's `next` link).
pub const NIL: NodeId = u32::MAX;

/// Maximum keys per node. 32 keys × 8 bytes = 256-byte key array, the
/// paper's node size.
pub const MAX_KEYS: usize = 32;

/// Minimum keys after a split (half of max).
pub const MIN_KEYS: usize = MAX_KEYS / 2;

/// One node of the B+-tree: either an internal router or a leaf holding
/// `(key, value)` entries.
#[derive(Debug, Clone)]
pub enum Node<K, V> {
    /// Internal node: `children.len() == keys.len() + 1`; child `i` holds
    /// keys `< keys[i]` (with duplicates routed right on equality at insert
    /// time, and scans starting left on equality at lookup time).
    Internal {
        /// Separator keys.
        keys: Vec<K>,
        /// Child node ids.
        children: Vec<NodeId>,
    },
    /// Leaf node: sorted multi-set of entries plus a right-sibling link for
    /// range scans.
    Leaf {
        /// Sorted keys (duplicates allowed).
        keys: Vec<K>,
        /// Values parallel to `keys`.
        values: Vec<V>,
        /// Right sibling, or [`NIL`].
        next: NodeId,
    },
}

impl<K, V> Node<K, V> {
    /// Fresh empty leaf.
    pub fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::with_capacity(MAX_KEYS),
            values: Vec::with_capacity(MAX_KEYS),
            next: NIL,
        }
    }

    /// True if this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of keys stored.
    pub fn key_count(&self) -> usize {
        match self {
            Node::Internal { keys, .. } => keys.len(),
            Node::Leaf { keys, .. } => keys.len(),
        }
    }

    /// Approximate heap bytes held by this node (used by the memory
    /// experiments). `size_of` the element types times capacities plus the
    /// enum header.
    pub fn memory_bytes(&self) -> usize {
        let header = std::mem::size_of::<Self>();
        match self {
            Node::Internal { keys, children } => {
                header
                    + keys.capacity() * std::mem::size_of::<K>()
                    + children.capacity() * std::mem::size_of::<NodeId>()
            }
            Node::Leaf { keys, values, .. } => {
                header
                    + keys.capacity() * std::mem::size_of::<K>()
                    + values.capacity() * std::mem::size_of::<V>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_starts_empty_with_capacity() {
        let n: Node<u64, u64> = Node::new_leaf();
        assert!(n.is_leaf());
        assert_eq!(n.key_count(), 0);
        assert!(n.memory_bytes() >= MAX_KEYS * 8);
    }

    #[test]
    fn memory_accounts_for_both_sides() {
        let n: Node<u64, u64> = Node::Internal { keys: vec![1, 2, 3], children: vec![0, 1, 2, 3] };
        assert_eq!(n.key_count(), 3);
        assert!(n.memory_bytes() >= 3 * 8 + 4 * 4);
    }
}
