#![forbid(unsafe_code)]
//! # hermit-btree
//!
//! Index substrate for the Hermit reproduction: a memory-optimized B+-tree
//! and a hash-based primary index.
//!
//! The paper's *Baseline* is "the standard B+-tree-based secondary indexing
//! mechanism used in conventional RDBMSs" (§7.1), with in-memory nodes sized
//! at 256 bytes. [`BPlusTree`] is that structure: an arena-allocated B+-tree
//! with duplicate-key support, linked leaves for range scans, bulk loading,
//! and byte-level memory accounting (the paper's space experiments report
//! index sizes directly).
//!
//! The same tree serves three roles in the system:
//!
//! * **baseline secondary index** — key = target column value, value = tid;
//! * **host index** — key = host column value, value = tid (what Hermit
//!   probes after the TRS-Tree hop);
//! * **primary index** — key = primary key, value = row location (used to
//!   resolve logical tids; a hash variant, [`HashPrimaryIndex`], is also
//!   provided since point-only primary access is a hash map's sweet spot).

pub mod hash_index;
pub mod node;
pub mod tree;

pub use hash_index::HashPrimaryIndex;
pub use tree::{BPlusTree, RangeIter};
