//! The B+-tree proper: insert, delete, point/range lookup, bulk load.
//!
//! Duplicate keys are fully supported (secondary indexes routinely map one
//! key to many tuples). Equal keys route *right* on insert and scans start
//! at the *leftmost* occurrence, so all duplicates are reachable by walking
//! the leaf chain.
//!
//! Deletion is "lazy" in the style of many production main-memory engines:
//! entries are removed from their leaf but underfull leaves are not
//! rebalanced (structural shrinking happens only when a leaf empties
//! entirely, by unlinking it from scans implicitly — empty leaves are simply
//! skipped). This keeps the concurrency story simple and matches the way
//! the paper's experiments use the baseline (insert/lookup heavy).

use crate::node::{Node, NodeId, MAX_KEYS, NIL};

/// An arena-allocated B+-tree with duplicate-key support.
///
/// `K` is the key type (use `hermit_storage::F64Key` for float keys), `V`
/// the value type (typically `Tid` or `RowLoc`).
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    arena: Vec<Node<K, V>>,
    root: NodeId,
    len: usize,
    height: usize,
}

impl<K: Ord + Clone, V: Clone + PartialEq> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of inserting into a subtree: a split produces a separator key and
/// the id of the new right sibling.
struct Split<K> {
    sep: K,
    right: NodeId,
}

impl<K: Ord + Clone, V: Clone + PartialEq> BPlusTree<K, V> {
    /// Empty tree (a single empty leaf).
    pub fn new() -> Self {
        let arena = vec![Node::new_leaf()];
        BPlusTree { arena, root: 0, len: 0, height: 1 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height in levels (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total heap bytes held by the tree's nodes. This is the number the
    /// paper's memory figures report for the baseline index.
    pub fn memory_bytes(&self) -> usize {
        self.arena.iter().map(|n| n.memory_bytes()).sum::<usize>()
            + self.arena.capacity() * std::mem::size_of::<Node<K, V>>()
    }

    fn alloc(&mut self, node: Node<K, V>) -> NodeId {
        self.arena.push(node);
        (self.arena.len() - 1) as NodeId
    }

    /// Insert an entry. Duplicates (same key, even same value) are allowed.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(split) = self.insert_rec(self.root, key, value) {
            // Root split: grow a level.
            let new_root = self.alloc(Node::Internal {
                keys: vec![split.sep],
                children: vec![self.root, split.right],
            });
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, node_id: NodeId, key: K, value: V) -> Option<Split<K>> {
        match &self.arena[node_id as usize] {
            Node::Leaf { .. } => self.insert_into_leaf(node_id, key, value),
            Node::Internal { keys, .. } => {
                // Route right on equality so duplicate runs extend rightwards.
                let idx = keys.partition_point(|k| *k <= key);
                let child = match &self.arena[node_id as usize] {
                    Node::Internal { children, .. } => children[idx],
                    _ => unreachable!(),
                };
                let split = self.insert_rec(child, key, value)?;
                // Child split: install separator + new child here.
                let full = {
                    let Node::Internal { keys, children } = &mut self.arena[node_id as usize]
                    else {
                        unreachable!()
                    };
                    keys.insert(idx, split.sep);
                    children.insert(idx + 1, split.right);
                    keys.len() > MAX_KEYS
                };
                if full {
                    Some(self.split_internal(node_id))
                } else {
                    None
                }
            }
        }
    }

    fn insert_into_leaf(&mut self, leaf_id: NodeId, key: K, value: V) -> Option<Split<K>> {
        let full = {
            let Node::Leaf { keys, values, .. } = &mut self.arena[leaf_id as usize] else {
                unreachable!()
            };
            let idx = keys.partition_point(|k| *k <= key);
            keys.insert(idx, key);
            values.insert(idx, value);
            keys.len() > MAX_KEYS
        };
        if full {
            Some(self.split_leaf(leaf_id))
        } else {
            None
        }
    }

    fn split_leaf(&mut self, leaf_id: NodeId) -> Split<K> {
        let (right_keys, right_values, old_next) = {
            let Node::Leaf { keys, values, next } = &mut self.arena[leaf_id as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            (keys.split_off(mid), values.split_off(mid), *next)
        };
        let sep = right_keys[0].clone();
        let right =
            self.alloc(Node::Leaf { keys: right_keys, values: right_values, next: old_next });
        let Node::Leaf { next, .. } = &mut self.arena[leaf_id as usize] else { unreachable!() };
        *next = right;
        Split { sep, right }
    }

    fn split_internal(&mut self, node_id: NodeId) -> Split<K> {
        let (sep, right_keys, right_children) = {
            let Node::Internal { keys, children } = &mut self.arena[node_id as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid + 1);
            let sep = keys.pop().expect("mid key exists");
            let right_children = children.split_off(mid + 1);
            (sep, right_keys, right_children)
        };
        let right = self.alloc(Node::Internal { keys: right_keys, children: right_children });
        Split { sep, right }
    }

    /// Leaf that may contain the *leftmost* occurrence of `key`.
    fn find_leaf(&self, key: &K) -> NodeId {
        let mut node_id = self.root;
        loop {
            match &self.arena[node_id as usize] {
                Node::Leaf { .. } => return node_id,
                Node::Internal { keys, children } => {
                    // Route left on equality to reach the first duplicate.
                    let idx = keys.partition_point(|k| k < key);
                    node_id = children[idx];
                }
            }
        }
    }

    /// Visit every value stored under `key` without allocating.
    ///
    /// This is the point-probe hot path: where [`Self::get`] materializes a
    /// `Vec<V>` per call, `for_each_eq` walks the duplicate run in place
    /// (crossing leaf boundaries as needed) and hands each value to `f`.
    pub fn for_each_eq(&self, key: &K, mut f: impl FnMut(&V)) {
        let mut leaf_id = self.find_leaf(key);
        loop {
            let Node::Leaf { keys, values, next } = &self.arena[leaf_id as usize] else {
                unreachable!()
            };
            let start = keys.partition_point(|k| k < key);
            for i in start..keys.len() {
                if keys[i] != *key {
                    return;
                }
                f(&values[i]);
            }
            // The run may continue into the next leaf (long duplicate runs
            // span leaves; lazy deletion can also leave empty leaves).
            if *next == NIL {
                return;
            }
            leaf_id = *next;
        }
    }

    /// All values stored under `key`, in insertion-adjacent order.
    ///
    /// Allocates a fresh `Vec` per call; executors should prefer
    /// [`Self::for_each_eq`].
    pub fn get(&self, key: &K) -> Vec<V> {
        let mut out = Vec::new();
        self.for_each_eq(key, |v| out.push(v.clone()));
        out
    }

    /// True if at least one entry with `key` exists.
    pub fn contains_key(&self, key: &K) -> bool {
        let mut found = false;
        self.for_each_eq(key, |_| found = true);
        found
    }

    /// Visit every entry with `lb <= key <= ub` in key order.
    ///
    /// This closure-based scan is the hot path used by the executors; the
    /// iterator API ([`Self::range`]) wraps the same traversal.
    pub fn for_each_in_range(&self, lb: &K, ub: &K, mut f: impl FnMut(&K, &V)) {
        if lb > ub {
            return;
        }
        let mut leaf_id = self.find_leaf(lb);
        loop {
            let Node::Leaf { keys, values, next } = &self.arena[leaf_id as usize] else {
                unreachable!()
            };
            let start = keys.partition_point(|k| k < lb);
            for i in start..keys.len() {
                if keys[i] > *ub {
                    return;
                }
                f(&keys[i], &values[i]);
            }
            if *next == NIL {
                return;
            }
            leaf_id = *next;
        }
    }

    /// Count entries in `[lb, ub]` without materializing them.
    pub fn count_in_range(&self, lb: &K, ub: &K) -> usize {
        let mut n = 0;
        self.for_each_in_range(lb, ub, |_, _| n += 1);
        n
    }

    /// Iterator over entries in `[lb, ub]`.
    pub fn range(&self, lb: K, ub: K) -> RangeIter<'_, K, V> {
        let leaf = if lb <= ub { self.find_leaf(&lb) } else { NIL };
        let idx = if leaf != NIL {
            let Node::Leaf { keys, .. } = &self.arena[leaf as usize] else { unreachable!() };
            keys.partition_point(|k| *k < lb)
        } else {
            0
        };
        RangeIter { tree: self, leaf, idx, ub }
    }

    /// Remove one entry matching `(key, value)`. Returns true if removed.
    ///
    /// Lazy deletion: the leaf is not rebalanced.
    pub fn remove(&mut self, key: &K, value: &V) -> bool {
        let mut leaf_id = self.find_leaf(key);
        loop {
            let Node::Leaf { keys, values, next } = &mut self.arena[leaf_id as usize] else {
                unreachable!()
            };
            let start = keys.partition_point(|k| k < key);
            let mut i = start;
            while i < keys.len() && keys[i] == *key {
                if values[i] == *value {
                    keys.remove(i);
                    values.remove(i);
                    self.len -= 1;
                    return true;
                }
                i += 1;
            }
            // Duplicates may spill into the next leaf.
            if i == keys.len() && *next != NIL {
                let next_id = *next;
                let Node::Leaf { keys: nk, .. } = &self.arena[next_id as usize] else {
                    unreachable!()
                };
                if nk.first().is_some_and(|k| k == key) || nk.is_empty() {
                    leaf_id = next_id;
                    continue;
                }
            }
            return false;
        }
    }

    /// Remove *all* entries under `key`; returns how many were removed.
    pub fn remove_all(&mut self, key: &K) -> usize {
        let mut removed = 0;
        let mut leaf_id = self.find_leaf(key);
        loop {
            let Node::Leaf { keys, values, next } = &mut self.arena[leaf_id as usize] else {
                unreachable!()
            };
            let start = keys.partition_point(|k| k < key);
            let end = keys.partition_point(|k| k <= key);
            if start < end {
                keys.drain(start..end);
                values.drain(start..end);
                removed += end - start;
            }
            // Continue while the next leaf still starts with `key` (or is
            // empty and must be skipped).
            if *next == NIL {
                break;
            }
            let next_id = *next;
            let Node::Leaf { keys: nk, .. } = &self.arena[next_id as usize] else { unreachable!() };
            if nk.first().is_some_and(|k| k <= key) {
                leaf_id = next_id;
            } else {
                break;
            }
        }
        self.len -= removed;
        removed
    }

    /// Build a tree from entries sorted by key. Leaves are packed to
    /// `MAX_KEYS`, giving the dense layout a freshly-built index would have.
    ///
    /// Panics in debug builds if the input is unsorted.
    pub fn bulk_load(entries: Vec<(K, V)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load requires key-sorted input"
        );
        if entries.is_empty() {
            return Self::new();
        }
        let len = entries.len();
        let mut tree = BPlusTree { arena: Vec::new(), root: 0, len, height: 1 };

        // Level 0: packed leaves.
        let mut level: Vec<(K, NodeId)> = Vec::new(); // (first key, node)
        let mut iter = entries.into_iter().peekable();
        let mut prev_leaf: Option<NodeId> = None;
        while iter.peek().is_some() {
            let chunk: Vec<(K, V)> = iter.by_ref().take(MAX_KEYS).collect();
            let first_key = chunk[0].0.clone();
            let (keys, values): (Vec<K>, Vec<V>) = chunk.into_iter().unzip();
            let id = tree.alloc(Node::Leaf { keys, values, next: NIL });
            if let Some(prev) = prev_leaf {
                let Node::Leaf { next, .. } = &mut tree.arena[prev as usize] else {
                    unreachable!()
                };
                *next = id;
            }
            prev_leaf = Some(id);
            level.push((first_key, id));
        }

        // Upper levels: group children MAX_KEYS+1 at a time.
        while level.len() > 1 {
            let mut next_level: Vec<(K, NodeId)> = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let group_end = (i + MAX_KEYS + 1).min(level.len());
                let group = &level[i..group_end];
                let first_key = group[0].0.clone();
                let children: Vec<NodeId> = group.iter().map(|(_, id)| *id).collect();
                let keys: Vec<K> = group[1..].iter().map(|(k, _)| k.clone()).collect();
                let id = tree.alloc(Node::Internal { keys, children });
                next_level.push((first_key, id));
                i = group_end;
            }
            level = next_level;
            tree.height += 1;
        }
        tree.root = level[0].1;
        tree
    }

    /// Check structural invariants (tests / debugging): sorted leaves,
    /// consistent separator routing, linked leaf chain covering all entries.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Walk the leaf chain from the leftmost leaf.
        let mut node_id = self.root;
        loop {
            match &self.arena[node_id as usize] {
                Node::Leaf { .. } => break,
                Node::Internal { children, keys } => {
                    if children.len() != keys.len() + 1 {
                        return Err(format!(
                            "internal node {node_id}: {} children for {} keys",
                            children.len(),
                            keys.len()
                        ));
                    }
                    node_id = children[0];
                }
            }
        }
        let mut count = 0;
        let mut prev: Option<K> = None;
        let mut leaf_id = node_id;
        loop {
            let Node::Leaf { keys, values, next } = &self.arena[leaf_id as usize] else {
                return Err("leaf chain hit an internal node".into());
            };
            if keys.len() != values.len() {
                return Err(format!("leaf {leaf_id}: key/value arity mismatch"));
            }
            for k in keys {
                if let Some(p) = &prev {
                    if p > k {
                        return Err(format!("leaf {leaf_id}: keys out of order"));
                    }
                }
                prev = Some(k.clone());
                count += 1;
            }
            if *next == NIL {
                break;
            }
            leaf_id = *next;
        }
        if count != self.len {
            return Err(format!("leaf chain has {count} entries but len() = {}", self.len));
        }
        Ok(())
    }
}

/// Iterator over `[lb, ub]` produced by [`BPlusTree::range`].
pub struct RangeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: NodeId,
    idx: usize,
    ub: K,
}

impl<'a, K: Ord + Clone, V: Clone + PartialEq> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            let Node::Leaf { keys, values, next } = &self.tree.arena[self.leaf as usize] else {
                unreachable!()
            };
            if self.idx < keys.len() {
                let k = &keys[self.idx];
                if *k > self.ub {
                    self.leaf = NIL;
                    return None;
                }
                let v = &values[self.idx];
                self.idx += 1;
                return Some((k, v));
            }
            self.leaf = *next;
            self.idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(n: u64) -> BPlusTree<u64, u64> {
        let mut t = BPlusTree::new();
        for i in 0..n {
            t.insert(i, i * 10);
        }
        t
    }

    #[test]
    fn insert_and_point_get() {
        let t = tree_with(1000);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(&0), vec![0]);
        assert_eq!(t.get(&999), vec![9990]);
        assert_eq!(t.get(&500), vec![5000]);
        assert!(t.get(&1000).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn reverse_insert_order() {
        let mut t = BPlusTree::new();
        for i in (0..1000u64).rev() {
            t.insert(i, i);
        }
        t.check_invariants().unwrap();
        let all: Vec<u64> = t.range(0, 999).map(|(k, _)| *k).collect();
        assert_eq!(all.len(), 1000);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn for_each_eq_matches_get_across_leaf_spans() {
        let mut t = BPlusTree::new();
        for i in 0..200u64 {
            t.insert(i, i);
        }
        for v in 0..300u64 {
            t.insert(77, 10_000 + v); // duplicate run spanning several leaves
        }
        let mut visited = Vec::new();
        t.for_each_eq(&77, |&v| visited.push(v));
        // Independent oracle: the range scan (get() delegates to
        // for_each_eq, so comparing against it would be circular).
        let mut oracle = Vec::new();
        t.for_each_in_range(&77, &77, |_, &v| oracle.push(v));
        assert_eq!(visited, oracle);
        assert_eq!(visited.len(), 301);
        // Absent keys visit nothing, including past-the-end ones.
        let mut n = 0;
        t.for_each_eq(&999, |_| n += 1);
        t.for_each_eq(&1_000_000, |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn duplicates_all_retrievable() {
        let mut t = BPlusTree::new();
        for v in 0..100u64 {
            t.insert(42, v);
        }
        t.insert(41, 0);
        t.insert(43, 0);
        let vals = t.get(&42);
        assert_eq!(vals.len(), 100);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_scan_exact_bounds() {
        let t = tree_with(1000);
        let hits: Vec<u64> = t.range(100, 199).map(|(k, _)| *k).collect();
        assert_eq!(hits.len(), 100);
        assert_eq!(hits[0], 100);
        assert_eq!(hits[99], 199);
        // Empty and inverted ranges.
        assert_eq!(t.range(2000, 3000).count(), 0);
        assert_eq!(t.range(10, 5).count(), 0);
        assert_eq!(t.count_in_range(&100, &199), 100);
    }

    #[test]
    fn remove_single_entries() {
        let mut t = tree_with(500);
        assert!(t.remove(&250, &2500));
        assert!(!t.remove(&250, &2500), "double remove must fail");
        assert_eq!(t.len(), 499);
        assert!(t.get(&250).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_among_duplicates() {
        let mut t = BPlusTree::new();
        for v in 0..50u64 {
            t.insert(7, v);
        }
        assert!(t.remove(&7, &25));
        let vals = t.get(&7);
        assert_eq!(vals.len(), 49);
        assert!(!vals.contains(&25));
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_all_duplicates_spanning_leaves() {
        let mut t = BPlusTree::new();
        for i in 0..100u64 {
            t.insert(i, 0);
        }
        for v in 0..200u64 {
            t.insert(50, 1000 + v); // long duplicate run spans several leaves
        }
        let removed = t.remove_all(&50);
        assert_eq!(removed, 201);
        assert!(t.get(&50).is_empty());
        assert_eq!(t.len(), 99);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let entries: Vec<(u64, u64)> = (0..10_000).map(|i| (i, i * 3)).collect();
        let bulk = BPlusTree::bulk_load(entries.clone());
        bulk.check_invariants().unwrap();
        assert_eq!(bulk.len(), 10_000);
        assert_eq!(bulk.get(&9_999), vec![29_997]);
        let scan: Vec<u64> = bulk.range(5000, 5009).map(|(k, _)| *k).collect();
        assert_eq!(scan, (5000..5010).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_then_insert() {
        let entries: Vec<(u64, u64)> = (0..1000).map(|i| (i * 2, i)).collect();
        let mut t = BPlusTree::bulk_load(entries);
        for i in 0..1000u64 {
            t.insert(i * 2 + 1, i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 2000);
        assert_eq!(t.count_in_range(&0, &3999), 2000);
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let t: BPlusTree<u64, u64> = BPlusTree::bulk_load(vec![]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_load(vec![(1u64, 2u64)]);
        assert_eq!(t.get(&1), vec![2]);
    }

    #[test]
    fn memory_grows_with_entries() {
        let small = tree_with(100).memory_bytes();
        let large = tree_with(10_000).memory_bytes();
        assert!(large > small * 10, "memory should scale: {small} vs {large}");
    }

    #[test]
    fn height_grows_logarithmically() {
        assert_eq!(tree_with(10).height(), 1);
        let t = tree_with(100_000);
        assert!(t.height() >= 3 && t.height() <= 5, "height = {}", t.height());
    }

    #[test]
    fn float_keys_via_f64key() {
        use hermit_storage::F64Key;
        let mut t: BPlusTree<F64Key, u64> = BPlusTree::new();
        for i in 0..100 {
            t.insert(F64Key(i as f64 * 0.5), i);
        }
        let hits: Vec<u64> = t.range(F64Key(10.0), F64Key(12.0)).map(|(_, v)| *v).collect();
        assert_eq!(hits, vec![20, 21, 22, 23, 24]);
    }

    #[test]
    fn interleaved_insert_remove_stress() {
        let mut t = BPlusTree::new();
        // Deterministic pseudo-random workload.
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut live: Vec<(u64, u64)> = Vec::new();
        for step in 0..20_000 {
            if live.is_empty() || rng() % 3 != 0 {
                let k = rng() % 500;
                let v = step as u64;
                t.insert(k, v);
                live.push((k, v));
            } else {
                let idx = (rng() as usize) % live.len();
                let (k, v) = live.swap_remove(idx);
                assert!(t.remove(&k, &v), "entry ({k},{v}) should exist");
            }
        }
        assert_eq!(t.len(), live.len());
        t.check_invariants().unwrap();
        // Every remaining entry is still findable.
        for &(k, v) in live.iter().take(200) {
            assert!(t.get(&k).contains(&v));
        }
    }
}
