//! Fault plans: *what* to inject and *when*, replayable from a seed.
//!
//! A [`FaultPlan`] answers one question for every I/O operation a
//! [`FaultyPageStore`](crate::FaultyPageStore) forwards: should this, the
//! `nth` operation of its kind, fail — and how? Two modes:
//!
//! * **Explicit** — a list of [`PlannedFault`]s naming exact (operation,
//!   ordinal) sites. Deterministic by construction; used for pinpoint
//!   regression tests ("EIO on the 3rd page write").
//! * **Seeded** — per-operation fault probabilities drawn from an
//!   [`StdRng`] seeded with a single `u64`. Any failing schedule is
//!   replayable by reporting the seed alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The operation class a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A page read.
    Read,
    /// A page write.
    Write,
    /// A store-level fsync.
    Sync,
}

/// How an operation fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The operation returns an I/O error (EIO).
    Eio,
    /// The operation reports success but performs nothing — a dropped
    /// write or a lying fsync.
    Drop,
    /// A torn write: only the first `keep` bytes of the page reach the
    /// device, the rest keeps its previous content. Reads and syncs treat
    /// this as [`Eio`](FaultKind::Eio).
    Torn {
        /// Bytes of the new page image that survive.
        keep: usize,
    },
}

/// One explicitly planned fault: the `nth` (0-based) operation of class
/// `op` fails as `kind`. Each planned fault fires at most once.
#[derive(Debug, Clone)]
pub struct PlannedFault {
    /// Operation class this fault arms.
    pub op: FaultOp,
    /// 0-based ordinal of the operation within its class.
    pub nth: u64,
    /// Failure mode.
    pub kind: FaultKind,
}

/// Per-operation fault probabilities for seeded plans.
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// Probability of an EIO per operation.
    pub eio: f64,
    /// Probability of a silent drop per write/sync.
    pub drop: f64,
    /// Probability of a torn write per write.
    pub torn: f64,
}

impl FaultRates {
    /// No faults at all (useful as a base for struct update syntax).
    pub const NONE: FaultRates = FaultRates { eio: 0.0, drop: 0.0, torn: 0.0 };
}

enum Mode {
    None,
    Explicit(Vec<PlannedFault>),
    Seeded { rng: StdRng, rates: FaultRates },
}

/// Decides, deterministically, whether each forwarded operation fails.
pub struct FaultPlan {
    mode: Mode,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        FaultPlan { mode: Mode::None }
    }

    /// An explicit site list (see [`PlannedFault`]).
    pub fn explicit(faults: Vec<PlannedFault>) -> Self {
        FaultPlan { mode: Mode::Explicit(faults) }
    }

    /// A seeded random plan: every run with the same `seed` and `rates`
    /// injects the identical fault schedule.
    pub fn seeded(seed: u64, rates: FaultRates) -> Self {
        FaultPlan { mode: Mode::Seeded { rng: StdRng::seed_from_u64(seed), rates } }
    }

    /// Should the `nth` operation of class `op` fail? Consumes the fault
    /// (explicit mode) or one RNG draw (seeded mode).
    pub fn decide(&mut self, op: FaultOp, nth: u64) -> Option<FaultKind> {
        match &mut self.mode {
            Mode::None => None,
            Mode::Explicit(faults) => {
                let hit = faults.iter().position(|f| f.op == op && f.nth == nth)?;
                Some(faults.swap_remove(hit).kind)
            }
            Mode::Seeded { rng, rates } => {
                // One draw per operation keeps the schedule a pure function
                // of (seed, operation sequence).
                let r: f64 = rng.gen_range(0.0..1.0);
                if r < rates.eio {
                    Some(FaultKind::Eio)
                } else if r < rates.eio + rates.drop && op != FaultOp::Read {
                    Some(FaultKind::Drop)
                } else if r < rates.eio + rates.drop + rates.torn && op == FaultOp::Write {
                    Some(FaultKind::Torn {
                        keep: rng.gen_range(1..hermit_storage::paged::PAGE_SIZE),
                    })
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_fires_once_at_the_named_site() {
        let mut plan = FaultPlan::explicit(vec![PlannedFault {
            op: FaultOp::Write,
            nth: 2,
            kind: FaultKind::Eio,
        }]);
        assert_eq!(plan.decide(FaultOp::Write, 0), None);
        assert_eq!(plan.decide(FaultOp::Read, 2), None, "wrong op class must not fire");
        assert_eq!(plan.decide(FaultOp::Write, 2), Some(FaultKind::Eio));
        assert_eq!(plan.decide(FaultOp::Write, 2), None, "a planned fault fires at most once");
    }

    #[test]
    fn seeded_is_replayable() {
        let rates = FaultRates { eio: 0.2, drop: 0.2, torn: 0.2 };
        let schedule = |seed| {
            let mut plan = FaultPlan::seeded(seed, rates);
            (0..100).map(|n| plan.decide(FaultOp::Write, n)).collect::<Vec<_>>()
        };
        assert_eq!(schedule(42), schedule(42), "same seed, same schedule");
        assert_ne!(schedule(42), schedule(43), "different seeds must diverge");
        assert!(schedule(42).iter().any(|d| d.is_some()), "rates this high must inject");
    }

    #[test]
    fn none_never_fires() {
        let mut plan = FaultPlan::none();
        assert!((0..1000).all(|n| plan.decide(FaultOp::Sync, n).is_none()));
    }
}
