#![forbid(unsafe_code)]
//! # hermit_fault
//!
//! Deterministic fault injection and crash-schedule exploration for the
//! Hermit durability and serving stack.
//!
//! The durability contract (checkpoint + WAL, `hermit_core::recovery`)
//! and the TCP front end both promise graceful behavior under failure:
//! recover to an oracle-equal state, or fail with a typed error — never
//! corrupt, never panic, never hang. This crate supplies the machinery to
//! *enumerate* failures instead of hand-picking them:
//!
//! * [`FaultyPageStore`] — wraps any [`PageStore`](hermit_storage::paged::PageStore)
//!   with injectable EIO, dropped, and torn writes, failing/lying fsync,
//!   poisoned reads, and page-granular drops, driven by a [`FaultPlan`]
//!   (explicit site list or seeded schedule — replayable from one `u64`).
//! * [`mangle`] — seed-deterministic byte-level corruption of on-disk
//!   artifacts (the WAL proptests).
//! * [`explorer`] — the crash-schedule explorer: crash the canonical
//!   workload at every durability I/O site (via the
//!   [`fault_point`](hermit_storage::fault_point) hooks in
//!   `hermit_storage`), recover each snapshot, and compare query-for-query
//!   against a statement-prefix oracle.

pub mod explorer;
pub mod mangle;
pub mod plan;
pub mod store;

pub use explorer::{explore, ExplorerReport, SiteFailure};
pub use mangle::{mangle_bytes, mangle_file};
pub use plan::{FaultKind, FaultOp, FaultPlan, FaultRates, PlannedFault};
pub use store::FaultyPageStore;

/// The crash-schedule matrix: every [`fault_point`](hermit_storage::fault_point)
/// site name that exists in `hermit_storage`, sorted. This is the contract
/// between the storage layer and the crash explorer — a durability I/O site
/// may only exist if it is named here, so it can never silently escape
/// crash testing.
///
/// Reconciled from both sides:
/// * **statically** — `hermit-lint`'s `fault-matrix` rule extracts every
///   `fault_point("…")` literal from `crates/storage` and fails CI on any
///   difference with this list;
/// * **dynamically** — `crash_matrix_reconciles_with_the_explorer` (this
///   crate's tests) runs the canonical workload and checks every site the
///   schedule passes through is declared here.
///
/// `wal.reopen` fires on the recovery path (torn-tail truncation), which
/// the canonical create-from-scratch workload never takes; it is exercised
/// by the durability suite's reopen cases instead.
pub const CRASH_MATRIX_SITES: &[&str] = &[
    "atomic.rename",
    "atomic.write",
    "page.read",
    "page.sync",
    "page.write",
    "wal.append",
    "wal.commit",
    "wal.header",
    "wal.reopen",
    "wal.reset",
    "wal.txn_abort",
    "wal.txn_commit",
];
