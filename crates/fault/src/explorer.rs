//! Crash-schedule explorer: crash at *every* durability I/O site, recover,
//! and compare query-for-query against a clean oracle.
//!
//! The durability suite's hand-picked crash cases ("kill mid-WAL-append")
//! check a handful of schedules; this module enumerates them. Every
//! durability-relevant I/O in `hermit_storage` (page write, page fsync,
//! WAL append/commit/reset, atomic catalog/snapshot writes) passes a
//! [`fault_point`](hermit_storage::fault_point) hook; the explorer
//!
//! 1. runs a **canonical workload** (inserts, deletes, index builds,
//!    checkpoints, committed and aborted multi-statement transactions)
//!    once with a counting hook to learn the site schedule;
//! 2. re-runs it once per chosen site *i*, snapshotting the durability
//!    directory the instant site *i* is reached — the `kill -9` image:
//!    everything `write(2)` produced is on "disk", everything buffered in
//!    user space is lost;
//! 3. recovers each snapshot via [`Database::open`] and checks the result
//!    against a **statement-prefix oracle**.
//!
//! The workload runs with `wal_sync_every = 1`, so every DML statement is
//! WAL-durable the moment it returns. A crash during statement *j* must
//! therefore recover to exactly `states[j]` (statement in flight lost) or
//! `states[j + 1]` (statement's WAL record reached the device) — nothing
//! else is legal. The matched state is then re-checked query-for-query: a
//! scratch in-memory database holding those rows (no secondary indexes —
//! it answers by scan) must agree with the recovered database (which
//! exercises its real Hermit/baseline plans) on every query shape.
//!
//! Snapshots happen *before* the instrumented I/O executes, so page and
//! WAL writes are atomic in this model; sub-write tearing is covered
//! separately by [`FaultyPageStore`](crate::FaultyPageStore) torn-write
//! plans and the WAL mangler proptests.

use hermit_core::recovery::{DurabilityConfig, CATALOG_FILE};
use hermit_core::{Database, Query, RangePredicate};
use hermit_storage::{ColumnDef, FaultAction, Schema, TidScheme, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// One site whose recovery failed the oracle check.
#[derive(Debug)]
pub struct SiteFailure {
    /// Global site index in the canonical schedule.
    pub site: usize,
    /// Site name (`wal.append`, `page.write`, …).
    pub name: String,
    /// Human-readable mismatch description.
    pub detail: String,
}

/// Result of a [`explore`] run.
#[derive(Debug)]
pub struct ExplorerReport {
    /// Total crash sites the canonical workload passes through.
    pub total_sites: usize,
    /// Per-site-name occurrence counts across the schedule.
    pub site_names: BTreeMap<String, usize>,
    /// Site indices actually explored (all of them, or a strided sample
    /// when a budget is set).
    pub explored: Vec<usize>,
    /// Sites whose recovery diverged from the oracle. Empty = pass.
    pub failures: Vec<SiteFailure>,
}

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")])
}

/// One DML operation inside a [`Stmt::Txn`] statement.
#[derive(Debug, Clone)]
enum TxnOp {
    /// `insert_txn` of `[pk, host, target]`.
    Insert(i64, f64, f64),
    /// `delete_by_pk_txn`.
    Delete(i64),
}

/// One statement of the canonical workload.
#[derive(Debug, Clone)]
enum Stmt {
    /// `Database::create_durable` (statement 0; no logical rows).
    Create,
    /// Insert `[pk, host, target]`.
    Insert(i64, f64, f64),
    /// Delete by primary key.
    Delete(i64),
    /// Build the baseline index on `host`.
    Baseline,
    /// Build the Hermit index `target → host`.
    Hermit,
    /// Explicit WAL commit.
    Commit,
    /// Full checkpoint.
    Checkpoint,
    /// A whole multi-statement transaction — begin, the ops, then commit
    /// (`commit: true`) or rollback (`commit: false`). Modeled as ONE
    /// workload statement because that is exactly the atomicity contract:
    /// a crash anywhere inside it must recover either the full pre-state
    /// (loser rolled back) or, once the `wal.txn_commit` record is down,
    /// the full post-state — never a partial transaction.
    Txn {
        /// The transaction's DML, in order.
        ops: Vec<TxnOp>,
        /// Commit (true) or roll back (false) at the end.
        commit: bool,
    },
}

/// The canonical DML + DDL + checkpoint workload: two checkpoint cycles,
/// inserts (some off-model outliers), deletes, and index builds — every
/// durability code path, ~90 statements, a few hundred I/O sites.
fn statements() -> Vec<Stmt> {
    let mut s = vec![Stmt::Create];
    for i in 0..40i64 {
        let m = (10 + i) as f64;
        s.push(Stmt::Insert(i, 2.0 * m, m));
    }
    s.push(Stmt::Baseline);
    s.push(Stmt::Hermit);
    s.push(Stmt::Checkpoint);
    for i in 0..20i64 {
        let m = (60 + i) as f64;
        s.push(Stmt::Insert(100 + i, 2.0 * m, m));
    }
    for i in 0..3i64 {
        // Off-model host: lands in the TRS outlier buffers.
        s.push(Stmt::Insert(200 + i, 9.0e8, 150.0 + i as f64));
    }
    for pk in (0..40i64).step_by(5) {
        s.push(Stmt::Delete(pk));
    }
    s.push(Stmt::Checkpoint);
    for i in 0..12i64 {
        let m = (90 + i) as f64;
        s.push(Stmt::Insert(300 + i, 2.0 * m, m));
    }
    for pk in 100..104i64 {
        s.push(Stmt::Delete(pk));
    }
    // Committed transaction: inserts and deferred deletes land atomically
    // (crash inside it must yield all-or-nothing).
    s.push(Stmt::Txn {
        ops: vec![
            TxnOp::Insert(400, 240.0, 120.0),
            TxnOp::Insert(401, 242.0, 121.0),
            TxnOp::Delete(301),
            TxnOp::Delete(1),
        ],
        commit: true,
    });
    // Aborted transaction (with an off-model outlier insert and a
    // delete-of-own-insert): must leave no trace at any crash site.
    s.push(Stmt::Txn {
        ops: vec![
            TxnOp::Insert(500, 9.0e8, 170.0),
            TxnOp::Delete(302),
            TxnOp::Insert(501, 250.0, 125.0),
            TxnOp::Delete(501),
            TxnOp::Delete(2),
        ],
        commit: false,
    });
    // A second committed transaction right at the tail, so `wal.txn_commit`
    // is also exercised as the final durable record before the drop-flush.
    s.push(Stmt::Txn { ops: vec![TxnOp::Insert(402, 244.0, 122.0)], commit: true });
    s.push(Stmt::Commit);
    s
}

type RowMap = BTreeMap<i64, Vec<Value>>;

fn apply_logical(state: &mut RowMap, stmt: &Stmt) {
    match stmt {
        Stmt::Insert(pk, host, target) => {
            state.insert(*pk, vec![Value::Int(*pk), Value::Float(*host), Value::Float(*target)]);
        }
        Stmt::Delete(pk) => {
            state.remove(pk);
        }
        // A committed transaction applies all of its ops; an aborted one
        // applies nothing — atomicity is the oracle.
        Stmt::Txn { ops, commit: true } => {
            for op in ops {
                match op {
                    TxnOp::Insert(pk, host, target) => {
                        state.insert(
                            *pk,
                            vec![Value::Int(*pk), Value::Float(*host), Value::Float(*target)],
                        );
                    }
                    TxnOp::Delete(pk) => {
                        state.remove(pk);
                    }
                }
            }
        }
        _ => {}
    }
}

/// Query shapes the oracle enumerates: Hermit route + point (incl. an
/// outlier), baseline range, seq scan, multi-conjunct, wide fallback.
/// Deliberately no `limit`: limited results are order-dependent and two
/// correct databases may legally pick different subsets.
fn queries() -> Vec<Query> {
    vec![
        Query::filter(RangePredicate::range(2, 12.0, 35.0)),
        Query::filter(RangePredicate::point(2, 150.0)),
        Query::filter(RangePredicate::range(1, 40.0, 160.0)),
        Query::filter(RangePredicate::range(0, 5.0, 305.0)),
        Query::new().range(2, 0.0, 95.0).range(1, 30.0, 190.0),
        Query::filter(RangePredicate::range(2, 0.0, 1.0e9)),
    ]
}

fn rows_of(db: &Database, q: &Query) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> =
        db.execute(q).rows.iter().map(|&loc| db.heap().get(loc).unwrap()).collect();
    rows.sort_by_key(|r| r[0].as_i64());
    rows
}

/// Snapshot the durable state of a database directory — what `kill -9`
/// leaves behind.
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap().flatten() {
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

struct HookState {
    count: usize,
    names: Vec<&'static str>,
    record_names: bool,
    crash_at: Option<usize>,
    source: PathBuf,
    snapshot_to: Option<PathBuf>,
    snapped: bool,
}

/// Run the canonical workload in `dir` with the hook installed. Returns
/// `(stmt_starts, drop_start, total)`: the site index each statement began
/// at, the index where the end-of-run drop-flush began, and the grand
/// total. Crash passes stop executing statements once the snapshot is
/// taken (the schedule prefix up to the crash site is identical by
/// construction, and nothing after it matters).
fn run_workload(
    dir: &Path,
    config: &DurabilityConfig,
    state: &Rc<RefCell<HookState>>,
) -> (Vec<usize>, usize, usize) {
    let hook_state = Rc::clone(state);
    let _guard = hermit_storage::install_fault_hook(move |name| {
        let mut s = hook_state.borrow_mut();
        let i = s.count;
        s.count += 1;
        if s.record_names {
            s.names.push(name);
        }
        if s.crash_at == Some(i) {
            let to = s.snapshot_to.clone().expect("crash passes set a snapshot path");
            copy_dir(&s.source, &to);
            s.snapped = true;
        }
        FaultAction::Continue
    });

    let stmts = statements();
    let mut starts = Vec::with_capacity(stmts.len());
    starts.push(state.borrow().count);
    let mut db = Database::create_durable(schema(), 0, dir, config).expect("create_durable");
    for stmt in &stmts[1..] {
        if state.borrow().snapped {
            // Pad the remaining boundaries so the vector stays aligned
            // (only the counting pass consumes them, and it never snaps).
            while starts.len() < stmts.len() {
                starts.push(state.borrow().count);
            }
            break;
        }
        starts.push(state.borrow().count);
        match stmt {
            Stmt::Create => unreachable!("Create is statement 0"),
            Stmt::Insert(pk, host, target) => {
                db.insert(&[Value::Int(*pk), Value::Float(*host), Value::Float(*target)])
                    .expect("insert");
            }
            Stmt::Delete(pk) => {
                db.delete_by_pk(*pk).expect("delete");
            }
            Stmt::Baseline => {
                db.create_baseline_index(1, true).expect("baseline index");
            }
            Stmt::Hermit => {
                db.create_hermit_index(2, 1).expect("hermit index");
            }
            Stmt::Commit => {
                db.wal_commit().expect("wal commit");
            }
            Stmt::Checkpoint => {
                db.checkpoint(dir).expect("checkpoint");
            }
            Stmt::Txn { ops, commit } => {
                let t = db.begin().expect("begin");
                for op in ops {
                    match op {
                        TxnOp::Insert(pk, host, target) => {
                            db.insert_txn(
                                t,
                                &[Value::Int(*pk), Value::Float(*host), Value::Float(*target)],
                            )
                            .expect("txn insert");
                        }
                        TxnOp::Delete(pk) => {
                            db.delete_by_pk_txn(t, *pk).expect("txn delete");
                        }
                    }
                }
                if *commit {
                    db.commit_txn(t).expect("txn commit");
                } else {
                    db.rollback_txn(t).expect("txn rollback");
                }
            }
        }
    }
    while starts.len() < stmts.len() {
        starts.push(state.borrow().count);
    }
    let drop_start = state.borrow().count;
    drop(db); // drop-flush I/O is part of the schedule
    let total = state.borrow().count;
    (starts, drop_start, total)
}

/// Recover `snapshot` and verify it against the statement-prefix window
/// `states[lo] ..= states[hi]`.
fn verify_snapshot(
    snapshot: &Path,
    config: &DurabilityConfig,
    states: &[RowMap],
    lo: usize,
    hi: usize,
) -> Result<(), String> {
    let recovered = match Database::open(snapshot, config) {
        Ok(db) => db,
        Err(e) => {
            if snapshot.join(CATALOG_FILE).exists() {
                return Err(format!("open failed with a catalog present: {e}"));
            }
            // Crash before the very first catalog landed: there is no
            // database to recover, and a typed failure is the contract.
            return Ok(());
        }
    };

    // Which legal statement prefix did recovery land on?
    let mut got: RowMap = BTreeMap::new();
    for row in rows_of(&recovered, &Query::filter(RangePredicate::range(0, -1.0e15, 1.0e15))) {
        let pk = row[0].as_i64().ok_or("recovered row with non-int pk")?;
        if got.insert(pk, row).is_some() {
            return Err(format!("recovered two live rows for pk {pk}"));
        }
    }
    if recovered.len() != got.len() {
        return Err(format!(
            "len() = {} but the full scan returned {} rows",
            recovered.len(),
            got.len()
        ));
    }
    let Some(k) = (lo..=hi).find(|&k| states[k] == got) else {
        return Err(format!(
            "recovered {} rows matching no statement prefix in [{lo}, {hi}] \
             (prefix sizes {:?})",
            got.len(),
            (lo..=hi).map(|k| states[k].len()).collect::<Vec<_>>(),
        ));
    };

    // Query-for-query oracle: a clean in-memory database holding the same
    // rows (scan-only — no secondary indexes) must agree with the
    // recovered database's real plans on every shape.
    let oracle = Database::new(schema(), 0, TidScheme::Physical);
    for row in states[k].values() {
        oracle.insert(row).map_err(|e| format!("oracle insert: {e}"))?;
    }
    for q in queries() {
        let want = rows_of(&oracle, &q);
        let got = rows_of(&recovered, &q);
        if want != got {
            return Err(format!(
                "query {q:?} diverged at prefix {k}: oracle {} rows, recovered {} rows",
                want.len(),
                got.len()
            ));
        }
    }
    Ok(())
}

/// Run the crash-schedule explorer under `root` (created fresh, removed on
/// success). `budget` bounds how many sites are explored: `None` explores
/// every site, `Some(n)` explores an evenly-strided sample of `n`.
pub fn explore(root: &Path, budget: Option<usize>) -> ExplorerReport {
    let _ = std::fs::remove_dir_all(root);
    std::fs::create_dir_all(root).expect("create explorer root");
    let config = DurabilityConfig { wal_sync_every: 1, ..Default::default() };

    // Pass 1: count the sites and learn each statement's site window.
    let work = root.join("count");
    let state = Rc::new(RefCell::new(HookState {
        count: 0,
        names: Vec::new(),
        record_names: true,
        crash_at: None,
        source: work.clone(),
        snapshot_to: None,
        snapped: false,
    }));
    let (starts, drop_start, total) = run_workload(&work, &config, &state);
    let names = std::mem::take(&mut state.borrow_mut().names);
    let mut site_names: BTreeMap<String, usize> = BTreeMap::new();
    for n in &names {
        *site_names.entry((*n).to_string()).or_insert(0) += 1;
    }

    // Logical statement-prefix states.
    let stmts = statements();
    let mut states: Vec<RowMap> = vec![BTreeMap::new()];
    for stmt in &stmts {
        let mut next = states.last().unwrap().clone();
        apply_logical(&mut next, stmt);
        states.push(next);
    }
    let last = stmts.len();
    // A crash at site i during statement j (or the final drop-flush) may
    // recover the pre- or post-statement prefix, nothing else.
    let window = |site: usize| -> (usize, usize) {
        if site >= drop_start {
            (last, last)
        } else {
            let j = starts.partition_point(|&s| s <= site) - 1;
            (j, j + 1)
        }
    };

    let explored: Vec<usize> = match budget {
        Some(n) if n < total => {
            let mut picked: Vec<usize> = (0..n).map(|j| j * total / n).collect();
            picked.dedup();
            picked
        }
        _ => (0..total).collect(),
    };

    // Pass 2: crash at each chosen site, recover, verify.
    let mut failures = Vec::new();
    for &site in &explored {
        let run_dir = root.join(format!("run-{site}"));
        let snap_dir = root.join(format!("snap-{site}"));
        let state = Rc::new(RefCell::new(HookState {
            count: 0,
            names: Vec::new(),
            record_names: false,
            crash_at: Some(site),
            source: run_dir.clone(),
            snapshot_to: Some(snap_dir.clone()),
            snapped: false,
        }));
        run_workload(&run_dir, &config, &state);
        let name = names.get(site).copied().unwrap_or("?").to_string();
        if !state.borrow().snapped {
            failures.push(SiteFailure {
                site,
                name,
                detail: "schedule diverged: crash site never reached".to_string(),
            });
        } else {
            let (lo, hi) = window(site);
            if let Err(detail) = verify_snapshot(&snap_dir, &config, &states, lo, hi) {
                failures.push(SiteFailure { site, name, detail });
            }
        }
        let _ = std::fs::remove_dir_all(&run_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }

    if failures.is_empty() {
        let _ = std::fs::remove_dir_all(root);
    }
    ExplorerReport { total_sites: total, site_names, explored, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dynamic half of the fault-site contract (the static half is
    /// `hermit-lint`'s `fault-matrix` rule): every site the canonical
    /// workload's schedule passes through must be declared in
    /// [`crate::CRASH_MATRIX_SITES`], and the workload must actually reach
    /// the durability core of the matrix. A budget of 0 runs only the
    /// counting pass — no crash snapshots, one workload execution.
    #[test]
    fn crash_matrix_reconciles_with_the_explorer() {
        let root = std::env::temp_dir().join(format!("hermit-matrix-{}", std::process::id()));
        let report = explore(&root, Some(0));
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        for name in report.site_names.keys() {
            assert!(
                crate::CRASH_MATRIX_SITES.contains(&name.as_str()),
                "schedule passed through site {name} which is not in CRASH_MATRIX_SITES"
            );
        }
        for site in [
            "wal.reset",
            "wal.header",
            "wal.append",
            "wal.commit",
            "wal.txn_commit",
            "wal.txn_abort",
            "atomic.write",
            "atomic.rename",
            "page.write",
            "page.sync",
        ] {
            assert!(
                report.site_names.contains_key(site),
                "canonical workload never reached {site}"
            );
        }
        assert!(
            crate::CRASH_MATRIX_SITES.windows(2).all(|w| w[0] < w[1]),
            "CRASH_MATRIX_SITES must stay sorted and deduplicated"
        );
    }
}
