//! Deterministic byte-level manglers for on-disk artifacts.
//!
//! [`mangle_bytes`] applies a seed-determined sequence of corruptions —
//! truncation, bit flips, garbage runs, zeroed runs, duplicated slices,
//! garbage appends — to a byte buffer. Every schedule is a pure function
//! of the seed, so a failing corruption is replayable from one `u64`.
//!
//! The intended target is the WAL: the recovery contract says *any*
//! mangled log must either replay a valid prefix or fail with a typed
//! error — never panic, never apply garbage (see the proptest in
//! `tests/fault_injection.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Corrupt `bytes` in place, deterministically from `seed`.
pub fn mangle_bytes(bytes: &mut Vec<u8>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = rng.gen_range(1..=4usize);
    for _ in 0..ops {
        match rng.gen_range(0..6u32) {
            // Truncate anywhere, including mid-header.
            0 => {
                if !bytes.is_empty() {
                    let at = rng.gen_range(0..bytes.len());
                    bytes.truncate(at);
                }
            }
            // Flip a handful of bytes.
            1 => {
                if !bytes.is_empty() {
                    for _ in 0..rng.gen_range(1..=8usize) {
                        let at = rng.gen_range(0..bytes.len());
                        bytes[at] ^= rng.gen_range(1..=255u32) as u8;
                    }
                }
            }
            // Overwrite a run with garbage.
            2 => {
                if !bytes.is_empty() {
                    let at = rng.gen_range(0..bytes.len());
                    let len = rng.gen_range(1..=64usize).min(bytes.len() - at);
                    for b in &mut bytes[at..at + len] {
                        *b = rng.gen_range(0..=255u32) as u8;
                    }
                }
            }
            // Zero a run (a hole a sparse filesystem could leave).
            3 => {
                if !bytes.is_empty() {
                    let at = rng.gen_range(0..bytes.len());
                    let len = rng.gen_range(1..=64usize).min(bytes.len() - at);
                    bytes[at..at + len].fill(0);
                }
            }
            // Append garbage (a torn append of a frame that never was).
            4 => {
                for _ in 0..rng.gen_range(1..=32usize) {
                    bytes.push(rng.gen_range(0..=255u32) as u8);
                }
            }
            // Duplicate an existing slice at the tail (a replayed buffer).
            _ => {
                if !bytes.is_empty() {
                    let at = rng.gen_range(0..bytes.len());
                    let len = rng.gen_range(1..=64usize).min(bytes.len() - at);
                    let dup = bytes[at..at + len].to_vec();
                    bytes.extend_from_slice(&dup);
                }
            }
        }
    }
}

/// Read `path`, [`mangle_bytes`] it with `seed`, write it back.
pub fn mangle_file(path: &Path, seed: u64) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    mangle_bytes(&mut bytes, seed);
    std::fs::write(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let base: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        let run = |seed| {
            let mut b = base.clone();
            mangle_bytes(&mut b, seed);
            b
        };
        assert_eq!(run(7), run(7));
        // At least one of a few seeds must actually change the buffer.
        assert!((0..8).any(|s| run(s) != base));
    }

    #[test]
    fn empty_input_does_not_panic() {
        for seed in 0..16 {
            let mut b = Vec::new();
            mangle_bytes(&mut b, seed);
        }
    }
}
