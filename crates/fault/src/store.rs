//! [`FaultyPageStore`]: a fault-injecting wrapper around any [`PageStore`].
//!
//! Replaces the ad-hoc test doubles the durability and write-path suites
//! used to carry: one shared implementation that models
//!
//! * **dying** devices — writes and fsyncs return EIO;
//! * **lying** devices — writes and fsyncs report success but drop the
//!   data;
//! * **poisoned reads** — every read fails (a vanished device);
//! * **page-granular drops** — writes to specific pages silently vanish
//!   (the partial flush a crash leaves behind);
//! * **planned faults** — EIO / dropped / torn writes at exact operation
//!   ordinals or from a seeded schedule, via [`FaultPlan`].
//!
//! All toggles compose; the wrapper forwards `file_path`/`reserve`/`stats`
//! so the checkpoint machinery treats it exactly like the inner store.

use crate::plan::{FaultKind, FaultOp, FaultPlan};
use hermit_storage::paged::{FilePageStore, IoStats, Page, PageId, PageStore, PAGE_SIZE};
use hermit_storage::StorageError;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Fault-injecting [`PageStore`] wrapper. See the module docs.
pub struct FaultyPageStore {
    inner: Arc<dyn PageStore>,
    plan: Mutex<FaultPlan>,
    reads: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
    injected: AtomicU64,
    dying: AtomicBool,
    lying: AtomicBool,
    fail_reads: AtomicBool,
    drop_pages: Mutex<HashSet<PageId>>,
}

impl FaultyPageStore {
    /// Wrap `inner` with no faults armed.
    pub fn new(inner: Arc<dyn PageStore>) -> Self {
        Self::with_plan(inner, FaultPlan::none())
    }

    /// Wrap `inner` with a [`FaultPlan`] deciding per-operation faults.
    pub fn with_plan(inner: Arc<dyn PageStore>, plan: FaultPlan) -> Self {
        FaultyPageStore {
            inner,
            plan: Mutex::new(plan),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            dying: AtomicBool::new(false),
            lying: AtomicBool::new(false),
            fail_reads: AtomicBool::new(false),
            drop_pages: Mutex::new(HashSet::new()),
        }
    }

    /// Convenience: wrap the [`FilePageStore`] at `path` (the page file of
    /// an existing durable database directory).
    pub fn open(path: &Path) -> hermit_storage::Result<Self> {
        Ok(Self::new(Arc::new(FilePageStore::open(path)?)))
    }

    /// Replace the fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Dying device: writes and fsyncs start returning EIO.
    pub fn set_dying(&self, on: bool) {
        self.dying.store(on, Ordering::SeqCst);
    }

    /// Lying device: writes and fsyncs report success, data is dropped.
    pub fn set_lying(&self, on: bool) {
        self.lying.store(on, Ordering::SeqCst);
    }

    /// Poison reads: every read fails with EIO.
    pub fn set_fail_reads(&self, on: bool) {
        self.fail_reads.store(on, Ordering::SeqCst);
    }

    /// Silently drop all future writes to `page`.
    pub fn drop_page(&self, page: PageId) {
        self.drop_pages.lock().insert(page);
    }

    /// Number of faults injected so far (any mechanism).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn inject(&self) {
        self.injected.fetch_add(1, Ordering::SeqCst);
    }

    fn eio(&self, what: &str) -> StorageError {
        self.inject();
        StorageError::Io(format!("injected {what} fault"))
    }
}

impl PageStore for FaultyPageStore {
    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn read(&self, id: PageId) -> hermit_storage::Result<Page> {
        let nth = self.reads.fetch_add(1, Ordering::SeqCst);
        if self.fail_reads.load(Ordering::SeqCst) {
            return Err(self.eio("read"));
        }
        if let Some(FaultKind::Eio) = self.plan.lock().decide(FaultOp::Read, nth) {
            return Err(self.eio("read"));
        }
        self.inner.read(id)
    }

    fn write(&self, id: PageId, page: &Page) -> hermit_storage::Result<()> {
        let nth = self.writes.fetch_add(1, Ordering::SeqCst);
        if self.dying.load(Ordering::SeqCst) {
            return Err(self.eio("write"));
        }
        if self.lying.load(Ordering::SeqCst) || self.drop_pages.lock().contains(&id) {
            self.inject();
            return Ok(()); // accepted, silently dropped
        }
        match self.plan.lock().decide(FaultOp::Write, nth) {
            Some(FaultKind::Eio) => Err(self.eio("write")),
            Some(FaultKind::Drop) => {
                self.inject();
                Ok(())
            }
            Some(FaultKind::Torn { keep }) => {
                self.inject();
                // First `keep` bytes of the new image land; the rest keeps
                // whatever the device held before (zeros for a fresh page).
                let keep = keep.min(PAGE_SIZE);
                let mut bytes = match self.inner.read(id) {
                    Ok(old) => *old.as_bytes(),
                    Err(_) => [0u8; PAGE_SIZE],
                };
                bytes[..keep].copy_from_slice(&page.as_bytes()[..keep]);
                self.inner.write(id, &Page::from_bytes(&bytes))
            }
            None => self.inner.write(id, page),
        }
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn sync(&self) -> hermit_storage::Result<()> {
        let nth = self.syncs.fetch_add(1, Ordering::SeqCst);
        if self.dying.load(Ordering::SeqCst) {
            return Err(self.eio("sync"));
        }
        if self.lying.load(Ordering::SeqCst) {
            self.inject();
            return Ok(());
        }
        match self.plan.lock().decide(FaultOp::Sync, nth) {
            // A torn "sync" has no sensible meaning; treat it as EIO too.
            Some(FaultKind::Eio) | Some(FaultKind::Torn { .. }) => Err(self.eio("sync")),
            Some(FaultKind::Drop) => {
                self.inject();
                Ok(()) // lying fsync
            }
            None => self.inner.sync(),
        }
    }

    fn file_path(&self) -> Option<&Path> {
        self.inner.file_path()
    }

    fn reserve(&self, pages: u64) {
        self.inner.reserve(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlannedFault;
    use hermit_storage::paged::SimulatedPageStore;

    fn page_of(byte: u8) -> Page {
        let mut p = Page::new(16);
        p.insert(&[byte; 16]).unwrap();
        p
    }

    #[test]
    fn forwards_when_no_faults_armed() {
        let store = FaultyPageStore::new(Arc::new(SimulatedPageStore::new()));
        let id = store.allocate();
        store.write(id, &page_of(7)).unwrap();
        assert_eq!(store.read(id).unwrap().get(0).unwrap(), &[7u8; 16]);
        store.sync().unwrap();
        assert_eq!(store.injected(), 0);
    }

    #[test]
    fn dying_lying_and_poisoned_toggles() {
        let store = FaultyPageStore::new(Arc::new(SimulatedPageStore::new()));
        let id = store.allocate();
        store.write(id, &page_of(1)).unwrap();

        store.set_dying(true);
        assert!(store.write(id, &page_of(2)).is_err());
        assert!(store.sync().is_err());
        store.set_dying(false);

        store.set_lying(true);
        store.write(id, &page_of(3)).unwrap();
        store.sync().unwrap();
        store.set_lying(false);
        assert_eq!(store.read(id).unwrap().get(0).unwrap(), &[1u8; 16], "lying write dropped");

        store.set_fail_reads(true);
        assert!(store.read(id).is_err());
        store.set_fail_reads(false);
        assert!(store.injected() >= 4);
    }

    #[test]
    fn per_page_drops_only_hit_the_victim() {
        let store = FaultyPageStore::new(Arc::new(SimulatedPageStore::new()));
        let a = store.allocate();
        let b = store.allocate();
        store.write(a, &page_of(1)).unwrap();
        store.write(b, &page_of(1)).unwrap();
        store.drop_page(a);
        store.write(a, &page_of(9)).unwrap();
        store.write(b, &page_of(9)).unwrap();
        assert_eq!(store.read(a).unwrap().get(0).unwrap(), &[1u8; 16]);
        assert_eq!(store.read(b).unwrap().get(0).unwrap(), &[9u8; 16]);
    }

    #[test]
    fn planned_torn_write_keeps_a_prefix() {
        const KEEP: usize = 64;
        let store = FaultyPageStore::with_plan(
            Arc::new(SimulatedPageStore::new()),
            FaultPlan::explicit(vec![PlannedFault {
                op: FaultOp::Write,
                nth: 1,
                kind: FaultKind::Torn { keep: KEEP },
            }]),
        );
        let id = store.allocate();
        let old = page_of(1);
        let new = page_of(2);
        store.write(id, &old).unwrap(); // write 0: clean
        store.write(id, &new).unwrap(); // write 1: torn after KEEP bytes
                                        // Exactly the first KEEP bytes of the new image land; the rest is
                                        // the previous device content, byte for byte.
        let mut expected = *old.as_bytes();
        expected[..KEEP].copy_from_slice(&new.as_bytes()[..KEEP]);
        assert_eq!(store.read(id).unwrap().as_bytes(), &expected);
        assert_eq!(store.injected(), 1);
    }
}
