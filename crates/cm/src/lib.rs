#![forbid(unsafe_code)]
//! # hermit-cm
//!
//! **Correlation Maps** (Kimura et al., VLDB 2009) — the prior
//! correlation-exploiting access method the Hermit paper compares against
//! in Appendix C/E (Figs. 27–30).
//!
//! A Correlation Map (CM) buckets both the *target* column and the *host*
//! column into fixed-width buckets and stores, for every target bucket, the
//! set of host buckets containing at least one co-occurring tuple. A query
//! on the target column maps its predicate to the covered target buckets,
//! unions their host-bucket sets, and probes the host index with the
//! resulting host value ranges.
//!
//! Faithful to the original design (and to the paper's critique):
//!
//! * CM has **no outlier handling** — a single noisy tuple permanently
//!   widens its target bucket's host set, so sparsely-scattered noise
//!   degrades lookups badly (the effect Figs. 27/29 demonstrate);
//! * bucket granularity is **fixed up front** (the original system sizes
//!   buckets with an offline tuning advisor; the benchmark sweeps the
//!   granularities instead);
//! * maintenance is insert-only in the fast path — deletes would require
//!   re-scanning the bucket to prove no other tuple keeps the mapping
//!   alive, so [`CorrelationMap::rebuild`] is the supported shrink path.

use hermit_storage::Tid;

/// Bucket-granularity parameters for a Correlation Map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmParams {
    /// Width of each target-column bucket, in value units (the paper's
    /// "CM-X" label: bucket size X on the target column).
    pub target_bucket_size: f64,
    /// Width of each host-column bucket, in value units.
    pub host_bucket_size: f64,
}

impl CmParams {
    /// Construct with both widths; must be positive.
    pub fn new(target_bucket_size: f64, host_bucket_size: f64) -> Self {
        assert!(target_bucket_size > 0.0, "target bucket size must be positive");
        assert!(host_bucket_size > 0.0, "host bucket size must be positive");
        CmParams { target_bucket_size, host_bucket_size }
    }
}

/// A Correlation Map from a target column to a host column.
#[derive(Debug, Clone)]
pub struct CorrelationMap {
    params: CmParams,
    t_min: f64,
    h_min: f64,
    /// `buckets[tb]` = sorted host-bucket ids with at least one tuple whose
    /// target value falls in target bucket `tb`.
    buckets: Vec<Vec<u32>>,
}

impl CorrelationMap {
    /// Build from `(target, host, tid)` pairs over the given column ranges
    /// (tids are not stored — CM maps buckets, not tuples; the signature
    /// matches the TRS-Tree builder so benchmarks can swap structures).
    pub fn build(
        params: CmParams,
        target_range: (f64, f64),
        host_range: (f64, f64),
        pairs: &[(f64, f64, Tid)],
    ) -> Self {
        let t_buckets = Self::bucket_count(target_range, params.target_bucket_size);
        let mut cm = CorrelationMap {
            params,
            t_min: target_range.0,
            h_min: host_range.0,
            buckets: vec![Vec::new(); t_buckets],
        };
        for (m, n, _) in pairs {
            cm.insert(*m, *n);
        }
        cm
    }

    fn bucket_count(range: (f64, f64), size: f64) -> usize {
        (((range.1 - range.0) / size).floor() as usize) + 1
    }

    #[inline]
    fn target_bucket(&self, m: f64) -> usize {
        let idx = ((m - self.t_min) / self.params.target_bucket_size).floor();
        (idx as isize).clamp(0, self.buckets.len() as isize - 1) as usize
    }

    #[inline]
    fn host_bucket(&self, n: f64) -> u32 {
        let idx = ((n - self.h_min) / self.params.host_bucket_size).floor();
        idx.max(0.0) as u32
    }

    /// Value range `[lo, hi)` covered by a host bucket id.
    #[inline]
    fn host_bucket_range(&self, hb: u32) -> (f64, f64) {
        let lo = self.h_min + hb as f64 * self.params.host_bucket_size;
        (lo, lo + self.params.host_bucket_size)
    }

    /// Register a tuple. O(log b) per call (sorted insert into the target
    /// bucket's host set).
    pub fn insert(&mut self, m: f64, n: f64) {
        let tb = self.target_bucket(m);
        let hb = self.host_bucket(n);
        let set = &mut self.buckets[tb];
        if let Err(pos) = set.binary_search(&hb) {
            set.insert(pos, hb);
        }
    }

    /// Translate a target-range predicate into host value ranges
    /// (merged/unioned, ready for a host-index probe).
    pub fn lookup(&self, lb: f64, ub: f64) -> Vec<(f64, f64)> {
        if lb > ub || self.buckets.is_empty() {
            return Vec::new();
        }
        let first = self.target_bucket(lb);
        let last = self.target_bucket(ub);
        // Union of host bucket ids across covered target buckets.
        let mut host_ids: Vec<u32> = Vec::new();
        for tb in first..=last {
            host_ids.extend_from_slice(&self.buckets[tb]);
        }
        host_ids.sort_unstable();
        host_ids.dedup();
        // Coalesce adjacent bucket ids into contiguous value ranges.
        let mut out: Vec<(f64, f64)> = Vec::new();
        for hb in host_ids {
            let (lo, hi) = self.host_bucket_range(hb);
            match out.last_mut() {
                Some(last) if lo <= last.1 => last.1 = hi,
                _ => out.push((lo, hi)),
            }
        }
        out
    }

    /// Point-query variant of [`lookup`](Self::lookup).
    pub fn lookup_point(&self, m: f64) -> Vec<(f64, f64)> {
        self.lookup(m, m)
    }

    /// Rebuild from scratch (the supported path after heavy deletion; see
    /// module docs).
    pub fn rebuild(&mut self, pairs: &[(f64, f64, Tid)]) {
        for b in &mut self.buckets {
            b.clear();
        }
        for (m, n, _) in pairs {
            self.insert(*m, *n);
        }
    }

    /// Number of target buckets.
    pub fn target_bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total `(target bucket → host bucket)` mappings stored.
    pub fn mapping_count(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Heap bytes held by the map — the number Figs. 28/30 report for CM.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.buckets.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.buckets.iter().map(|b| b.capacity() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_pairs(n: usize) -> Vec<(f64, f64, Tid)> {
        (0..n).map(|i| (i as f64, 2.0 * i as f64, Tid(i as u64))).collect()
    }

    fn build_linear(n: usize, tb: f64, hb: f64) -> CorrelationMap {
        let pairs = linear_pairs(n);
        CorrelationMap::build(
            CmParams::new(tb, hb),
            (0.0, (n - 1) as f64),
            (0.0, 2.0 * (n - 1) as f64),
            &pairs,
        )
    }

    #[test]
    fn lookup_covers_true_host_values() {
        let cm = build_linear(10_000, 16.0, 64.0);
        for m in [0.0, 123.0, 5_000.0, 9_999.0] {
            let truth = 2.0 * m;
            let ranges = cm.lookup_point(m);
            assert!(
                ranges.iter().any(|(lo, hi)| truth >= *lo && truth < *hi),
                "host value {truth} for m={m} not covered by {ranges:?}"
            );
        }
    }

    #[test]
    fn range_lookup_merges_adjacent_buckets() {
        let cm = build_linear(10_000, 16.0, 64.0);
        // A clean linear correlation: one merged host range expected.
        let ranges = cm.lookup(1_000.0, 2_000.0);
        assert_eq!(ranges.len(), 1, "adjacent host buckets should coalesce: {ranges:?}");
        let (lo, hi) = ranges[0];
        assert!(lo <= 2_000.0 && hi >= 4_000.0);
    }

    #[test]
    fn smaller_host_buckets_are_tighter() {
        let coarse = build_linear(10_000, 16.0, 4_096.0);
        let fine = build_linear(10_000, 16.0, 16.0);
        let width = |r: Vec<(f64, f64)>| r.iter().map(|(lo, hi)| hi - lo).sum::<f64>();
        let wc = width(coarse.lookup_point(5_000.0));
        let wf = width(fine.lookup_point(5_000.0));
        assert!(wf < wc, "finer host buckets must return tighter ranges: {wf} vs {wc}");
    }

    #[test]
    fn noise_widens_ranges_permanently() {
        // The critique from Appendix E: one scattered outlier per target
        // bucket poisons the map.
        let mut pairs = linear_pairs(10_000);
        for i in (0..pairs.len()).step_by(100) {
            pairs[i].1 = 19_000.0; // far-away host value
        }
        let clean = CorrelationMap::build(
            CmParams::new(16.0, 64.0),
            (0.0, 9_999.0),
            (0.0, 19_998.0),
            &linear_pairs(10_000),
        );
        let noisy = CorrelationMap::build(
            CmParams::new(16.0, 64.0),
            (0.0, 9_999.0),
            (0.0, 19_998.0),
            &pairs,
        );
        let width = |r: Vec<(f64, f64)>| r.iter().map(|(lo, hi)| hi - lo).sum::<f64>();
        let range = (1_000.0, 1_500.0);
        assert!(
            width(noisy.lookup(range.0, range.1)) > width(clean.lookup(range.0, range.1)),
            "noise must widen CM's returned ranges"
        );
    }

    #[test]
    fn insert_extends_mappings() {
        let mut cm =
            CorrelationMap::build(CmParams::new(10.0, 10.0), (0.0, 100.0), (0.0, 1_000.0), &[]);
        assert_eq!(cm.mapping_count(), 0);
        assert!(cm.lookup_point(50.0).is_empty());
        cm.insert(50.0, 500.0);
        let ranges = cm.lookup_point(50.0);
        assert!(ranges.iter().any(|(lo, hi)| 500.0 >= *lo && 500.0 < *hi));
        // Idempotent for the same bucket pair.
        cm.insert(50.0, 501.0);
        assert_eq!(cm.mapping_count(), 1);
    }

    #[test]
    fn rebuild_drops_stale_mappings() {
        let mut cm = CorrelationMap::build(
            CmParams::new(10.0, 10.0),
            (0.0, 100.0),
            (0.0, 1_000.0),
            &[(50.0, 900.0, Tid(0)), (50.0, 100.0, Tid(1))],
        );
        assert_eq!(cm.mapping_count(), 2);
        cm.rebuild(&[(50.0, 100.0, Tid(1))]);
        assert_eq!(cm.mapping_count(), 1);
        let ranges = cm.lookup_point(50.0);
        assert!(!ranges.iter().any(|(lo, _)| *lo >= 890.0), "stale mapping must be gone");
    }

    #[test]
    fn memory_grows_with_granularity() {
        let coarse = build_linear(10_000, 1_024.0, 1_024.0);
        let fine = build_linear(10_000, 16.0, 16.0);
        assert!(
            fine.memory_bytes() > coarse.memory_bytes(),
            "finer buckets cost more memory: {} vs {}",
            fine.memory_bytes(),
            coarse.memory_bytes()
        );
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut cm = build_linear(1_000, 16.0, 64.0);
        cm.insert(-500.0, -500.0); // clamps to first target bucket, host bucket 0
        cm.insert(5_000.0, 5_000.0); // clamps to last target bucket
        let r = cm.lookup(-1_000.0, 0.0);
        assert!(!r.is_empty());
        // Inverted predicate.
        assert!(cm.lookup(5.0, 1.0).is_empty());
    }
}
