//! Blocking client for the `hermit_proto` wire protocol.
//!
//! One [`HermitClient`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request/response — no pipelining), which
//! is exactly the shape `hermit-cli`, the loopback test suite, and the
//! bench harness need. Server-reported failures come back as
//! [`ClientError::Server`] with the typed [`ErrorCode`], protocol damage as
//! [`ClientError::Proto`].
//!
//! ## Timeouts and retry
//!
//! [`ClientConfig`] bounds every blocking syscall (connect / read / write
//! timeouts) and, when [`retries`](ClientConfig::retries) is nonzero, makes
//! the *idempotent* requests — [`query`](HermitClient::query),
//! [`explain`](HermitClient::explain), [`stats`](HermitClient::stats) —
//! transparently survive transient failures: on a
//! [`Retryable`](crate::proto::FaultClass::Retryable) error (disconnect,
//! timeout, [`ErrorCode::Capacity`], [`ErrorCode::IdleTimeout`]) the client
//! sleeps a jittered exponential backoff, reconnects, and reissues the
//! request. Mutating requests (insert / delete / checkpoint / shutdown)
//! are **never** retried — a torn response leaves their effect unknown, and
//! reissuing could apply it twice; the caller sees the typed error and
//! decides. The backoff jitter is seeded
//! ([`retry_seed`](ClientConfig::retry_seed)) so a failing schedule is
//! replayable.

use crate::proto::{read_frame, send_request, ErrorCode, ProtoError, Request, Response};
use hermit_core::Query;
use hermit_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Knobs for the client's timeout and retry behavior.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection; `None` blocks
    /// indefinitely.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read; a hung server surfaces as
    /// [`ProtoError::TimedOut`] instead of parking the caller forever.
    pub read_timeout: Option<Duration>,
    /// Bound on each blocking write.
    pub write_timeout: Option<Duration>,
    /// Reissue attempts for idempotent requests after a retryable failure.
    /// `0` (the default) disables retry entirely.
    pub retries: u32,
    /// First backoff delay; doubles per attempt up to
    /// [`backoff_max`](Self::backoff_max).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for backoff jitter, so retry schedules are replayable.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            retries: 0,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(1),
            retry_seed: 0x4845_524d_4954,
        }
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server answered with a typed error.
    Server {
        /// Stable error category from the wire.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a response kind the request cannot produce.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedResponse(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = Result<T, ClientError>;

/// One connection to a `hermit-server`.
pub struct HermitClient {
    stream: TcpStream,
    peer: SocketAddr,
    config: ClientConfig,
    rng: StdRng,
    retries_done: u64,
    scratch: Vec<u8>,
}

impl HermitClient {
    /// Connect to a serving address with default timeouts and no retry.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HermitClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeout / retry configuration.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> std::io::Result<HermitClient> {
        let mut last_err = None;
        for peer in addr.to_socket_addrs()? {
            match Self::dial(peer, &config) {
                Ok(stream) => {
                    return Ok(HermitClient {
                        stream,
                        peer,
                        rng: StdRng::seed_from_u64(config.retry_seed),
                        config,
                        retries_done: 0,
                        scratch: Vec::new(),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| std::io::Error::other("address resolved to no socket addresses")))
    }

    fn dial(peer: SocketAddr, config: &ClientConfig) -> std::io::Result<TcpStream> {
        let stream = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&peer, t)?,
            None => TcpStream::connect(peer)?,
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(stream)
    }

    /// Set a read timeout so a hung server cannot park the client forever.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Retries performed so far across all idempotent requests (0 when
    /// nothing ever failed, or when retry is disabled).
    pub fn retries(&self) -> u64 {
        self.retries_done
    }

    /// Issue one request and read its response frame. No retry — mutating
    /// requests go through here directly.
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        send_request(&mut self.stream, request, &mut self.scratch)?;
        let payload = read_frame(&mut self.stream)?.ok_or(ProtoError::Truncated)?;
        Ok(Response::decode(&payload)?)
    }

    /// [`call`](Self::call) wrapped in the retry loop: safe only for
    /// requests whose reissue cannot double-apply an effect.
    fn call_idempotent(&mut self, request: &Request) -> ClientResult<Response> {
        let mut attempt = 0u32;
        loop {
            let result = self.call(request);
            let retryable = match &result {
                Ok(_) => return result,
                Err(ClientError::Proto(e)) => e.is_retryable(),
                Err(ClientError::Server { code, .. }) => code.is_retryable(),
                Err(ClientError::UnexpectedResponse(_)) => false,
            };
            if !retryable || attempt >= self.config.retries {
                return result;
            }
            attempt += 1;
            self.retries_done += 1;
            std::thread::sleep(self.backoff(attempt));
            // Always reconnect before a retry: after a transport error the
            // stream may be desynchronized, and the server closes the
            // socket on Capacity / IdleTimeout anyway. A failed reconnect
            // is fine — the next `call` fails retryably and the loop
            // either tries again or returns that error.
            if let Ok(stream) = Self::dial(self.peer, &self.config) {
                self.stream = stream;
            }
        }
    }

    /// Jittered exponential backoff: `base * 2^(attempt-1)` capped at
    /// `backoff_max`, then uniformly jittered over `[delay/2, delay)` so
    /// synchronized clients do not stampede the server in lockstep.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let delay = self
            .config
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.config.backoff_max)
            .max(Duration::from_micros(1));
        let frac: f64 = self.rng.gen_range(0.0..1.0);
        delay / 2 + delay.mul_f64(frac / 2.0)
    }

    fn expect_err(response: Response, what: &'static str) -> ClientError {
        match response {
            Response::Error { code, message } => ClientError::Server { code, message },
            _ => ClientError::UnexpectedResponse(what),
        }
    }

    /// Execute a query; rows are projected columns when the query carries a
    /// `select`, full rows otherwise. Idempotent: retried per
    /// [`ClientConfig::retries`].
    pub fn query(&mut self, query: &Query) -> ClientResult<Vec<Vec<Value>>> {
        match self.call_idempotent(&Request::Query(query.clone()))? {
            Response::Rows(rows) => Ok(rows),
            other => Err(Self::expect_err(other, "Rows")),
        }
    }

    /// Insert one row; returns the raw tid bits.
    pub fn insert(&mut self, row: Vec<Value>) -> ClientResult<u64> {
        match self.call(&Request::Insert(row))? {
            Response::Inserted { tid } => Ok(tid),
            other => Err(Self::expect_err(other, "Inserted")),
        }
    }

    /// Delete a row by primary key.
    pub fn delete(&mut self, pk: i64) -> ClientResult<()> {
        match self.call(&Request::Delete { pk })? {
            Response::Deleted => Ok(()),
            other => Err(Self::expect_err(other, "Deleted")),
        }
    }

    /// EXPLAIN the query's plan (the engine's stable EXPLAIN text).
    /// Idempotent: retried per [`ClientConfig::retries`].
    pub fn explain(&mut self, query: &Query) -> ClientResult<String> {
        match self.call_idempotent(&Request::Explain(query.clone()))? {
            Response::Explain(plan) => Ok(plan),
            other => Err(Self::expect_err(other, "Explain")),
        }
    }

    /// Fetch the server's metrics dump. Idempotent: retried per
    /// [`ClientConfig::retries`].
    pub fn stats(&mut self) -> ClientResult<String> {
        match self.call_idempotent(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(Self::expect_err(other, "Stats")),
        }
    }

    /// Trigger a live checkpoint.
    pub fn checkpoint(&mut self) -> ClientResult<()> {
        match self.call(&Request::Checkpoint)? {
            Response::Ok => Ok(()),
            other => Err(Self::expect_err(other, "Ok")),
        }
    }

    /// Request graceful server shutdown; the ack arrives before the drain.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(Self::expect_err(other, "Ok")),
        }
    }

    /// Open a transaction on this connection; subsequent `insert` / `delete`
    /// / `query` calls run inside it until [`commit`](Self::commit) or
    /// [`rollback`](Self::rollback). Never retried: a reissued `Begin`
    /// after a torn response could open a second transaction server-side.
    pub fn begin(&mut self) -> ClientResult<u64> {
        match self.call(&Request::Begin)? {
            Response::TxnBegun { txn } => Ok(txn),
            other => Err(Self::expect_err(other, "TxnBegun")),
        }
    }

    /// Commit this connection's open transaction. Never retried — a torn
    /// response leaves the commit outcome unknown, and the connection is
    /// gone anyway (the server rolls back on disconnect).
    pub fn commit(&mut self) -> ClientResult<()> {
        match self.call(&Request::Commit)? {
            Response::Ok => Ok(()),
            other => Err(Self::expect_err(other, "Ok")),
        }
    }

    /// Roll back this connection's open transaction. Never retried.
    pub fn rollback(&mut self) -> ClientResult<()> {
        match self.call(&Request::Rollback)? {
            Response::Ok => Ok(()),
            other => Err(Self::expect_err(other, "Ok")),
        }
    }
}
