//! Blocking client for the `hermit_proto` wire protocol.
//!
//! One [`HermitClient`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request/response — no pipelining), which
//! is exactly the shape `hermit-cli`, the loopback test suite, and the
//! bench harness need. Server-reported failures come back as
//! [`ClientError::Server`] with the typed [`ErrorCode`], protocol damage as
//! [`ClientError::Proto`].

use crate::proto::{read_frame, send_request, ErrorCode, ProtoError, Request, Response};
use hermit_core::Query;
use hermit_storage::Value;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server answered with a typed error.
    Server {
        /// Stable error category from the wire.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a response kind the request cannot produce.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedResponse(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = Result<T, ClientError>;

/// One connection to a `hermit-server`.
pub struct HermitClient {
    stream: TcpStream,
    scratch: Vec<u8>,
}

impl HermitClient {
    /// Connect to a serving address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HermitClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HermitClient { stream, scratch: Vec::new() })
    }

    /// Set a read timeout so a hung server cannot park the client forever.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Issue one request and read its response frame.
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        send_request(&mut self.stream, request, &mut self.scratch)?;
        let payload = read_frame(&mut self.stream)?.ok_or(ProtoError::Truncated)?;
        Ok(Response::decode(&payload)?)
    }

    fn expect_err(response: Response, what: &'static str) -> ClientError {
        match response {
            Response::Error { code, message } => ClientError::Server { code, message },
            _ => ClientError::UnexpectedResponse(what),
        }
    }

    /// Execute a query; rows are projected columns when the query carries a
    /// `select`, full rows otherwise.
    pub fn query(&mut self, query: &Query) -> ClientResult<Vec<Vec<Value>>> {
        match self.call(&Request::Query(query.clone()))? {
            Response::Rows(rows) => Ok(rows),
            other => Err(Self::expect_err(other, "Rows")),
        }
    }

    /// Insert one row; returns the raw tid bits.
    pub fn insert(&mut self, row: Vec<Value>) -> ClientResult<u64> {
        match self.call(&Request::Insert(row))? {
            Response::Inserted { tid } => Ok(tid),
            other => Err(Self::expect_err(other, "Inserted")),
        }
    }

    /// Delete a row by primary key.
    pub fn delete(&mut self, pk: i64) -> ClientResult<()> {
        match self.call(&Request::Delete { pk })? {
            Response::Deleted => Ok(()),
            other => Err(Self::expect_err(other, "Deleted")),
        }
    }

    /// EXPLAIN the query's plan (the engine's stable EXPLAIN text).
    pub fn explain(&mut self, query: &Query) -> ClientResult<String> {
        match self.call(&Request::Explain(query.clone()))? {
            Response::Explain(plan) => Ok(plan),
            other => Err(Self::expect_err(other, "Explain")),
        }
    }

    /// Fetch the server's metrics dump.
    pub fn stats(&mut self) -> ClientResult<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(Self::expect_err(other, "Stats")),
        }
    }

    /// Trigger a live checkpoint.
    pub fn checkpoint(&mut self) -> ClientResult<()> {
        match self.call(&Request::Checkpoint)? {
            Response::Ok => Ok(()),
            other => Err(Self::expect_err(other, "Ok")),
        }
    }

    /// Request graceful server shutdown; the ack arrives before the drain.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(Self::expect_err(other, "Ok")),
        }
    }
}
