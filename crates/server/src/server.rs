//! The serving loop: a thread-per-connection TCP front end over
//! [`SharedDatabase`].
//!
//! This is the paper's deployment story given a network surface. The
//! architecture of §3 puts Hermit inside an RDBMS that serves concurrent
//! traffic; [`hermit_core::shared`] made the engine servable from many
//! threads, and this module makes it reachable from other *processes*:
//!
//! * an accept loop on a [`std::net::TcpListener`], admission-bounded by
//!   [`ServerConfig::max_connections`] (a connection over the limit gets a
//!   typed [`ErrorCode::Capacity`] response, never a silent hang);
//! * one thread per connection running request frames through the engine —
//!   queries via the cost-based planner (plan once, execute, record the
//!   latency under the plan's [`PlanKind`](hermit_core::PlanKind) histogram), DML via the same
//!   concurrent write path every in-process thread uses;
//! * a per-query deadline ([`ServerConfig::query_deadline`]): the engine
//!   has no mid-plan cancellation points, so the deadline is enforced at
//!   completion — an over-deadline result is discarded and reported as
//!   [`ErrorCode::DeadlineExceeded`], bounding what a client may *observe*
//!   rather than what the server may *spend* (the honest contract for a
//!   cooperative executor);
//! * graceful shutdown (a [`Request::Shutdown`] frame or
//!   [`HermitServer::stop`]): stop admitting, drain in-flight connections
//!   (late requests get [`ErrorCode::ShuttingDown`]), force-close laggards
//!   after [`ServerConfig::drain_timeout`], stop the §4.4
//!   [`MaintenanceWorker`], and take a final checkpoint on durable
//!   databases so a clean stop never needs WAL replay.
//!
//! The `Stats` request renders every observability counter the engine
//! keeps — buffer-pool hits/misses, reorganization passes / queue depth /
//! outlier share, WAL tail depth, transaction counters
//! (begins/commits/aborts/conflicts + the active gauge), worker sweeps,
//! admission counters, and
//! the per-plan-kind latency histograms — as a stable `name value` text
//! dump (one metric per line, Prometheus-style labels), so a scrape is one
//! round-trip with no extra dependency.

use crate::proto::{
    read_frame, send_response, ErrorCode, ProtoError, Request, Response, MAX_FRAME,
};
use hermit_core::shared::{MaintenanceWorker, SharedDatabase};
use hermit_core::{CoreError, PlanLatencies, SecondaryIndex};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the serving front end.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Admission bound: connections at or above this are rejected with
    /// [`ErrorCode::Capacity`] after one response frame.
    pub max_connections: usize,
    /// Per-query completion deadline; `None` disables the check. Enforced
    /// at completion (see the module docs), and also used as the socket
    /// read timeout granularity during shutdown drain.
    pub query_deadline: Option<Duration>,
    /// How long shutdown waits for in-flight connections to finish before
    /// force-closing their sockets.
    pub drain_timeout: Duration,
    /// Per-connection idle read timeout: a connection that sends no frame
    /// for this long is reaped — counted in
    /// [`ServerMetrics::connections_reaped`], answered (best-effort) with
    /// [`ErrorCode::IdleTimeout`], and closed — so a stalled or silent
    /// client cannot pin a connection slot forever. `None` disables
    /// reaping.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            query_deadline: Some(Duration::from_secs(5)),
            drain_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// Cumulative serving-layer counters (engine counters live on the engine;
/// these are the ones only the front end can know).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted and served.
    pub connections_accepted: AtomicU64,
    /// Connections rejected by the admission bound.
    pub connections_rejected: AtomicU64,
    /// Connections currently being served.
    pub connections_active: AtomicU64,
    /// Idle connections reaped by the per-connection read timeout.
    pub connections_reaped: AtomicU64,
    /// Request frames successfully decoded and dispatched.
    pub requests: AtomicU64,
    /// Requests answered with [`Response::Error`] (any code).
    pub errors: AtomicU64,
    /// Queries discarded for finishing past the deadline.
    pub deadline_exceeded: AtomicU64,
    /// Per-plan-kind query latency histograms.
    pub query_latency: PlanLatencies,
}

struct Inner {
    db: SharedDatabase,
    config: ServerConfig,
    metrics: ServerMetrics,
    stop: AtomicBool,
    /// Live connection sockets by id, so shutdown can force-close readers
    /// blocked in `read_frame`.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    worker: Mutex<Option<MaintenanceWorker>>,
}

/// A running server: accept thread + per-connection threads.
///
/// Constructed with [`start`](Self::start); lives until a client sends
/// [`Request::Shutdown`] or the owner calls [`stop`](Self::stop) /
/// [`wait`](Self::wait). Dropping without either also shuts down.
pub struct HermitServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl HermitServer {
    /// Bind `addr` (use port 0 for an ephemeral port; see
    /// [`local_addr`](Self::local_addr)) and start serving `db`. The
    /// maintenance worker, when supplied, is owned by the server and
    /// stopped as part of graceful shutdown.
    pub fn start(
        db: SharedDatabase,
        worker: Option<MaintenanceWorker>,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<HermitServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Poll accept so the loop can observe the stop flag without needing
        // a wakeup connection.
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            db,
            config,
            metrics: ServerMetrics::default(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            worker: Mutex::new(worker),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("hermit-accept".into())
            .spawn(move || accept_loop(accept_inner, listener))?;
        Ok(HermitServer { inner, addr: local, accept: Some(accept) })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving-layer counters (live; shared with the threads).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.inner.metrics
    }

    /// The shared database handle the server serves.
    pub fn db(&self) -> &SharedDatabase {
        &self.inner.db
    }

    /// True once shutdown has been requested (by a client or the owner).
    pub fn is_stopping(&self) -> bool {
        self.inner.stop.load(Ordering::Acquire)
    }

    /// Request graceful shutdown and block until the drain (connections,
    /// worker, final checkpoint) completes.
    pub fn stop(mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.join_accept();
    }

    /// Block until a client-initiated [`Request::Shutdown`] completes the
    /// drain (the server binary's main thread parks here).
    pub fn wait(mut self) {
        self.join_accept();
    }

    fn join_accept(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HermitServer {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.join_accept();
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    while !inner.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => admit(&inner, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    drain(&inner);
}

fn admit(inner: &Arc<Inner>, stream: TcpStream) {
    let metrics = &inner.metrics;
    let active = metrics.connections_active.load(Ordering::Acquire);
    if active >= inner.config.max_connections as u64 {
        metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
        // One typed response, then close: the client learns *why* instead
        // of seeing a bare RST.
        let mut scratch = Vec::new();
        let mut w = BufWriter::new(&stream);
        let _ = send_response(
            &mut w,
            &Response::Error {
                code: ErrorCode::Capacity,
                message: format!("server at max_connections={}", inner.config.max_connections),
            },
            &mut scratch,
        );
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
    metrics.connections_active.fetch_add(1, Ordering::Relaxed);
    let id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        inner.conns.lock().insert(id, clone);
    }
    let conn_inner = Arc::clone(inner);
    let _ = std::thread::Builder::new().name(format!("hermit-conn-{id}")).spawn(move || {
        serve_connection(&conn_inner, &stream);
        conn_inner.conns.lock().remove(&id);
        conn_inner.metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
    });
}

/// One connection's request loop plus transaction cleanup: whatever way the
/// loop exits — clean disconnect, torn frame, idle reap, drain, shutdown —
/// a transaction still open on the connection is rolled back before the
/// connection is accounted closed, so a dropped client leaves no trace and
/// the final-checkpoint path never sees a stranded open transaction.
fn serve_connection(inner: &Arc<Inner>, stream: &TcpStream) {
    let mut txn: Option<u64> = None;
    serve_requests(inner, stream, &mut txn);
    if let Some(t) = txn {
        // hermit-lint: allow(error-swallow) the client is gone, so there is no one to report to; an already-closed txn id is the benign race here
        let _ = inner.db.rollback(t);
    }
}

/// The request loop proper; `txn` is the connection's implicit open
/// transaction (see the protocol docs in [`crate::proto`]).
fn serve_requests(inner: &Arc<Inner>, stream: &TcpStream, txn: &mut Option<u64>) {
    // Blocking reads on the connection socket (the listener's nonblocking
    // flag is inherited on some platforms — undo it).
    let _ = stream.set_nonblocking(false);
    // Idle reaping: a read that exceeds the configured timeout surfaces as
    // `ProtoError::TimedOut` below.
    let _ = stream.set_read_timeout(inner.config.read_timeout);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let mut scratch = Vec::new();
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean disconnect at a frame boundary.
            Ok(None) => return,
            // Mid-frame disconnect: nothing was applied for the torn
            // request (decode never ran), nothing to answer — close.
            Err(ProtoError::Truncated) => return,
            // The stream can't be resynchronized: answer once, then close.
            Err(e @ (ProtoError::Oversized { .. } | ProtoError::CrcMismatch)) => {
                inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_response(
                    &mut writer,
                    &Response::Error { code: ErrorCode::Protocol, message: e.to_string() },
                    &mut scratch,
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            // Idle past the read timeout: reap the connection so a stalled
            // client cannot pin a slot. Best-effort typed goodbye — a truly
            // dead peer won't read it, a slow one learns why it was cut.
            Err(ProtoError::TimedOut) => {
                inner.metrics.connections_reaped.fetch_add(1, Ordering::Relaxed);
                let _ = send_response(
                    &mut writer,
                    &Response::Error {
                        code: ErrorCode::IdleTimeout,
                        message: format!(
                            "connection idle past the {:?} read timeout",
                            inner.config.read_timeout.unwrap_or_default()
                        ),
                    },
                    &mut scratch,
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Err(ProtoError::Malformed(_)) | Err(ProtoError::Io(_)) => return,
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Framing was valid (length + CRC), so the stream is still
                // in sync: answer the bad message and keep serving.
                inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error { code: ErrorCode::BadRequest, message: e.to_string() };
                if send_response(&mut writer, &resp, &mut scratch).is_err() {
                    return;
                }
                continue;
            }
        };
        inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
        if inner.stop.load(Ordering::Acquire) && request != Request::Shutdown {
            inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
            };
            let _ = send_response(&mut writer, &resp, &mut scratch);
            return;
        }
        let shutdown = request == Request::Shutdown;
        let response = handle_request(inner, request, txn);
        if matches!(response, Response::Error { .. }) {
            inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if send_response(&mut writer, &response, &mut scratch).is_err() {
            return;
        }
        if shutdown {
            // Raise the flag after the ack is on the wire; the accept loop
            // notices within its poll interval and runs the drain.
            inner.stop.store(true, Ordering::Release);
            return;
        }
    }
}

/// Map a core-layer failure to the wire's stable error codes: write
/// conflicts are [`ErrorCode::Conflict`] (retryable — first-writer-wins
/// losers should back off and retry), unknown-transaction is a client
/// protocol misuse ([`ErrorCode::BadRequest`]), the rest keep their
/// existing classes.
fn core_error(e: CoreError) -> Response {
    let code = match &e {
        CoreError::Storage(hermit_storage::StorageError::WriteConflict { .. }) => {
            ErrorCode::Conflict
        }
        CoreError::UnknownTxn { .. } => ErrorCode::BadRequest,
        CoreError::NotDurable { .. } => ErrorCode::NotDurable,
        _ => ErrorCode::Storage,
    };
    Response::Error { code, message: e.to_string() }
}

/// Map a storage-layer failure from the auto-commit DML path (a
/// [`hermit_storage::StorageError::WriteConflict`] means the statement lost
/// to an open transaction's lock).
fn storage_error(e: hermit_storage::StorageError) -> Response {
    let code = match &e {
        hermit_storage::StorageError::WriteConflict { .. } => ErrorCode::Conflict,
        _ => ErrorCode::Storage,
    };
    Response::Error { code, message: e.to_string() }
}

fn handle_request(inner: &Arc<Inner>, request: Request, txn: &mut Option<u64>) -> Response {
    let db = &inner.db;
    match request {
        Request::Query(query) => {
            let plan = db.db().plan(&query);
            let kind = plan.kind();
            let t0 = Instant::now();
            let result = match *txn {
                Some(t) => db.execute_for_txn(&query, t),
                None => db.db().execute_plan(&plan),
            };
            let elapsed = t0.elapsed();
            inner.metrics.query_latency.record(kind, elapsed);
            if let Some(deadline) = inner.config.query_deadline {
                if elapsed > deadline {
                    inner.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    return Response::Error {
                        code: ErrorCode::DeadlineExceeded,
                        message: format!(
                            "query finished in {:?}, past the {:?} deadline; result discarded",
                            elapsed, deadline
                        ),
                    };
                }
            }
            // Materialize: the projection when the query carried one, full
            // rows otherwise. A row deleted between validation and fetch is
            // skipped, exactly like any other dead candidate.
            let rows: Vec<Vec<hermit_storage::Value>> = match result.projected {
                Some(projected) => projected,
                None => {
                    result.rows.iter().filter_map(|&loc| db.db().heap().get(loc).ok()).collect()
                }
            };
            if rows.len() > max_rows_per_response() {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "result of {} rows exceeds the per-response cap of {}; add a limit \
                         or a projection",
                        rows.len(),
                        max_rows_per_response()
                    ),
                };
            }
            Response::Rows(rows)
        }
        Request::Insert(row) => match *txn {
            Some(t) => match db.insert_txn(t, &row) {
                Ok(tid) => Response::Inserted { tid: tid.0 },
                Err(e) => core_error(e),
            },
            None => match db.insert(&row) {
                Ok(tid) => Response::Inserted { tid: tid.0 },
                Err(e) => storage_error(e),
            },
        },
        Request::Delete { pk } => match *txn {
            Some(t) => match db.delete_by_pk_txn(t, pk) {
                Ok(()) => Response::Deleted,
                Err(e) => core_error(e),
            },
            None => match db.delete_by_pk(pk) {
                Ok(()) => Response::Deleted,
                Err(e) => storage_error(e),
            },
        },
        Request::Begin => {
            if txn.is_some() {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "a transaction is already open on this connection".into(),
                };
            }
            match db.begin() {
                Ok(t) => {
                    *txn = Some(t);
                    Response::TxnBegun { txn: t }
                }
                Err(e) => core_error(e),
            }
        }
        Request::Commit => match txn.take() {
            None => Response::Error {
                code: ErrorCode::BadRequest,
                message: "no open transaction on this connection".into(),
            },
            Some(t) => match db.commit(t) {
                Ok(()) => Response::Ok,
                Err(e) => {
                    // A failed commit leaves the transaction open with a
                    // sound undo list (see hermit_core::txn) — keep it on
                    // the connection so rollback / disconnect cleans up.
                    if !matches!(e, CoreError::UnknownTxn { .. }) {
                        *txn = Some(t);
                    }
                    core_error(e)
                }
            },
        },
        Request::Rollback => match txn.take() {
            None => Response::Error {
                code: ErrorCode::BadRequest,
                message: "no open transaction on this connection".into(),
            },
            // Rollback always completes in memory; a WAL failure logging
            // the abort record is reported but the transaction is closed.
            Some(t) => match db.rollback(t) {
                Ok(()) => Response::Ok,
                Err(e) => core_error(e),
            },
        },
        Request::Explain(query) => Response::Explain(db.db().plan(&query).to_string()),
        Request::Checkpoint => match db.checkpoint() {
            Ok(()) => Response::Ok,
            Err(e @ CoreError::NotDurable { .. }) => {
                Response::Error { code: ErrorCode::NotDurable, message: e.to_string() }
            }
            Err(e) => Response::Error { code: ErrorCode::Storage, message: e.to_string() },
        },
        Request::Stats => Response::Stats(render_stats(inner)),
        Request::Shutdown => Response::Ok,
    }
}

/// Rows a single `Rows` response may carry, derived from the frame cap
/// (3 bytes of row header + 9 per cell; budget for one wide-ish row shape).
fn max_rows_per_response() -> usize {
    // Conservative: assume rows up to 16 cells (147 wire bytes each).
    (MAX_FRAME - 16) / (2 + 16 * 9)
}

/// Render every engine + serving counter as a stable text report: one
/// `name value` per line, Prometheus-style `{label="..."}` selectors for
/// per-column and per-plan metrics. Asserted by the test suite — treat the
/// line format as an API.
fn render_stats(inner: &Arc<Inner>) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let m = &inner.metrics;
    let db = inner.db.db();

    let _ =
        writeln!(out, "hermit_connections_active {}", m.connections_active.load(Ordering::Relaxed));
    let _ = writeln!(
        out,
        "hermit_connections_accepted {}",
        m.connections_accepted.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "hermit_connections_rejected {}",
        m.connections_rejected.load(Ordering::Relaxed)
    );
    let _ =
        writeln!(out, "hermit_connections_reaped {}", m.connections_reaped.load(Ordering::Relaxed));
    let _ = writeln!(out, "hermit_requests_total {}", m.requests.load(Ordering::Relaxed));
    let _ = writeln!(out, "hermit_request_errors {}", m.errors.load(Ordering::Relaxed));
    let _ = writeln!(
        out,
        "hermit_query_deadline_exceeded {}",
        m.deadline_exceeded.load(Ordering::Relaxed)
    );

    let _ = writeln!(out, "hermit_rows {}", db.len());
    if let Some((hits, misses, evictions)) = db.pool_counters() {
        let _ = writeln!(out, "hermit_pool_hits {hits}");
        let _ = writeln!(out, "hermit_pool_misses {misses}");
        let _ = writeln!(out, "hermit_pool_evictions {evictions}");
        let total = hits + misses;
        let rate = if total == 0 { 1.0 } else { hits as f64 / total as f64 };
        let _ = writeln!(out, "hermit_pool_hit_rate {rate:.6}");
    }
    if let Some(depth) = db.wal_depth() {
        let _ = writeln!(out, "hermit_wal_uncommitted {depth}");
    }

    let txn = db.txn_counters();
    let _ = writeln!(out, "hermit_txn_begins {}", txn.begins);
    let _ = writeln!(out, "hermit_txn_commits {}", txn.commits);
    let _ = writeln!(out, "hermit_txn_aborts {}", txn.aborts);
    let _ = writeln!(out, "hermit_txn_conflicts {}", txn.conflicts);
    let _ = writeln!(out, "hermit_txn_active {}", txn.active);

    let _ = writeln!(out, "hermit_reorg_passes {}", inner.db.reorg_passes());
    let _ = writeln!(out, "hermit_reorg_queue_depth {}", inner.db.reorg_queue_len());
    for col in db.indexed_columns() {
        if matches!(db.index(col), Some(SecondaryIndex::Hermit { .. })) {
            if let Some(share) = inner.db.outlier_share(col) {
                let _ = writeln!(out, "hermit_outlier_share{{column=\"{col}\"}} {share:.6}");
            }
        }
    }
    if let Some(worker) = inner.worker.lock().as_ref() {
        let stats = worker.stats();
        let _ = writeln!(out, "hermit_worker_sweeps {}", stats.sweeps.load(Ordering::Relaxed));
        let _ =
            writeln!(out, "hermit_worker_candidates {}", stats.candidates.load(Ordering::Relaxed));
    }

    for (kind, hist) in m.query_latency.iter() {
        let plan = kind.key();
        let _ = writeln!(out, "hermit_query_count{{plan=\"{plan}\"}} {}", hist.count());
        if hist.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "hermit_query_latency_us{{plan=\"{plan}\",quantile=\"0.5\"}} {}",
            hist.quantile_us(0.5)
        );
        let _ = writeln!(
            out,
            "hermit_query_latency_us{{plan=\"{plan}\",quantile=\"0.99\"}} {}",
            hist.quantile_us(0.99)
        );
        let _ =
            writeln!(out, "hermit_query_latency_us_mean{{plan=\"{plan}\"}} {:.1}", hist.mean_us());
        for (le, cum) in hist.cumulative() {
            let le = if le == u64::MAX { "+Inf".to_string() } else { le.to_string() };
            let _ =
                writeln!(out, "hermit_query_latency_bucket{{plan=\"{plan}\",le=\"{le}\"}} {cum}");
        }
    }
    out
}

/// Stop admitting, drain, force-close laggards, stop the worker, and take
/// the final checkpoint. Runs on the accept thread after its loop exits.
fn drain(inner: &Arc<Inner>) {
    let deadline = Instant::now() + inner.config.drain_timeout;
    while inner.metrics.connections_active.load(Ordering::Acquire) > 0 && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    // Force-close whatever is still blocked in a read.
    for (_, stream) in inner.conns.lock().drain() {
        let _ = stream.shutdown(Shutdown::Both);
    }
    let force_deadline = Instant::now() + Duration::from_secs(1);
    while inner.metrics.connections_active.load(Ordering::Acquire) > 0
        && Instant::now() < force_deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    if let Some(worker) = inner.worker.lock().take() {
        worker.stop();
    }
    // A clean stop leaves nothing for WAL replay. In-memory databases have
    // nothing to checkpoint; every other failure is already recorded in the
    // WAL and survives through ordinary recovery, so best-effort is right.
    match inner.db.checkpoint() {
        Ok(()) | Err(CoreError::NotDurable { .. }) => {}
        Err(e) => eprintln!("hermit-server: final checkpoint failed: {e}"),
    }
}
