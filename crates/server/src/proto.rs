//! `hermit_proto`: the length-prefixed, CRC-framed binary protocol spoken
//! between `hermit-server` and `hermit-cli`.
//!
//! Pure encode/decode — no sockets in this module, so both sides (and the
//! torn-frame test suite) share one implementation. The framing
//! deliberately mirrors the WAL's ([`hermit_storage::wal`]): a frame is
//!
//! ```text
//! len: u32 LE | crc32: u32 LE (of payload) | payload[len]
//! ```
//!
//! with `len <= MAX_FRAME`. A declared length above [`MAX_FRAME`] is
//! rejected *before* any allocation (a four-byte header must not provoke a
//! 4 GiB buffer), and a CRC mismatch poisons the connection — after a
//! corrupt frame there is no way to resynchronize a byte stream, so the
//! server sends one typed error and closes.
//!
//! # Messages
//!
//! | tag  | request                      | tag  | response                   |
//! |------|------------------------------|------|----------------------------|
//! | 0x01 | `Query(Query)`               | 0x81 | `Rows(Vec<Vec<Value>>)`    |
//! | 0x02 | `Insert(Vec<Value>)`         | 0x82 | `Inserted { tid }`         |
//! | 0x03 | `Delete { pk }`              | 0x83 | `Deleted`                  |
//! | 0x04 | `Explain(Query)`             | 0x84 | `Explain(String)`          |
//! | 0x05 | `Checkpoint`                 | 0x85 | `Stats(String)`            |
//! | 0x06 | `Stats`                      | 0x86 | `Ok`                       |
//! | 0x07 | `Shutdown`                   | 0x87 | `Error { code, message }`  |
//! | 0x08 | `Begin`                      | 0x88 | `TxnBegun { txn }`         |
//! | 0x09 | `Commit`                     |      |                            |
//! | 0x0A | `Rollback`                   |      |                            |
//!
//! Transactions are **per-connection implicit**: `Begin` opens one on the
//! connection (at most one at a time), subsequent `Insert`/`Delete`/`Query`
//! requests run inside it, and `Commit`/`Rollback` close it — no
//! transaction id travels on the wire (the returned id is informational,
//! for logs and tests). A connection that drops mid-transaction is rolled
//! back by the server.
//!
//! Cells use the WAL's encoding (`0` NULL, `1` i64, `2` f64; 9 bytes each);
//! queries serialize their conjuncts, projection, and limit exactly as the
//! [`hermit_core::Query`] builder holds them.

use hermit_core::{Query, RangePredicate};
use hermit_storage::recovery::crc32;
use hermit_storage::Value;
use std::io::{Read, Write};

/// Maximum frame payload in bytes. Large enough for a ~28 k-row result of
/// 3-column rows; small enough that a hostile length prefix cannot OOM the
/// peer.
pub const MAX_FRAME: usize = 1 << 20;

/// Typed protocol failure. Everything a malformed peer can provoke lands
/// here — never a panic.
#[derive(Debug)]
pub enum ProtoError {
    /// The stream ended inside a frame (header or payload).
    Truncated,
    /// A frame declared a payload longer than [`MAX_FRAME`].
    Oversized {
        /// Length the header declared.
        declared: usize,
    },
    /// Payload bytes do not match the frame's CRC.
    CrcMismatch,
    /// Structurally invalid payload (unknown tag, bad arity, short body).
    Malformed(&'static str),
    /// A read or write hit the socket's configured timeout.
    TimedOut,
    /// Transport failure.
    Io(std::io::Error),
}

/// Coarse failure classification: may a client safely retry after this?
///
/// **Retryable** failures are transport-level — the *bytes* were lost or
/// delayed, and repeating an idempotent request on a fresh connection is
/// sound. **Fatal** failures mean one side produced or observed garbage;
/// retrying would resend the same garbage (or trust a peer that already
/// proved untrustworthy), so the client must surface the error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Transient transport failure; retry idempotent requests.
    Retryable,
    /// Protocol-level corruption or misuse; do not retry.
    Fatal,
}

impl ProtoError {
    /// Classify this failure (see [`FaultClass`]).
    pub fn class(&self) -> FaultClass {
        match self {
            // The peer vanished or stalled mid-frame: nothing corrupt was
            // exchanged, a fresh connection can safely repeat the request.
            ProtoError::Truncated | ProtoError::TimedOut | ProtoError::Io(_) => {
                FaultClass::Retryable
            }
            // Garbage on the wire or an unframeable message: resending
            // changes nothing.
            ProtoError::Oversized { .. } | ProtoError::CrcMismatch | ProtoError::Malformed(_) => {
                FaultClass::Fatal
            }
        }
    }

    /// `true` if [`class`](Self::class) is [`FaultClass::Retryable`].
    pub fn is_retryable(&self) -> bool {
        self.class() == FaultClass::Retryable
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::Oversized { declared } => {
                write!(f, "frame declares {declared} bytes (max {MAX_FRAME})")
            }
            ProtoError::CrcMismatch => write!(f, "frame payload fails its CRC"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::TimedOut => write!(f, "socket timed out"),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => ProtoError::Truncated,
            // Both kinds occur for SO_RCVTIMEO expiry, platform-dependent.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtoError::TimedOut,
            _ => ProtoError::Io(e),
        }
    }
}

/// Error category carried by [`Response::Error`]; stable across versions
/// (codes are part of the wire format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request was structurally valid but semantically unserviceable
    /// (bad arity, unknown column, …).
    BadRequest = 1,
    /// The storage engine rejected the statement (duplicate/missing pk, …).
    Storage = 2,
    /// Checkpoint requested on a non-durable database.
    NotDurable = 3,
    /// The query finished after its deadline; the result was discarded.
    DeadlineExceeded = 4,
    /// The server is at `max_connections`; retry later.
    Capacity = 5,
    /// The server is draining for shutdown.
    ShuttingDown = 6,
    /// The peer sent a frame the server cannot trust (CRC/oversize).
    Protocol = 7,
    /// The connection sat idle past the server's read timeout and was
    /// reaped; reconnect and retry.
    IdleTimeout = 8,
    /// A first-writer-wins write conflict: another transaction holds the
    /// pk. Retry the statement (or the whole transaction) after a backoff.
    Conflict = 9,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::Storage,
            3 => ErrorCode::NotDurable,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::Capacity,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Protocol,
            8 => ErrorCode::IdleTimeout,
            9 => ErrorCode::Conflict,
            _ => return None,
        })
    }

    /// Classify a server-reported error (see [`FaultClass`]): only errors
    /// caused by transient server state — a full accept queue, an idle
    /// reap — are worth repeating; semantic rejections are final.
    pub fn class(self) -> FaultClass {
        match self {
            ErrorCode::Capacity | ErrorCode::IdleTimeout | ErrorCode::Conflict => {
                FaultClass::Retryable
            }
            ErrorCode::BadRequest
            | ErrorCode::Storage
            | ErrorCode::NotDurable
            | ErrorCode::DeadlineExceeded
            | ErrorCode::ShuttingDown
            | ErrorCode::Protocol => FaultClass::Fatal,
        }
    }

    /// `true` if [`class`](Self::class) is [`FaultClass::Retryable`].
    pub fn is_retryable(self) -> bool {
        self.class() == FaultClass::Retryable
    }
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a declarative query; respond with [`Response::Rows`].
    Query(Query),
    /// Insert one row; respond with [`Response::Inserted`].
    Insert(Vec<Value>),
    /// Delete by primary key; respond with [`Response::Deleted`].
    Delete {
        /// Primary key of the row to delete.
        pk: i64,
    },
    /// EXPLAIN the query's plan without executing it.
    Explain(Query),
    /// Take a live checkpoint (durable databases only).
    Checkpoint,
    /// Dump the server's metrics as a stable text report.
    Stats,
    /// Gracefully shut the server down (drain, stop worker, checkpoint).
    Shutdown,
    /// Open a transaction on this connection; respond with
    /// [`Response::TxnBegun`]. At most one per connection.
    Begin,
    /// Commit this connection's open transaction.
    Commit,
    /// Roll back this connection's open transaction.
    Rollback,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Materialized qualifying rows (projected columns when the query
    /// carried a `select`, full rows otherwise).
    Rows(Vec<Vec<Value>>),
    /// Insert acknowledged with the new row's tuple identifier.
    Inserted {
        /// Raw tid bits (scheme-dependent, see `hermit_storage::Tid`).
        tid: u64,
    },
    /// Delete acknowledged.
    Deleted,
    /// Rendered EXPLAIN plan.
    Explain(String),
    /// Rendered metrics report.
    Stats(String),
    /// Generic acknowledgement (checkpoint, shutdown, commit, rollback).
    Ok,
    /// Transaction opened; the id is informational (logs, tests) — requests
    /// on this connection route through it implicitly.
    TxnBegun {
        /// Server-assigned transaction id.
        txn: u64,
    },
    /// Typed failure; the connection stays usable unless the code is
    /// [`ErrorCode::Protocol`].
    Error {
        /// Stable error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// payload primitives

fn put_cell(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => {
            out.push(0);
            out.extend_from_slice(&[0u8; 8]);
        }
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_le_bytes());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Malformed("length overflow"))?;
        let s = self.buf.get(self.pos..end).ok_or(ProtoError::Malformed("short payload"))?;
        self.pos = end;
        Ok(s)
    }

    /// `take(N)` as a fixed-size array, for the `from_le_bytes` family.
    fn fixed<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        self.take(N)?.try_into().map_err(|_| ProtoError::Malformed("short payload"))
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let [b] = self.fixed::<1>()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.fixed()?))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.fixed()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.fixed()?))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.fixed()?))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.fixed()?))
    }

    fn cell(&mut self) -> Result<Value, ProtoError> {
        let tag = self.u8()?;
        let body: [u8; 8] = self.fixed()?;
        match tag {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(i64::from_le_bytes(body))),
            2 => Ok(Value::Float(f64::from_le_bytes(body))),
            _ => Err(ProtoError::Malformed("bad cell tag")),
        }
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed("invalid utf-8"))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after message"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        put_cell(out, v);
    }
}

fn get_row(c: &mut Cursor<'_>) -> Result<Vec<Value>, ProtoError> {
    let width = c.u16()? as usize;
    let mut row = Vec::with_capacity(width);
    for _ in 0..width {
        row.push(c.cell()?);
    }
    Ok(row)
}

fn put_query(out: &mut Vec<u8>, q: &Query) {
    out.extend_from_slice(&(q.conjuncts().len() as u16).to_le_bytes());
    for p in q.conjuncts() {
        out.extend_from_slice(&(p.column as u32).to_le_bytes());
        out.extend_from_slice(&p.lb.to_le_bytes());
        out.extend_from_slice(&p.ub.to_le_bytes());
    }
    match q.projection() {
        Some(cols) => {
            out.push(1);
            out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
            for &c in cols {
                out.extend_from_slice(&(c as u32).to_le_bytes());
            }
        }
        None => out.push(0),
    }
    match q.limit_rows() {
        Some(n) => {
            out.push(1);
            out.extend_from_slice(&(n as u64).to_le_bytes());
        }
        None => out.push(0),
    }
}

fn get_query(c: &mut Cursor<'_>) -> Result<Query, ProtoError> {
    let n = c.u16()? as usize;
    let mut q = Query::new();
    for _ in 0..n {
        let column = c.u32()? as usize;
        let lb = c.f64()?;
        let ub = c.f64()?;
        q = q.and(RangePredicate::range(column, lb, ub));
    }
    match c.u8()? {
        0 => {}
        1 => {
            let k = c.u16()? as usize;
            let mut cols = Vec::with_capacity(k);
            for _ in 0..k {
                cols.push(c.u32()? as usize);
            }
            q = q.select(cols);
        }
        _ => return Err(ProtoError::Malformed("bad projection flag")),
    }
    match c.u8()? {
        0 => {}
        1 => q = q.limit(c.u64()? as usize),
        _ => return Err(ProtoError::Malformed("bad limit flag")),
    }
    Ok(q)
}

// ---------------------------------------------------------------------------
// message encode/decode

impl Request {
    /// Serialize into a payload (no frame header).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Request::Query(q) => {
                out.push(0x01);
                put_query(out, q);
            }
            Request::Insert(row) => {
                out.push(0x02);
                put_row(out, row);
            }
            Request::Delete { pk } => {
                out.push(0x03);
                out.extend_from_slice(&pk.to_le_bytes());
            }
            Request::Explain(q) => {
                out.push(0x04);
                put_query(out, q);
            }
            Request::Checkpoint => out.push(0x05),
            Request::Stats => out.push(0x06),
            Request::Shutdown => out.push(0x07),
            Request::Begin => out.push(0x08),
            Request::Commit => out.push(0x09),
            Request::Rollback => out.push(0x0A),
        }
    }

    /// Parse a payload. Every malformation is a typed [`ProtoError`].
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            0x01 => Request::Query(get_query(&mut c)?),
            0x02 => Request::Insert(get_row(&mut c)?),
            0x03 => Request::Delete { pk: c.i64()? },
            0x04 => Request::Explain(get_query(&mut c)?),
            0x05 => Request::Checkpoint,
            0x06 => Request::Stats,
            0x07 => Request::Shutdown,
            0x08 => Request::Begin,
            0x09 => Request::Commit,
            0x0A => Request::Rollback,
            _ => return Err(ProtoError::Malformed("unknown request tag")),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize into a payload (no frame header).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Response::Rows(rows) => {
                out.push(0x81);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    put_row(out, row);
                }
            }
            Response::Inserted { tid } => {
                out.push(0x82);
                out.extend_from_slice(&tid.to_le_bytes());
            }
            Response::Deleted => out.push(0x83),
            Response::Explain(s) => {
                out.push(0x84);
                put_string(out, s);
            }
            Response::Stats(s) => {
                out.push(0x85);
                put_string(out, s);
            }
            Response::Ok => out.push(0x86),
            Response::Error { code, message } => {
                out.push(0x87);
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                put_string(out, message);
            }
            Response::TxnBegun { txn } => {
                out.push(0x88);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
    }

    /// Parse a payload. Every malformation is a typed [`ProtoError`].
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            0x81 => {
                let n = c.u32()? as usize;
                // Guard the pre-allocation against a hostile count: each row
                // costs at least 2 bytes on the wire.
                if n > payload.len() / 2 {
                    return Err(ProtoError::Malformed("row count exceeds payload"));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(get_row(&mut c)?);
                }
                Response::Rows(rows)
            }
            0x82 => Response::Inserted { tid: c.u64()? },
            0x83 => Response::Deleted,
            0x84 => Response::Explain(c.string()?),
            0x85 => Response::Stats(c.string()?),
            0x86 => Response::Ok,
            0x87 => {
                let raw = c.u16()?;
                let code =
                    ErrorCode::from_u16(raw).ok_or(ProtoError::Malformed("unknown error code"))?;
                Response::Error { code, message: c.string()? }
            }
            0x88 => Response::TxnBegun { txn: c.u64()? },
            _ => return Err(ProtoError::Malformed("unknown response tag")),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// framing

/// Wrap an already-encoded payload in a frame (length + CRC) and write it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    debug_assert!(payload.len() <= MAX_FRAME, "encoder produced an oversized frame");
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame and return its verified payload.
///
/// * `Ok(Some(payload))` — a complete, CRC-valid frame.
/// * `Ok(None)` — the peer closed the stream *at a frame boundary* (the
///   clean-disconnect case; a reader loop exits silently).
/// * `Err(Truncated)` — the stream ended inside a frame (mid-frame
///   disconnect).
/// * `Err(Oversized | CrcMismatch | Io)` — the stream can no longer be
///   trusted; the caller must close it.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut head = [0u8; 8];
    // Distinguish "closed before any byte" (clean EOF) from "closed inside
    // the header" (truncation): read the first byte separately.
    let (first, rest) = head.split_at_mut(1);
    match r.read(first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e.into()),
    }
    r.read_exact(rest)?;
    let [l0, l1, l2, l3, c0, c1, c2, c3] = head;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    let crc = u32::from_le_bytes([c0, c1, c2, c3]);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized { declared: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(ProtoError::CrcMismatch);
    }
    Ok(Some(payload))
}

/// Encode + frame a request into `scratch` and write it.
pub fn send_request(
    w: &mut impl Write,
    req: &Request,
    scratch: &mut Vec<u8>,
) -> Result<(), ProtoError> {
    req.encode(scratch);
    write_frame(w, scratch)
}

/// Encode + frame a response into `scratch` and write it.
pub fn send_response(
    w: &mut impl Write,
    resp: &Response,
    scratch: &mut Vec<u8>,
) -> Result<(), ProtoError> {
    resp.encode(scratch);
    write_frame(w, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let req = Request::Query(Query::new().range(2, 1.0, 9.0).select([0, 2]).limit(5));
        let mut buf = Vec::new();
        let mut wire = Vec::new();
        send_request(&mut wire, &req, &mut buf).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap().expect("one frame");
        assert_eq!(Request::decode(&payload).unwrap(), req);
        // And a clean EOF after it.
        let mut rest = &wire[wire.len()..];
        assert!(read_frame(&mut rest).unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_rejected_without_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        match read_frame(&mut wire.as_slice()) {
            Err(ProtoError::Oversized { declared }) => assert_eq!(declared, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn fault_classification_splits_transport_from_corruption() {
        assert!(ProtoError::Truncated.is_retryable());
        assert!(ProtoError::TimedOut.is_retryable());
        assert!(ProtoError::Io(std::io::Error::other("reset")).is_retryable());
        assert!(!ProtoError::CrcMismatch.is_retryable());
        assert!(!ProtoError::Oversized { declared: 9 }.is_retryable());
        assert!(!ProtoError::Malformed("x").is_retryable());
        assert!(ErrorCode::Capacity.is_retryable());
        assert!(ErrorCode::IdleTimeout.is_retryable());
        assert!(ErrorCode::Conflict.is_retryable());
        assert!(!ErrorCode::Storage.is_retryable());
        assert!(!ErrorCode::ShuttingDown.is_retryable());
    }

    #[test]
    fn txn_messages_roundtrip() {
        for req in [Request::Begin, Request::Commit, Request::Rollback] {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            assert_eq!(Request::decode(&payload).unwrap(), req);
        }
        let resp = Response::TxnBegun { txn: 42 };
        let mut payload = Vec::new();
        resp.encode(&mut payload);
        assert_eq!(Response::decode(&payload).unwrap(), resp);
        let resp = Response::Error { code: ErrorCode::Conflict, message: "pk 7".into() };
        let mut payload = Vec::new();
        resp.encode(&mut payload);
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn idle_timeout_error_code_roundtrips() {
        let resp = Response::Error { code: ErrorCode::IdleTimeout, message: "reaped".into() };
        let mut payload = Vec::new();
        resp.encode(&mut payload);
        assert_eq!(Response::decode(&payload).unwrap(), resp);
        // Socket-timeout io errors map onto the typed variant.
        let e: ProtoError = std::io::Error::from(std::io::ErrorKind::WouldBlock).into();
        assert!(matches!(e, ProtoError::TimedOut));
        let e: ProtoError = std::io::Error::from(std::io::ErrorKind::TimedOut).into();
        assert!(matches!(e, ProtoError::TimedOut));
    }

    #[test]
    fn crc_mismatch_is_typed() {
        let mut buf = Vec::new();
        let mut wire = Vec::new();
        send_request(&mut wire, &Request::Stats, &mut buf).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        assert!(matches!(read_frame(&mut wire.as_slice()), Err(ProtoError::CrcMismatch)));
    }
}
