//! `hermit-cli`: command-line client for `hermit-server`.
//!
//! ```text
//! hermit-cli [--addr HOST:PORT] [--timeout-ms N] [--retries N] <command> [args...]
//!
//! commands:
//!   insert <v>...                 insert one row (int, float, or `null` cells)
//!   delete <pk>                   delete by primary key
//!   query  <col> <lb> <ub> ...    conjunctive range query (triples repeat)
//!   point  <col> <v>              single point query
//!   explain <col> <lb> <ub> ...   EXPLAIN the plan without executing
//!   stats                         dump the server's metrics report
//!   checkpoint                    trigger a live checkpoint
//!   shutdown                      graceful server shutdown
//!   begin                         open a transaction, print its id
//!   commit                        commit this connection's transaction
//!   rollback                      roll back this connection's transaction
//!   txn                           scripted transaction: statements on stdin
//! ```
//!
//! `--timeout-ms` bounds connect / read / write syscalls (default 10000);
//! `--retries` reissues *idempotent* commands (query / point / explain /
//! stats) after transient failures with jittered exponential backoff
//! (default 2; mutating commands are never retried).
//!
//! Transactions are per-connection, so the standalone `begin` / `commit` /
//! `rollback` verbs mostly exercise the protocol (a `begin` whose process
//! exits is rolled back by the server). The useful surface is `txn`: it
//! reads one statement per line from stdin — `insert`, `delete`, `query`,
//! `point`, `commit`, `rollback`; blank lines and `#` comments skipped —
//! runs them all inside one transaction on one connection, and commits at
//! EOF unless the script said `commit`/`rollback` itself. Any failed
//! statement rolls the transaction back and exits 1; a malformed statement
//! rolls back and exits 2.
//!
//! Rows print one per line, tab-separated. Exit status 0 on success, 1 on
//! a server-reported or transport error, 2 on a usage error.

use hermit_core::Query;
use hermit_server::{ClientConfig, HermitClient};
use hermit_storage::Value;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hermit-cli [--addr HOST:PORT] [--timeout-ms N] [--retries N] \
         <insert|delete|query|point|explain|stats|checkpoint|shutdown\
         |begin|commit|rollback|txn> [args...]"
    );
    std::process::exit(2);
}

fn parse_cell(s: &str) -> Value {
    if s.eq_ignore_ascii_case("null") {
        return Value::Null;
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    match s.parse::<f64>() {
        Ok(f) => Value::Float(f),
        Err(_) => {
            eprintln!("hermit-cli: `{s}` is not null, an integer, or a float");
            std::process::exit(2);
        }
    }
}

fn parse_query(args: &[String]) -> Query {
    if args.is_empty() || !args.len().is_multiple_of(3) {
        eprintln!("hermit-cli: query/explain take (col, lb, ub) triples");
        std::process::exit(2);
    }
    let mut q = Query::new();
    for triple in args.chunks(3) {
        let col: usize = triple[0].parse().unwrap_or_else(|_| usage());
        let lb: f64 = triple[1].parse().unwrap_or_else(|_| usage());
        let ub: f64 = triple[2].parse().unwrap_or_else(|_| usage());
        q = q.range(col, lb, ub);
    }
    q
}

fn print_rows(rows: &[Vec<Value>]) {
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    println!("({} rows)", rows.len());
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut timeout = Duration::from_millis(10_000);
    let mut retries = 2u32;
    let mut rest = &argv[..];
    loop {
        match rest.first().map(String::as_str) {
            Some("--addr") => {
                addr = rest.get(1).cloned().unwrap_or_else(|| usage());
                rest = &rest[2..];
            }
            Some("--timeout-ms") => {
                let ms: u64 = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                timeout = Duration::from_millis(ms);
                rest = &rest[2..];
            }
            Some("--retries") => {
                retries = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                rest = &rest[2..];
            }
            _ => break,
        }
    }
    let Some(command) = rest.first() else { usage() };
    let args = &rest[1..];

    // `--timeout-ms 0` disables the bounds (a zero socket timeout is an
    // error at the OS level, so map it to "no timeout").
    let timeout = if timeout.is_zero() { None } else { Some(timeout) };
    let config = ClientConfig {
        connect_timeout: timeout,
        read_timeout: timeout,
        write_timeout: timeout,
        retries,
        ..ClientConfig::default()
    };
    let mut client = match HermitClient::connect_with(addr.as_str(), config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hermit-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let outcome = match command.as_str() {
        "insert" => {
            if args.is_empty() {
                usage();
            }
            let row: Vec<Value> = args.iter().map(|s| parse_cell(s)).collect();
            client.insert(row).map(|tid| println!("inserted (tid {tid:#x})"))
        }
        "delete" => {
            let pk: i64 = args.first().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            client.delete(pk).map(|()| println!("deleted {pk}"))
        }
        "query" => client.query(&parse_query(args)).map(|rows| print_rows(&rows)),
        "point" => {
            if args.len() != 2 {
                usage();
            }
            let col: usize = args[0].parse().unwrap_or_else(|_| usage());
            let v: f64 = args[1].parse().unwrap_or_else(|_| usage());
            client.query(&Query::new().point(col, v)).map(|rows| print_rows(&rows))
        }
        "explain" => client.explain(&parse_query(args)).map(|plan| println!("{plan}")),
        "stats" => client.stats().map(|report| print!("{report}")),
        "checkpoint" => client.checkpoint().map(|()| println!("checkpoint complete")),
        "shutdown" => client.shutdown().map(|()| println!("shutdown acknowledged")),
        "begin" => client.begin().map(|txn| println!("begun (txn {txn})")),
        "commit" => client.commit().map(|()| println!("committed")),
        "rollback" => client.rollback().map(|()| println!("rolled back")),
        "txn" => {
            run_txn_script(&mut client);
            Ok(())
        }
        _ => usage(),
    };
    if let Err(e) = outcome {
        eprintln!("hermit-cli: {e}");
        std::process::exit(1);
    }
}

/// The scripted-transaction mode: statements from stdin, one per line, all
/// inside a single transaction on this connection. Commits at EOF unless
/// the script committed or rolled back itself. Exits the process directly:
/// 0 on success, 1 when the server rejects a statement (after rolling the
/// transaction back), 2 on a malformed statement.
fn run_txn_script(client: &mut HermitClient) {
    let txn = match client.begin() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hermit-cli: begin failed: {e}");
            std::process::exit(1);
        }
    };
    println!("begun (txn {txn})");
    let mut closed = false;
    for line in std::io::stdin().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("hermit-cli: stdin: {e}");
                // hermit-lint: allow(error-swallow) the script already failed and we are exiting nonzero; the server also rolls back on disconnect
                let _ = client.rollback();
                std::process::exit(1);
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if closed {
            eprintln!("hermit-cli: statement after commit/rollback: `{line}`");
            std::process::exit(2);
        }
        let words: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let (stmt, args) = (words[0].as_str(), &words[1..]);
        let outcome = match stmt {
            "insert" if !args.is_empty() => {
                let row: Vec<Value> = args.iter().map(|s| parse_cell(s)).collect();
                client.insert(row).map(|tid| println!("inserted (tid {tid:#x})"))
            }
            "delete" if args.len() == 1 => match args[0].parse::<i64>() {
                Ok(pk) => client.delete(pk).map(|()| println!("deleted {pk}")),
                Err(_) => script_usage(client, line),
            },
            "query" => client.query(&parse_query(args)).map(|rows| print_rows(&rows)),
            "point" if args.len() == 2 => {
                match (args[0].parse::<usize>(), args[1].parse::<f64>()) {
                    (Ok(col), Ok(v)) => {
                        client.query(&Query::new().point(col, v)).map(|rows| print_rows(&rows))
                    }
                    _ => script_usage(client, line),
                }
            }
            "commit" if args.is_empty() => {
                closed = true;
                client.commit().map(|()| println!("committed"))
            }
            "rollback" if args.is_empty() => {
                closed = true;
                client.rollback().map(|()| println!("rolled back"))
            }
            _ => script_usage(client, line),
        };
        if let Err(e) = outcome {
            eprintln!("hermit-cli: {e}");
            if !closed {
                // hermit-lint: allow(error-swallow) best-effort cleanup on the error exit; the server rolls back open transactions on disconnect anyway
                let _ = client.rollback();
            }
            std::process::exit(1);
        }
    }
    if !closed {
        if let Err(e) = client.commit() {
            eprintln!("hermit-cli: commit failed: {e}");
            // hermit-lint: allow(error-swallow) commit already failed and its error is what we report; the rollback is best-effort cleanup
            let _ = client.rollback();
            std::process::exit(1);
        }
        println!("committed");
    }
    std::process::exit(0);
}

/// A malformed script statement: roll back and exit 2 (usage error), same
/// contract as a malformed command line.
fn script_usage(client: &mut HermitClient, line: &str) -> ! {
    eprintln!(
        "hermit-cli: bad txn statement: `{line}` (expected insert/delete/query/point/\
         commit/rollback)"
    );
    // hermit-lint: allow(error-swallow) usage error: exiting 2 regardless; the server rolls back open transactions on disconnect
    let _ = client.rollback();
    std::process::exit(2);
}
