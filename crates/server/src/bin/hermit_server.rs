//! `hermit-server`: serve a Hermit database over TCP.
//!
//! ```text
//! hermit-server [--addr HOST:PORT] [--data-dir DIR] [--mem-rows N]
//!               [--max-connections N] [--deadline-ms N] [--wal-sync-every N]
//!               [--read-timeout-ms N]
//! ```
//!
//! * `--data-dir DIR` — durable mode: open the checkpointed database at
//!   `DIR` (running recovery if needed), or create a fresh one with the
//!   default `pk/host/target` schema when the directory holds no catalog.
//!   Fresh databases get a baseline index on `host` and a Hermit index on
//!   `target` routed through it.
//! * `--mem-rows N` — in-memory demo mode (the default, with N=100000):
//!   synthetic `pk/host/target` rows with `host = 2·target`, same indexes.
//! * `--wal-sync-every N` — WAL commit batch (1 = every statement durable
//!   before it is acknowledged); durable mode only.
//!
//! Prints `listening on ADDR` once serving (scripts bind port 0 and parse
//! the line), then blocks until a client sends `Shutdown`.

use hermit_core::shared::{MaintenanceConfig, MaintenanceWorker, SharedDatabase};
use hermit_core::{Database, DurabilityConfig};
use hermit_server::{HermitServer, ServerConfig};
use hermit_storage::{ColumnDef, Schema, TidScheme, Value};
use std::path::{Path, PathBuf};
use std::time::Duration;

struct Args {
    addr: String,
    data_dir: Option<PathBuf>,
    mem_rows: usize,
    max_connections: usize,
    deadline_ms: Option<u64>,
    wal_sync_every: usize,
    read_timeout_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hermit-server [--addr HOST:PORT] [--data-dir DIR] [--mem-rows N] \
         [--max-connections N] [--deadline-ms N] [--wal-sync-every N] [--read-timeout-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        data_dir: None,
        mem_rows: 100_000,
        max_connections: 64,
        deadline_ms: Some(5_000),
        wal_sync_every: 64,
        read_timeout_ms: Some(60_000),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--data-dir" => args.data_dir = Some(PathBuf::from(value(&mut i))),
            "--mem-rows" => args.mem_rows = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-connections" => {
                args.max_connections = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                args.deadline_ms = (ms > 0).then_some(ms);
            }
            "--wal-sync-every" => {
                args.wal_sync_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--read-timeout-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                args.read_timeout_ms = (ms > 0).then_some(ms);
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn default_schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")])
}

/// Open-or-create the durable database at `dir`.
fn durable_db(dir: &Path, wal_sync_every: usize) -> Database {
    let config = DurabilityConfig { wal_sync_every, ..Default::default() };
    if dir.join(hermit_core::recovery::CATALOG_FILE).exists() {
        match Database::open(dir, &config) {
            Ok(db) => {
                eprintln!("recovered {} rows from {}", db.len(), dir.display());
                return db;
            }
            Err(e) => {
                eprintln!("hermit-server: cannot open {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    let mut db = match Database::create_durable(default_schema(), 0, dir, &config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("hermit-server: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    db.create_baseline_index(1, true).expect("host index");
    db.create_hermit_index(2, 1).expect("hermit index");
    // Make the index definitions durable before serving: they live in the
    // catalog, not the WAL.
    db.checkpoint(dir).expect("initial checkpoint");
    db
}

/// In-memory demo database: `host = 2·target`, both indexed.
fn mem_db(rows: usize) -> Database {
    let mut db = Database::new(default_schema(), 0, TidScheme::Physical);
    for i in 0..rows {
        let m = i as f64;
        db.insert(&[Value::Int(i as i64), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
    }
    db.create_baseline_index(1, true).expect("host index");
    db.create_hermit_index(2, 1).expect("hermit index");
    db
}

fn main() {
    let args = parse_args();
    let db = match &args.data_dir {
        Some(dir) => durable_db(dir, args.wal_sync_every.max(1)),
        None => mem_db(args.mem_rows),
    };
    let shared = SharedDatabase::new(db);
    let worker = MaintenanceWorker::start(shared.clone(), MaintenanceConfig::default());
    let config = ServerConfig {
        max_connections: args.max_connections,
        query_deadline: args.deadline_ms.map(Duration::from_millis),
        read_timeout: args.read_timeout_ms.map(Duration::from_millis),
        ..Default::default()
    };
    let server = match HermitServer::start(shared, Some(worker), config, args.addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hermit-server: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    server.wait();
    println!("shut down cleanly");
}
