#![forbid(unsafe_code)]
//! # hermit-server
//!
//! The wire-protocol serving front end: everything between a TCP socket
//! and [`hermit_core::SharedDatabase`].
//!
//! PRs 4–5 made the engine concurrently servable and crash-safe, but only
//! for code that links it. This crate is the difference between a library
//! and a *system*: a process boundary, an admission-controlled serving
//! loop, and an exporter for every observability counter the engine keeps.
//! Three layers, each usable alone:
//!
//! * [`proto`] — `hermit_proto`, the length-prefixed CRC-framed binary
//!   protocol. Pure encode/decode, shared by both sides and the torn-frame
//!   tests.
//! * [`server`] — [`HermitServer`]: thread-per-connection serving over
//!   `std::net::TcpListener`, bounded by `max_connections`, with per-query
//!   deadlines, per-plan-kind latency histograms, a `Stats` text exporter,
//!   and graceful shutdown (drain → stop the §4.4 worker → final
//!   checkpoint).
//! * [`client`] — [`HermitClient`]: the blocking request/response client
//!   `hermit-cli` and the bench harness drive.
//!
//! The two binaries (`hermit-server`, `hermit-cli`) are thin argv shells
//! over these layers; see the repository README's "Server & observability"
//! section for the frame layout and a session transcript.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, ClientError, ClientResult, HermitClient};
pub use proto::{ErrorCode, FaultClass, ProtoError, Request, Response, MAX_FRAME};
pub use server::{HermitServer, ServerConfig, ServerMetrics};
