//! Loopback integration: a real [`HermitServer`] on an ephemeral port,
//! exercised by real [`HermitClient`]s (and a few raw sockets speaking
//! deliberately damaged `hermit_proto`).
//!
//! Covers the serving loop end to end — queries against the planner,
//! DML through the concurrent write path, a multi-client race checked
//! against the in-process [`SharedDatabase`] oracle — and every
//! robustness case the wire can throw: mid-frame disconnects, hostile
//! lengths, CRC damage, structural garbage, admission overload, query
//! deadlines, and graceful shutdown with a final checkpoint.

use hermit_core::shared::{MaintenanceConfig, MaintenanceWorker, SharedDatabase};
use hermit_core::{Database, DurabilityConfig, Query};
use hermit_server::proto::{read_frame, write_frame};
use hermit_server::{
    ClientError, ErrorCode, HermitClient, HermitServer, Request, Response, ServerConfig, MAX_FRAME,
};
use hermit_storage::{ColumnDef, Schema, TidScheme, Value};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

const SEED_ROWS: i64 = 1_000;

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")])
}

/// `host = 2·target`, `target = pk` — disjoint pk regions are disjoint
/// target regions, so each racing client can verify its own slice.
fn row_for(pk: i64) -> Vec<Value> {
    let m = pk as f64;
    vec![Value::Int(pk), Value::Float(2.0 * m), Value::Float(m)]
}

/// Seeded in-memory database with the baseline + Hermit indexes.
fn seeded_db() -> Database {
    let db = Database::new(schema(), 0, TidScheme::Physical);
    for pk in 0..SEED_ROWS {
        db.insert(&row_for(pk)).unwrap();
    }
    let mut db = db;
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    db
}

/// Boot a server (no worker) over a fresh seeded database.
fn boot(config: ServerConfig) -> (HermitServer, SharedDatabase) {
    let shared = SharedDatabase::new(seeded_db());
    let server =
        HermitServer::start(shared.clone(), None, config, "127.0.0.1:0").expect("bind ephemeral");
    (server, shared)
}

fn connect(server: &HermitServer) -> HermitClient {
    let client = HermitClient::connect(server.local_addr()).expect("connect");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    client
}

/// Sorted pks of a TCP row set (pk is column 0 of the full row shape).
fn tcp_pks(rows: &[Vec<Value>]) -> Vec<i64> {
    let mut pks: Vec<i64> = rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(pk) => pk,
            ref other => panic!("pk column came back as {other:?}"),
        })
        .collect();
    pks.sort_unstable();
    pks
}

/// Sorted pks of a direct (in-process) execution — the oracle side.
fn oracle_pks(shared: &SharedDatabase, q: &Query) -> Vec<i64> {
    let result = shared.execute(q);
    let mut pks: Vec<i64> = result
        .rows
        .iter()
        .map(|&loc| shared.db().heap().value_f64(loc, 0).unwrap().unwrap() as i64)
        .collect();
    pks.sort_unstable();
    pks
}

#[test]
fn single_session_full_command_set() {
    let (server, _shared) = boot(ServerConfig::default());
    let mut c = connect(&server);

    // Point query through the Hermit route.
    let rows = c.query(&Query::new().point(2, 500.0)).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(500), Value::Float(1_000.0), Value::Float(500.0)]]);

    // Projection + limit survive the wire.
    let rows = c.query(&Query::new().range(2, 10.0, 20.0).select([0]).limit(3)).unwrap();
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.len() == 1));

    // DML: insert becomes visible, delete removes it.
    c.insert(row_for(7_777)).unwrap();
    assert_eq!(tcp_pks(&c.query(&Query::new().point(2, 7_777.0)).unwrap()), vec![7_777]);
    c.delete(7_777).unwrap();
    assert!(c.query(&Query::new().point(2, 7_777.0)).unwrap().is_empty());

    // Storage errors come back typed, connection stays usable.
    match c.delete(7_777) {
        Err(ClientError::Server { code: ErrorCode::Storage, .. }) => {}
        other => panic!("double delete: {other:?}"),
    }

    // EXPLAIN renders the engine's stable plan text.
    let plan = c.explain(&Query::new().range(2, 100.0, 200.0)).unwrap();
    assert!(plan.contains("Query Plan"), "unexpected EXPLAIN: {plan}");
    assert!(plan.contains("hermit route"), "target-column query must route: {plan}");

    // Checkpoint on an in-memory database is a typed NotDurable error.
    match c.checkpoint() {
        Err(ClientError::Server { code: ErrorCode::NotDurable, .. }) => {}
        other => panic!("checkpoint on mem db: {other:?}"),
    }

    // Stats: the engine + serving counters as stable text.
    let stats = c.stats().unwrap();
    for needle in [
        "hermit_connections_active 1",
        "hermit_rows 1000",
        "hermit_requests_total",
        "hermit_reorg_queue_depth",
        "hermit_outlier_share{column=\"2\"}",
        "hermit_query_count{plan=\"hermit\"}",
        "hermit_query_latency_us{plan=\"hermit\",quantile=\"0.5\"}",
        "hermit_query_latency_bucket{plan=\"hermit\",le=",
    ] {
        assert!(stats.contains(needle), "stats report missing `{needle}`:\n{stats}");
    }

    c.shutdown().unwrap();
    server.wait();
}

/// Four clients race inserts, deletes, and queries over TCP in disjoint
/// pk regions while the §4.4 worker reorganizes underneath; every
/// client's view of its own region stays exact at every step, and the
/// final state matches the in-process oracle query-for-query.
#[test]
fn racing_clients_agree_with_oracle() {
    const CLIENTS: i64 = 4;
    const OPS: i64 = 150;
    const BASE: i64 = 100_000;
    const REGION: i64 = 10_000;

    let shared = SharedDatabase::new(seeded_db());
    let worker = MaintenanceWorker::start(shared.clone(), MaintenanceConfig::default());
    let server =
        HermitServer::start(shared.clone(), Some(worker), ServerConfig::default(), "127.0.0.1:0")
            .expect("bind");

    crossbeam::thread::scope(|s| {
        for t in 0..CLIENTS {
            let server = &server;
            s.spawn(move |_| {
                let mut c = connect(server);
                let base = BASE + t * REGION;
                let mut live: Vec<i64> = Vec::new();
                for i in 0..OPS {
                    let pk = base + i;
                    c.insert(row_for(pk)).unwrap();
                    live.push(pk);
                    // Periodically delete the oldest survivor and verify
                    // the whole region through the server.
                    if i % 5 == 4 {
                        let gone = live.remove(0);
                        c.delete(gone).unwrap();
                    }
                    if i % 10 == 9 {
                        let q = Query::new()
                            .range(2, base as f64 - 0.5, (base + REGION) as f64 - 0.5);
                        let got = tcp_pks(&c.query(&q).unwrap());
                        let missing: Vec<i64> =
                            live.iter().filter(|pk| !got.contains(pk)).copied().collect();
                        let extra: Vec<i64> =
                            got.iter().filter(|pk| !live.contains(pk)).copied().collect();
                        assert_eq!(
                            got, live,
                            "client {t} region diverged at op {i}: missing {missing:?}, extra {extra:?}"
                        );
                    }
                }
            });
        }
    })
    .unwrap();

    // Quiesced: the server's view over TCP equals the in-process oracle
    // for every region and for the full table.
    let mut c = connect(&server);
    for t in 0..CLIENTS {
        let base = BASE + t * REGION;
        let q = Query::new().range(2, base as f64 - 0.5, (base + REGION) as f64 - 0.5);
        assert_eq!(tcp_pks(&c.query(&q).unwrap()), oracle_pks(&shared, &q));
    }
    let all = Query::new().range(2, -1.0, (BASE + CLIENTS * REGION) as f64);
    let got = tcp_pks(&c.query(&all).unwrap());
    assert_eq!(got, oracle_pks(&shared, &all));
    assert_eq!(got.len(), shared.db().len());

    c.shutdown().unwrap();
    server.wait();
}

/// A peer that dies mid-frame must not panic, hang, or poison the
/// server — the torn request is simply never applied.
#[test]
fn midframe_disconnect_is_harmless() {
    let (server, shared) = boot(ServerConfig::default());
    let before = shared.db().len();
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        // Declare a 100-byte insert, deliver 10, vanish.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        raw.write_all(&[0x02; 10]).unwrap();
        raw.flush().unwrap();
    } // dropped: RST/FIN mid-frame
      // The server keeps serving new clients, and nothing was applied.
    let mut c = connect(&server);
    assert_eq!(c.query(&Query::new().point(2, 1.0)).unwrap().len(), 1);
    assert_eq!(shared.db().len(), before, "a torn frame must not mutate the database");
    c.shutdown().unwrap();
    server.wait();
}

/// A hostile declared length gets one typed Protocol error, then the
/// connection closes — and the 4 GiB buffer is never allocated.
#[test]
fn oversized_frame_is_rejected_with_protocol_error() {
    let (server, _shared) = boot(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(&(u32::MAX).to_le_bytes()).unwrap();
    raw.write_all(&0u32.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw).unwrap().expect("one error frame");
    match Response::decode(&payload).unwrap() {
        Response::Error { code: ErrorCode::Protocol, message } => {
            assert!(message.contains("max"), "message should name the limit: {message}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
    assert!(read_frame(&mut raw).unwrap().is_none(), "connection must be closed after the error");
    server.stop();
}

/// A CRC-damaged frame cannot be resynchronized: one typed error, close.
#[test]
fn crc_mismatch_is_rejected_with_protocol_error() {
    let (server, _shared) = boot(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut payload = Vec::new();
    Request::Stats.encode(&mut payload);
    raw.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&0xBAD0_C0DEu32.to_le_bytes()).unwrap(); // wrong CRC
    raw.write_all(&payload).unwrap();
    raw.flush().unwrap();
    let resp = read_frame(&mut raw).unwrap().expect("one error frame");
    assert!(matches!(
        Response::decode(&resp).unwrap(),
        Response::Error { code: ErrorCode::Protocol, .. }
    ));
    assert!(read_frame(&mut raw).unwrap().is_none());
    server.stop();
}

/// Structural garbage inside a *valid* frame is answerable: the stream
/// is still in sync, so the server reports BadRequest and keeps serving
/// the same connection.
#[test]
fn malformed_payload_keeps_the_connection_usable() {
    let (server, _shared) = boot(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut raw, &[0x7F, 1, 2, 3]).unwrap(); // unknown tag, valid CRC
    let resp = read_frame(&mut raw).unwrap().expect("BadRequest frame");
    assert!(matches!(
        Response::decode(&resp).unwrap(),
        Response::Error { code: ErrorCode::BadRequest, .. }
    ));
    // Same socket, now a well-formed request: it must still be served.
    let mut scratch = Vec::new();
    hermit_server::proto::send_request(&mut raw, &Request::Stats, &mut scratch).unwrap();
    let resp = read_frame(&mut raw).unwrap().expect("stats frame");
    assert!(matches!(Response::decode(&resp).unwrap(), Response::Stats(_)));
    server.stop();
}

/// The MAX_FRAME constant is visible to clients so they can size
/// requests; a request-side frame at exactly the cap round-trips.
#[test]
fn admission_limit_rejects_with_capacity() {
    let (server, _shared) = boot(ServerConfig { max_connections: 1, ..Default::default() });
    // First client occupies the only slot (a served request proves it).
    let mut first = connect(&server);
    first.stats().unwrap();
    // Second connection gets one unsolicited Capacity error, then close.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let payload = read_frame(&mut raw).unwrap().expect("capacity frame");
    match Response::decode(&payload).unwrap() {
        Response::Error { code: ErrorCode::Capacity, message } => {
            assert!(message.contains("max_connections=1"), "{message}");
        }
        other => panic!("expected Capacity, got {other:?}"),
    }
    assert!(read_frame(&mut raw).unwrap().is_none());
    // The admitted client is unaffected; freeing its slot readmits.
    first.stats().unwrap();
    drop(first);
    std::thread::sleep(Duration::from_millis(50));
    let mut third = connect(&server);
    third.stats().unwrap();
    assert!(server.metrics().connections_rejected.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    server.stop();
}

/// With a zero deadline every query "finishes late": the result is
/// discarded, the client sees DeadlineExceeded, and the counter moves.
/// DML and Stats are not queries and keep working.
#[test]
fn zero_deadline_reports_deadline_exceeded() {
    let (server, _shared) =
        boot(ServerConfig { query_deadline: Some(Duration::ZERO), ..Default::default() });
    let mut c = connect(&server);
    match c.query(&Query::new().point(2, 1.0)) {
        Err(ClientError::Server { code: ErrorCode::DeadlineExceeded, message }) => {
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    c.insert(row_for(50_000)).unwrap(); // DML is unaffected
    let stats = c.stats().unwrap();
    assert!(
        stats.contains("hermit_query_deadline_exceeded 1"),
        "counter must record the discard:\n{stats}"
    );
    // The latency histogram still recorded the (completed) execution.
    assert!(stats.contains("hermit_query_count{plan=\"hermit\"} 1"), "{stats}");
    server.stop();
}

/// Requests arriving while the server drains get a typed ShuttingDown
/// error instead of a hang or a bare close.
#[test]
fn drain_reports_shutting_down_to_late_requests() {
    let (server, _shared) =
        boot(ServerConfig { drain_timeout: Duration::from_secs(5), ..Default::default() });
    let mut bystander = connect(&server);
    bystander.stats().unwrap(); // admitted and idle
    let mut closer = connect(&server);
    closer.shutdown().unwrap(); // ack received ⇒ stop flag is being raised
    std::thread::sleep(Duration::from_millis(200));
    match bystander.stats() {
        Err(ClientError::Server { code: ErrorCode::ShuttingDown, .. }) => {}
        // The drain may already have force-closed the socket under us.
        Err(ClientError::Proto(_)) => {}
        other => panic!("late request during drain: {other:?}"),
    }
    let addr = server.local_addr();
    server.wait();
    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
}

/// Durable serving end to end: rows inserted over TCP survive a
/// graceful shutdown (drain → worker stop → final checkpoint) and come
/// back through the ordinary recovery path — with nothing left in the
/// WAL to replay.
#[test]
fn graceful_shutdown_checkpoints_durable_state() {
    let dir = std::env::temp_dir().join(format!("hermit-server-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig { wal_sync_every: 1, ..Default::default() };

    let mut db = Database::create_durable(schema(), 0, &dir, &config).unwrap();
    db.create_baseline_index(1, true).unwrap();
    db.create_hermit_index(2, 1).unwrap();
    let shared = SharedDatabase::new(db);
    let worker = MaintenanceWorker::start(shared.clone(), MaintenanceConfig::default());
    let server =
        HermitServer::start(shared, Some(worker), ServerConfig::default(), "127.0.0.1:0").unwrap();

    let mut c = connect(&server);
    for pk in 0..50 {
        c.insert(row_for(pk)).unwrap();
    }
    c.delete(49).unwrap();
    // A live checkpoint mid-traffic must succeed on a durable database.
    c.checkpoint().unwrap();
    for pk in 50..60 {
        c.insert(row_for(pk)).unwrap();
    }
    c.shutdown().unwrap();
    server.wait();

    // Reopen: recovery sees the final checkpoint; the WAL holds nothing.
    let reopened = Database::open(&dir, &config).unwrap();
    assert_eq!(reopened.len(), 59);
    let q = Query::new().range(2, -0.5, 59.5);
    let result = reopened.execute(&q);
    let mut pks: Vec<i64> = result
        .rows
        .iter()
        .map(|&loc| reopened.heap().value_f64(loc, 0).unwrap().unwrap() as i64)
        .collect();
    pks.sort_unstable();
    assert_eq!(pks, (0..49).chain(50..60).collect::<Vec<i64>>());
    assert_eq!(reopened.wal_depth(), Some(0), "clean stop leaves nothing unreplayed");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `MAX_FRAME` is part of the public contract both sides size against.
#[test]
fn max_frame_is_exported_and_sane() {
    let max = MAX_FRAME;
    assert!((1 << 16..=1 << 24).contains(&max));
}
