//! Serving-path robustness under unreliable clients and networks.
//!
//! * A silent (stalled) client is reaped by the per-connection read
//!   timeout — counted, answered with [`ErrorCode::IdleTimeout`], and
//!   closed — while concurrent well-behaved clients keep being served.
//! * A [`HermitClient`] with retries enabled transparently survives a
//!   one-shot disconnect on an idempotent request: jittered backoff,
//!   reconnect, reissue — the caller just sees the rows.

use hermit_core::shared::SharedDatabase;
use hermit_core::{Database, Query};
use hermit_server::proto::read_frame;
use hermit_server::{ClientConfig, ErrorCode, HermitClient, HermitServer, Response, ServerConfig};
use hermit_storage::{ColumnDef, Schema, TidScheme, Value};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")])
}

fn boot(config: ServerConfig) -> HermitServer {
    let db = Database::new(schema(), 0, TidScheme::Physical);
    for pk in 0..500i64 {
        let m = pk as f64;
        db.insert(&[Value::Int(pk), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
    }
    HermitServer::start(SharedDatabase::new(db), None, config, "127.0.0.1:0")
        .expect("bind ephemeral")
}

#[test]
fn stalled_client_is_reaped_while_others_keep_being_served() {
    let config =
        ServerConfig { read_timeout: Some(Duration::from_millis(300)), ..ServerConfig::default() };
    let server = boot(config);

    // The silent client: connects, then never sends a byte.
    let stalled = TcpStream::connect(server.local_addr()).unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // A well-behaved client keeps querying straight through the reap.
    let mut live = HermitClient::connect(server.local_addr()).unwrap();
    let t0 = Instant::now();
    let mut served = 0u32;
    while t0.elapsed() < Duration::from_millis(700) {
        let rows = live.query(&Query::new().point(2, 42.0)).unwrap();
        assert_eq!(rows.len(), 1);
        served += 1;
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(served >= 10, "the live client must be served across the reap window");

    // The stalled connection got the typed goodbye and was closed.
    let payload = read_frame(&mut &stalled)
        .expect("reap response must arrive before the socket closes")
        .expect("expected an IdleTimeout frame, got EOF");
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::IdleTimeout),
        other => panic!("expected an IdleTimeout error, got {other:?}"),
    }
    assert!(
        matches!(read_frame(&mut &stalled), Ok(None) | Err(_)),
        "the reaped socket must be closed after the goodbye frame"
    );

    use std::sync::atomic::Ordering;
    assert!(
        server.metrics().connections_reaped.load(Ordering::Relaxed) >= 1,
        "the reap must be counted"
    );
    let stats = live.stats().unwrap();
    assert!(
        stats.lines().any(|l| {
            l.strip_prefix("hermit_connections_reaped ")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .is_some_and(|n| n >= 1)
        }),
        "stats must export the reap counter:\n{stats}"
    );
    server.stop();
}

/// A proxy that drops its first accepted connection (after the client has
/// committed to it), then faithfully pipes every later one to the real
/// server — the deterministic stand-in for a one-shot network blip.
fn one_shot_flaky_proxy(server_addr: std::net::SocketAddr) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let proxy_addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((first, _)) = listener.accept() {
            // Wait for the request bytes so the failure lands mid-call,
            // then cut the connection without answering.
            first.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let mut byte = [0u8; 1];
            let _ = std::io::Read::read(&mut &first, &mut byte);
            let _ = first.shutdown(Shutdown::Both);
        }
        while let Ok((client_side, _)) = listener.accept() {
            let Ok(server_side) = TcpStream::connect(server_addr) else { return };
            let c2 = client_side.try_clone().unwrap();
            let s2 = server_side.try_clone().unwrap();
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut &client_side, &mut &server_side);
                let _ = server_side.shutdown(Shutdown::Both);
            });
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut &s2, &mut &c2);
                let _ = c2.shutdown(Shutdown::Both);
            });
        }
    });
    proxy_addr
}

#[test]
fn client_retry_recovers_transparently_from_one_shot_disconnect() {
    let server = boot(ServerConfig::default());
    let proxy = one_shot_flaky_proxy(server.local_addr());

    let config = ClientConfig {
        retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        ..ClientConfig::default()
    };
    let mut client = HermitClient::connect_with(proxy, config).unwrap();

    // The first query rides the doomed connection; the retry loop must
    // reconnect through the proxy and reissue without the caller noticing.
    let rows = client.query(&Query::new().point(2, 7.0)).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(7), Value::Float(14.0), Value::Float(7.0)]]);
    assert!(client.retries() >= 1, "the blip must have cost at least one retry");

    // The healed connection keeps working without further retries.
    let before = client.retries();
    let rows = client.query(&Query::new().point(2, 9.0)).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(client.retries(), before, "a healthy connection must not retry");
    server.stop();
}

/// With retries disabled (the default), the same blip surfaces as a typed
/// retryable error — never a panic, never a hang.
#[test]
fn no_retry_surfaces_the_disconnect_as_a_typed_error() {
    let server = boot(ServerConfig::default());
    let proxy = one_shot_flaky_proxy(server.local_addr());

    let mut client = HermitClient::connect_with(proxy, ClientConfig::default()).unwrap();
    let err = client.query(&Query::new().point(2, 7.0)).unwrap_err();
    match err {
        hermit_server::ClientError::Proto(e) => {
            assert!(e.is_retryable(), "a cut connection must classify as retryable: {e}")
        }
        other => panic!("expected a transport error, got {other}"),
    }
    server.stop();
}
