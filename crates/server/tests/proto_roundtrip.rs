//! `hermit_proto` conformance: every message kind survives an
//! encode → frame → unframe → decode round trip, and no damaged byte
//! stream — torn at any offset, oversized, CRC-flipped, or structurally
//! garbage — escapes as anything but a typed [`ProtoError`].

use hermit_core::Query;
use hermit_server::proto::{read_frame, write_frame, ProtoError};
use hermit_server::{ErrorCode, Request, Response, MAX_FRAME};
use hermit_storage::Value;

/// One of every request kind, with the query shapes that stress the
/// optional fields (projection present/absent, limit present/absent,
/// zero and multi conjuncts).
fn all_requests() -> Vec<Request> {
    vec![
        Request::Query(Query::new()),
        Request::Query(Query::new().point(2, 42.0)),
        Request::Query(Query::new().range(1, -3.5, 9.25).range(3, 0.0, 1.0e12)),
        Request::Query(Query::new().range(2, 1.0, 2.0).select([0, 2]).limit(7)),
        Request::Insert(vec![Value::Int(i64::MIN), Value::Float(-0.0), Value::Null]),
        Request::Insert(vec![]),
        Request::Delete { pk: -1 },
        Request::Explain(Query::new().range(2, 5.0, 6.0).select([1])),
        Request::Checkpoint,
        Request::Stats,
        Request::Shutdown,
    ]
}

/// One of every response kind, including the edge shapes (empty row set,
/// ragged widths, empty strings, every error code).
fn all_responses() -> Vec<Response> {
    let mut out = vec![
        Response::Rows(vec![]),
        Response::Rows(vec![
            vec![Value::Int(1), Value::Float(2.5), Value::Null],
            vec![],
            vec![Value::Float(f64::MAX)],
        ]),
        Response::Inserted { tid: u64::MAX },
        Response::Deleted,
        Response::Explain(String::new()),
        Response::Explain("Query Plan [hermit route]\n  phase 1: …".into()),
        Response::Stats("hermit_rows 10\nhermit_pool_hits 3\n".into()),
        Response::Ok,
    ];
    for code in [
        ErrorCode::BadRequest,
        ErrorCode::Storage,
        ErrorCode::NotDurable,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Capacity,
        ErrorCode::ShuttingDown,
        ErrorCode::Protocol,
    ] {
        out.push(Response::Error { code, message: format!("{code:?} detail") });
    }
    out
}

fn frame_of(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, payload).unwrap();
    wire
}

#[test]
fn every_request_kind_round_trips() {
    let mut payload = Vec::new();
    for req in all_requests() {
        req.encode(&mut payload);
        let wire = frame_of(&payload);
        let unframed = read_frame(&mut wire.as_slice()).unwrap().expect("one frame");
        assert_eq!(unframed, payload);
        assert_eq!(Request::decode(&unframed).unwrap(), req, "round trip of {req:?}");
    }
}

#[test]
fn every_response_kind_round_trips() {
    let mut payload = Vec::new();
    for resp in all_responses() {
        resp.encode(&mut payload);
        let wire = frame_of(&payload);
        let unframed = read_frame(&mut wire.as_slice()).unwrap().expect("one frame");
        assert_eq!(Response::decode(&unframed).unwrap(), resp, "round trip of {resp:?}");
    }
}

/// Tearing the wire at *every* byte offset: offset 0 is the clean-EOF
/// case, every interior offset is `Truncated`, the full frame decodes.
#[test]
fn torn_frame_at_every_offset_is_truncated_never_a_panic() {
    let mut payload = Vec::new();
    for req in all_requests() {
        req.encode(&mut payload);
        let wire = frame_of(&payload);
        assert!(read_frame(&mut &wire[..0]).unwrap().is_none(), "empty stream is clean EOF");
        for cut in 1..wire.len() {
            match read_frame(&mut &wire[..cut]) {
                Err(ProtoError::Truncated) => {}
                other => panic!(
                    "cut at {cut}/{} of {req:?}: expected Truncated, got {other:?}",
                    wire.len()
                ),
            }
        }
        assert!(read_frame(&mut wire.as_slice()).unwrap().is_some());
    }
}

/// Tearing the *payload* at every offset (a valid frame around a short
/// body): decode must reject every strict prefix — a torn message can
/// never be mistaken for a complete one, because every kind either has a
/// fixed arity or carries explicit counts.
#[test]
fn torn_payload_at_every_offset_is_malformed() {
    let mut payload = Vec::new();
    for req in all_requests() {
        req.encode(&mut payload);
        for cut in 0..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "prefix {cut}/{} of {req:?} decoded",
                payload.len()
            );
        }
    }
    for resp in all_responses() {
        resp.encode(&mut payload);
        for cut in 0..payload.len() {
            assert!(
                Response::decode(&payload[..cut]).is_err(),
                "prefix {cut}/{} of {resp:?} decoded",
                payload.len()
            );
        }
    }
}

/// Trailing bytes after a structurally complete message are rejected —
/// a frame carries exactly one message.
#[test]
fn trailing_garbage_is_malformed() {
    let mut payload = Vec::new();
    for req in all_requests() {
        req.encode(&mut payload);
        payload.push(0x00);
        assert!(matches!(Request::decode(&payload), Err(ProtoError::Malformed(_))), "{req:?}");
    }
}

/// Flipping any single byte of a framed message must surface as a typed
/// error — the CRC covers the payload, and header damage lands on the
/// length checks. No flip may yield a successfully decoded frame.
#[test]
fn any_single_byte_flip_is_detected() {
    let mut payload = Vec::new();
    Request::Query(Query::new().range(2, 1.0, 2.0).limit(3)).encode(&mut payload);
    let wire = frame_of(&payload);
    for i in 0..wire.len() {
        let mut bad = wire.clone();
        bad[i] ^= 0x40;
        match read_frame(&mut bad.as_slice()) {
            Err(
                ProtoError::Truncated
                | ProtoError::Oversized { .. }
                | ProtoError::CrcMismatch
                | ProtoError::Io(_),
            ) => {}
            Ok(Some(p)) => {
                panic!("flip at byte {i} produced an accepted frame ({} bytes)", p.len())
            }
            other => panic!("flip at byte {i}: unexpected {other:?}"),
        }
    }
}

#[test]
fn oversized_declared_length_is_rejected_before_payload() {
    for declared in [MAX_FRAME as u32 + 1, u32::MAX] {
        let mut wire = Vec::new();
        wire.extend_from_slice(&declared.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        // No payload bytes at all: rejection must come from the header.
        match read_frame(&mut wire.as_slice()) {
            Err(ProtoError::Oversized { declared: got }) => assert_eq!(got, declared as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
    // Exactly MAX_FRAME is legal.
    let payload = vec![0xAB; MAX_FRAME];
    let wire = frame_of(&payload);
    assert_eq!(read_frame(&mut wire.as_slice()).unwrap().unwrap(), payload);
}

/// Structurally garbage payloads (valid framing, junk inside) must come
/// back as `Malformed`, never panic or allocate absurdly.
#[test]
fn garbage_payloads_are_malformed() {
    let cases: Vec<Vec<u8>> = vec![
        vec![],                                            // no tag at all
        vec![0x00],                                        // unknown request tag
        vec![0xFF],                                        // unknown tag, high bit set
        vec![0x01, 0xFF, 0xFF],                            // query declaring 65535 conjuncts
        vec![0x02, 0x10, 0x00, 1, 1, 2, 3],                // insert: 16 cells, one short one
        vec![0x02, 0x01, 0x00, 9, 0, 0, 0, 0, 0, 0, 0, 0], // bad cell tag 9
        vec![0x03, 1, 2, 3],                               // delete with a short pk
    ];
    for payload in cases {
        assert!(
            matches!(Request::decode(&payload), Err(ProtoError::Malformed(_))),
            "payload {payload:?} must be Malformed"
        );
    }
    // Response-side: a hostile row count larger than the payload could
    // ever hold must be rejected before the row loop allocates.
    let mut hostile = vec![0x81];
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(Response::decode(&hostile), Err(ProtoError::Malformed(_))));
    // And an unknown error code.
    let mut bad_code = vec![0x87];
    bad_code.extend_from_slice(&999u16.to_le_bytes());
    bad_code.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(Response::decode(&bad_code), Err(ProtoError::Malformed(_))));
}

/// A deterministic keyed LCG "fuzzer": a few thousand pseudo-random byte
/// strings through both decoders must never panic (errors are fine).
#[test]
fn random_bytes_never_panic_the_decoders() {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u8
    };
    for round in 0..4_000 {
        let len = round % 61;
        let mut payload = Vec::with_capacity(len + 1);
        // Bias the first byte toward real tags so decoding gets past it.
        payload.push([0x01, 0x02, 0x81, 0x84, 0x87, next()][round % 6]);
        for _ in 0..len {
            payload.push(next());
        }
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
}
