//! Deterministic query generators for the selectivity sweeps.
//!
//! The evaluation sweeps range-query *selectivity* (fraction of the value
//! domain covered by the predicate) from 0.01% to 10% depending on the
//! workload, plus point lookups. The generator draws predicate lower
//! bounds uniformly and sizes the range as `selectivity × domain width`,
//! which matches the paper's setup for uniformly-distributed target
//! columns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded generator of range / point predicates over a value domain.
#[derive(Debug)]
pub struct QueryGen {
    rng: StdRng,
    lo: f64,
    hi: f64,
}

impl QueryGen {
    /// Generator over `[lo, hi]`.
    pub fn new(domain: (f64, f64), seed: u64) -> Self {
        assert!(domain.0 <= domain.1, "inverted domain");
        QueryGen { rng: StdRng::seed_from_u64(seed), lo: domain.0, hi: domain.1 }
    }

    /// Next range predicate covering `selectivity` of the domain
    /// (`0 < selectivity <= 1`).
    pub fn range(&mut self, selectivity: f64) -> (f64, f64) {
        let width = (self.hi - self.lo) * selectivity.clamp(0.0, 1.0);
        let start_max = (self.hi - width).max(self.lo);
        let lb = if start_max > self.lo { self.rng.gen_range(self.lo..start_max) } else { self.lo };
        (lb, lb + width)
    }

    /// Batch of range predicates.
    pub fn ranges(&mut self, selectivity: f64, count: usize) -> Vec<(f64, f64)> {
        (0..count).map(|_| self.range(selectivity)).collect()
    }

    /// Next point predicate, uniform over the domain.
    pub fn point(&mut self) -> f64 {
        if self.hi > self.lo {
            self.rng.gen_range(self.lo..self.hi)
        } else {
            self.lo
        }
    }

    /// Batch of point predicates.
    pub fn points(&mut self, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_have_requested_width() {
        let mut g = QueryGen::new((0.0, 1_000.0), 1);
        for (lb, ub) in g.ranges(0.05, 100) {
            assert!((ub - lb - 50.0).abs() < 1e-9, "width must be 5% of domain");
            assert!(lb >= 0.0 && ub <= 1_000.0 + 1e-9);
        }
    }

    #[test]
    fn points_stay_in_domain() {
        let mut g = QueryGen::new((-5.0, 5.0), 2);
        for p in g.points(1_000) {
            assert!((-5.0..5.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = QueryGen::new((0.0, 100.0), 9).ranges(0.1, 10);
        let b: Vec<_> = QueryGen::new((0.0, 100.0), 9).ranges(0.1, 10);
        assert_eq!(a, b);
        let c: Vec<_> = QueryGen::new((0.0, 100.0), 10).ranges(0.1, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_domain_and_full_selectivity() {
        let mut g = QueryGen::new((5.0, 5.0), 3);
        assert_eq!(g.range(0.5), (5.0, 5.0));
        assert_eq!(g.point(), 5.0);
        let mut g = QueryGen::new((0.0, 10.0), 3);
        let (lb, ub) = g.range(1.0);
        assert_eq!((lb, ub), (0.0, 10.0));
        // Over-unity selectivity clamps.
        let (lb, ub) = g.range(5.0);
        assert_eq!((lb, ub), (0.0, 10.0));
    }
}
