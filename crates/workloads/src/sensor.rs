//! The Sensor application (Appendix A).
//!
//! Chemical gas-concentration monitoring: a timestamp, 16 sensor-reading
//! columns, and their average — 18 columns. Each sensor responds to the
//! same underlying gas concentration through its own *non-linear* (but
//! monotone) response curve, so every sensor↔average pair is a non-linear
//! correlation — the case that forces TRS-Tree to tier its regressions
//! (Fig. 6's "challenging" workload).
//!
//! Pre-existing indexes: primary on `TIME`, baseline on the average column.
//! The experiments index the individual sensor columns (Hermit routes them
//! to the average column's index).

use hermit_core::Database;
use hermit_storage::{ColumnDef, Schema, TidScheme, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Sensor workload.
#[derive(Debug, Clone, Copy)]
pub struct SensorConfig {
    /// Number of rows (the paper stores 4,208,260).
    pub tuples: usize,
    /// Number of sensors (the paper uses 16).
    pub sensors: usize,
    /// Per-reading measurement-noise amplitude relative to signal scale.
    pub noise_amplitude: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig { tuples: 100_000, sensors: 16, noise_amplitude: 0.002, seed: 11 }
    }
}

impl SensorConfig {
    /// Column id of sensor `i`'s reading.
    pub fn sensor_col(&self, i: usize) -> usize {
        1 + i
    }

    /// Column id of the average-reading column (the host).
    pub fn avg_col(&self) -> usize {
        1 + self.sensors
    }

    /// Total column count (18 at paper scale).
    pub fn width(&self) -> usize {
        2 + self.sensors
    }
}

/// Sensor `i`'s response to concentration `x ∈ [0, 10]`: a saturating
/// power-law with per-sensor gain and exponent — monotone, non-linear,
/// different per sensor.
///
/// Monotonicity requires `e + (e−1)·s·x/20 > 0` over the domain; with the
/// constants below that holds for every sensor index up to 55 (the paper
/// uses 16). `build_sensor` validates the config once up front.
fn response(sensor: usize, x: f64) -> f64 {
    let gain = 50.0 + 20.0 * sensor as f64;
    let exponent = 0.5 + 0.12 * (sensor % 7) as f64;
    let saturation = 1.0 + 0.02 * sensor as f64;
    gain * x.powf(exponent) / (1.0 + saturation * x / 20.0)
}

/// Generate the Sensor table with primary index on `TIME` and a baseline
/// index on the average column.
pub fn build_sensor(config: &SensorConfig, scheme: TidScheme) -> Database {
    assert!(config.sensors < 56, "response() is only monotone for sensor indices < 56");
    let mut defs = Vec::with_capacity(config.width());
    defs.push(ColumnDef::int("time"));
    for i in 0..config.sensors {
        defs.push(ColumnDef::float(format!("sensor_{i}")));
    }
    defs.push(ColumnDef::float("avg"));
    let schema = Schema::new(defs);
    let mut db = Database::new(schema, 0, scheme);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // The latent gas concentration drifts as a bounded random walk.
    let mut concentration: f64 = rng.gen_range(1.0..9.0);
    let mut row: Vec<Value> = Vec::with_capacity(config.width());
    for t in 0..config.tuples {
        concentration = (concentration + rng.gen_range(-0.05..0.05)).clamp(0.05, 10.0);
        row.clear();
        row.push(Value::Int(t as i64));
        let mut sum = 0.0;
        for i in 0..config.sensors {
            let clean = response(i, concentration);
            let reading =
                clean * (1.0 + rng.gen_range(-config.noise_amplitude..=config.noise_amplitude));
            sum += reading;
            row.push(Value::Float(reading));
        }
        row.push(Value::Float(sum / config.sensors as f64));
        db.insert(&row).expect("sensor row insert");
    }

    db.create_baseline_index(config.avg_col(), true).expect("avg index");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_core::RangePredicate;
    use hermit_stats::{pearson, spearman};

    fn small() -> SensorConfig {
        SensorConfig { tuples: 20_000, ..Default::default() }
    }

    #[test]
    fn schema_shape_matches_paper() {
        let cfg = SensorConfig::default();
        assert_eq!(cfg.width(), 18, "paper: 18 columns at 16 sensors");
        let cfg = small();
        let db = build_sensor(&cfg, TidScheme::Physical);
        assert_eq!(db.len(), 20_000);
        assert!(db.index(cfg.avg_col()).is_some(), "avg column must carry an index");
        assert!(db.index(cfg.sensor_col(0)).is_none());
    }

    #[test]
    fn sensors_monotone_in_average_but_nonlinear() {
        let cfg = SensorConfig { noise_amplitude: 0.0, ..small() };
        let db = build_sensor(&cfg, TidScheme::Physical);
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let sensor = table.column(cfg.sensor_col(3)).unwrap();
        let avg = table.column(cfg.avg_col()).unwrap();
        let xs: Vec<f64> = (0..table.total_rows()).map(|i| sensor.get_f64(i).unwrap()).collect();
        let ys: Vec<f64> = (0..table.total_rows()).map(|i| avg.get_f64(i).unwrap()).collect();
        let s = spearman(&xs, &ys);
        let p = pearson(&xs, &ys);
        assert!(s > 0.999, "noiseless response must be monotone in avg, spearman = {s}");
        assert!(p < 0.99999, "response must not be exactly linear, pearson = {p}");
    }

    #[test]
    fn response_curves_differ_across_sensors() {
        let at5: Vec<f64> = (0..16).map(|i| response(i, 5.0)).collect();
        let mut uniq = at5.clone();
        uniq.sort_by(|a, b| a.total_cmp(b));
        uniq.dedup();
        assert_eq!(uniq.len(), 16, "each sensor needs its own curve");
    }

    #[test]
    fn end_to_end_hermit_on_sensor() {
        let cfg = small();
        let mut db = build_sensor(&cfg, TidScheme::Physical);
        db.create_hermit_index(cfg.sensor_col(5), cfg.avg_col()).unwrap();
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let (lo, hi) = table.stats(cfg.sensor_col(5)).unwrap().range().unwrap();
        let width = hi - lo;
        let (qlo, qhi) = (lo + 0.4 * width, lo + 0.45 * width);
        drop(table); // release the heap latch before the query takes index latches
        let r = db.lookup_range(RangePredicate::range(cfg.sensor_col(5), qlo, qhi), None);
        // Exactness vs a scan.
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let col = table.column(cfg.sensor_col(5)).unwrap();
        let expected = (0..table.total_rows())
            .filter(|&i| col.get_f64(i).is_some_and(|v| (qlo..=qhi).contains(&v)))
            .count();
        assert_eq!(r.rows.len(), expected);
        assert!(expected > 0, "the query band should not be empty");
    }

    #[test]
    fn hermit_index_is_succinct_on_sensor() {
        let cfg = small();
        let mut db = build_sensor(&cfg, TidScheme::Physical);
        db.create_hermit_index(cfg.sensor_col(0), cfg.avg_col()).unwrap();
        let trs_bytes = db.index(cfg.sensor_col(0)).unwrap().memory_bytes();
        let host_bytes = db.index(cfg.avg_col()).unwrap().memory_bytes();
        assert!(
            trs_bytes * 5 < host_bytes,
            "TRS-Tree ({trs_bytes}) must be well under the B+-tree ({host_bytes})"
        );
    }
}
