//! The Synthetic application (Appendix A).
//!
//! One table with four 8-byte numeric columns `colA, colB, colC, colD`.
//! `colB` is generated from `colC` by a correlation function
//! (`colB = Fn(colC)`) — Linear or Sigmoid — with a configurable
//! percentage of uniformly-distributed noise injected into `colB`. A
//! primary index exists on `colA` and a secondary (host) index on `colB`;
//! the experiments build the index under test on `colC`.

use hermit_core::Database;
use hermit_storage::{ColumnDef, Schema, TidScheme, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Correlation function family from the paper's Synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationKind {
    /// `colB = 2·colC + 3`.
    Linear,
    /// `colB = 10⁶ / (1 + e^{-(colC − n/2) / (n/20)})` — the polynomial-ish
    /// S-curve the paper uses to stress tiered fitting.
    Sigmoid,
}

impl CorrelationKind {
    /// Label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            CorrelationKind::Linear => "linear",
            CorrelationKind::Sigmoid => "sigmoid",
        }
    }
}

/// Configuration for the Synthetic workload.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of tuples (the paper uses up to 20 million).
    pub tuples: usize,
    /// Correlation function from `colC` to `colB`.
    pub correlation: CorrelationKind,
    /// Fraction of tuples whose `colB` is replaced with uniform noise
    /// (the paper's default is 0.01 = 1%).
    pub noise_fraction: f64,
    /// Number of extra columns (beyond colD), each correlated to `colB`,
    /// used by the many-indexes experiments (Figs. 20/22).
    pub extra_columns: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            tuples: 100_000,
            correlation: CorrelationKind::Linear,
            noise_fraction: 0.01,
            extra_columns: 0,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// Domain of `colC`: uniform over `[0, tuples)`.
    pub fn target_domain(&self) -> (f64, f64) {
        (0.0, self.tuples as f64)
    }

    /// Apply the correlation function to a target value.
    pub fn correlate(&self, c: f64) -> f64 {
        let n = self.tuples as f64;
        match self.correlation {
            CorrelationKind::Linear => 2.0 * c + 3.0,
            CorrelationKind::Sigmoid => {
                let mid = n / 2.0;
                let scale = n / 20.0;
                1.0e6 / (1.0 + (-(c - mid) / scale).exp())
            }
        }
    }

    /// Range of `colB` implied by the correlation (before noise).
    pub fn host_domain(&self) -> (f64, f64) {
        match self.correlation {
            CorrelationKind::Linear => (3.0, 2.0 * self.tuples as f64 + 3.0),
            CorrelationKind::Sigmoid => (0.0, 1.0e6),
        }
    }
}

/// Column ids of the Synthetic schema.
pub mod cols {
    /// Primary key.
    pub const COL_A: usize = 0;
    /// Host column (`colB = Fn(colC)` + noise); carries the existing index.
    pub const COL_B: usize = 1;
    /// Target column the experiments index.
    pub const COL_C: usize = 2;
    /// Payload column fetched by queries.
    pub const COL_D: usize = 3;
    /// First extra correlated column (Figs. 20/22).
    pub const EXTRA_BASE: usize = 4;
}

/// Generate the Synthetic table and wrap it in a [`Database`] with the
/// pre-existing indexes (primary on `colA`, baseline host index on `colB`).
/// The index under test on `colC` (and on extra columns) is left to the
/// caller — that is the experiment.
pub fn build_synthetic(config: &SyntheticConfig, scheme: TidScheme) -> Database {
    let mut defs = vec![
        ColumnDef::int("colA"),
        ColumnDef::float("colB"),
        ColumnDef::float("colC"),
        ColumnDef::float("colD"),
    ];
    for i in 0..config.extra_columns {
        defs.push(ColumnDef::float(format!("colX{i}")));
    }
    let schema = Schema::new(defs);
    let mut db = Database::new(schema, cols::COL_A, scheme);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (host_lo, host_hi) = config.host_domain();

    let mut row: Vec<Value> = Vec::with_capacity(4 + config.extra_columns);
    for i in 0..config.tuples {
        let c = rng.gen_range(0.0..config.tuples as f64);
        let noisy = config.noise_fraction > 0.0 && rng.gen_bool(config.noise_fraction);
        let b = if noisy {
            // Uniform noise across (an extended copy of) the host domain,
            // so outliers scatter everywhere rather than clustering.
            rng.gen_range(host_lo..host_hi * 2.0 + 1.0)
        } else {
            config.correlate(c)
        };
        row.clear();
        row.push(Value::Int(i as i64));
        row.push(Value::Float(b));
        row.push(Value::Float(c));
        row.push(Value::Float(rng.gen_range(0.0..1.0e6)));
        for j in 0..config.extra_columns {
            // Extra columns correlate linearly to colB with distinct slopes
            // (Fig. 20: "all these newly added columns are correlated to
            // colB").
            row.push(Value::Float(b * (j as f64 + 1.5) + j as f64 * 10.0));
        }
        db.insert(&row).expect("synthetic row insert");
    }

    db.create_baseline_index(cols::COL_B, true).expect("host index on colB");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_core::RangePredicate;

    #[test]
    fn generates_requested_cardinality() {
        let cfg = SyntheticConfig { tuples: 5_000, ..Default::default() };
        let db = build_synthetic(&cfg, TidScheme::Physical);
        assert_eq!(db.len(), 5_000);
        assert!(db.index(cols::COL_B).is_some(), "host index must exist");
        assert!(db.index(cols::COL_C).is_none(), "target index is the experiment's job");
    }

    #[test]
    fn linear_correlation_holds_for_non_noise() {
        let cfg = SyntheticConfig { tuples: 2_000, noise_fraction: 0.0, ..Default::default() };
        let db = build_synthetic(&cfg, TidScheme::Physical);
        let heap = db.heap();
        let mut checked = 0;
        for loc in match heap {
            hermit_core::Heap::Mem(t) => t.read().scan().collect::<Vec<_>>(),
            _ => unreachable!(),
        } {
            let b = heap.value_f64(loc, cols::COL_B).unwrap().unwrap();
            let c = heap.value_f64(loc, cols::COL_C).unwrap().unwrap();
            assert!((b - (2.0 * c + 3.0)).abs() < 1e-9);
            checked += 1;
        }
        assert_eq!(checked, 2_000);
    }

    #[test]
    fn sigmoid_correlation_is_monotone_bounded() {
        let cfg = SyntheticConfig {
            tuples: 10_000,
            correlation: CorrelationKind::Sigmoid,
            noise_fraction: 0.0,
            ..Default::default()
        };
        assert!(cfg.correlate(0.0) < cfg.correlate(5_000.0));
        assert!(cfg.correlate(5_000.0) < cfg.correlate(10_000.0));
        assert!(cfg.correlate(10_000.0) <= 1.0e6);
        assert!(cfg.correlate(0.0) >= 0.0);
    }

    #[test]
    fn noise_fraction_roughly_respected() {
        let cfg = SyntheticConfig { tuples: 20_000, noise_fraction: 0.05, ..Default::default() };
        let db = build_synthetic(&cfg, TidScheme::Physical);
        let heap = db.heap();
        let mut noisy = 0;
        for loc in match heap {
            hermit_core::Heap::Mem(t) => t.read().scan().collect::<Vec<_>>(),
            _ => unreachable!(),
        } {
            let b = heap.value_f64(loc, cols::COL_B).unwrap().unwrap();
            let c = heap.value_f64(loc, cols::COL_C).unwrap().unwrap();
            if (b - cfg.correlate(c)).abs() > 1e-6 {
                noisy += 1;
            }
        }
        let frac = noisy as f64 / 20_000.0;
        assert!((0.03..=0.07).contains(&frac), "expected ~5% noise, got {:.1}%", frac * 100.0);
    }

    #[test]
    fn extra_columns_generated_and_correlated() {
        let cfg = SyntheticConfig {
            tuples: 1_000,
            noise_fraction: 0.0,
            extra_columns: 3,
            ..Default::default()
        };
        let db = build_synthetic(&cfg, TidScheme::Physical);
        assert_eq!(db.heap().schema().width(), 7);
        let heap = db.heap();
        let loc = match heap {
            hermit_core::Heap::Mem(t) => t.read().scan().next().unwrap(),
            _ => unreachable!(),
        };
        let b = heap.value_f64(loc, cols::COL_B).unwrap().unwrap();
        let x0 = heap.value_f64(loc, cols::EXTRA_BASE).unwrap().unwrap();
        assert!((x0 - b * 1.5).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_hermit_on_synthetic() {
        let cfg = SyntheticConfig { tuples: 20_000, ..Default::default() };
        let mut db = build_synthetic(&cfg, TidScheme::Logical);
        db.create_hermit_index(cols::COL_C, cols::COL_B).unwrap();
        let r = db.lookup_range(RangePredicate::range(cols::COL_C, 1_000.0, 1_200.0), None);
        // colC is uniform over [0, 20000): expect ≈ 200 rows (1% selectivity).
        assert!((150..=260).contains(&r.rows.len()), "expected ≈200 rows, got {}", r.rows.len());
        // Exactness: every returned row satisfies the predicate.
        for &loc in &r.rows {
            let c = db.heap().value_f64(loc, cols::COL_C).unwrap().unwrap();
            assert!((1_000.0..=1_200.0).contains(&c));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = SyntheticConfig { tuples: 500, ..Default::default() };
        let a = build_synthetic(&cfg, TidScheme::Physical);
        let b = build_synthetic(&cfg, TidScheme::Physical);
        let (ha, hb) = (a.heap(), b.heap());
        for loc in match ha {
            hermit_core::Heap::Mem(t) => t.read().scan().collect::<Vec<_>>(),
            _ => unreachable!(),
        } {
            assert_eq!(ha.get(loc).unwrap(), hb.get(loc).unwrap());
        }
    }
}
