//! The Stock application (Appendix A).
//!
//! A wide table of daily prices for many stocks: one `TIME` column plus a
//! `(low, high)` pair per stock — 201 columns at the paper's 100 stocks.
//! Each pair forms a near-linear correlation (`high ≈ low · (1 + spread)`),
//! with two real-world wrinkles the paper calls out:
//!
//! * occasional *jumps* where the two prices diverge by over 50% in a day
//!   (the PG&E example) — these become TRS-Tree outliers;
//! * missing readings stored as NULL.
//!
//! Prices follow a geometric random walk, which also reproduces the
//! DJ-vs-S&P shape of Fig. 26 when two stocks share a market factor.
//!
//! Pre-existing indexes: primary on `TIME`, baseline on every *low* column.
//! The experiments index the *high* columns (Hermit routes them to the
//! corresponding low column).

use hermit_core::Database;
use hermit_storage::{ColumnDef, Schema, TidScheme, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Stock workload.
#[derive(Debug, Clone, Copy)]
pub struct StockConfig {
    /// Number of stocks (the paper stores 100).
    pub stocks: usize,
    /// Number of trading days (the paper stores >15,000 — 60 years).
    pub days: usize,
    /// Probability of a one-day jump that decorrelates high from low.
    pub jump_probability: f64,
    /// Probability a day's readings are missing (NULL).
    pub null_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            stocks: 100,
            days: 15_000,
            jump_probability: 0.002,
            null_probability: 0.01,
            seed: 7,
        }
    }
}

impl StockConfig {
    /// Column id of stock `i`'s *low* price (the host column).
    pub fn low_col(&self, stock: usize) -> usize {
        1 + stock * 2
    }

    /// Column id of stock `i`'s *high* price (the target column).
    pub fn high_col(&self, stock: usize) -> usize {
        2 + stock * 2
    }

    /// Total column count (`1 + 2·stocks`; 201 at paper scale).
    pub fn width(&self) -> usize {
        1 + 2 * self.stocks
    }
}

/// Generate the Stock table with primary index on `TIME` and baseline
/// indexes on every low column (the pre-existing indexes of Appendix A).
pub fn build_stock(config: &StockConfig, scheme: TidScheme) -> Database {
    let mut defs = Vec::with_capacity(config.width());
    defs.push(ColumnDef::int("time"));
    for s in 0..config.stocks {
        defs.push(ColumnDef::float_null(format!("low_{s}")));
        defs.push(ColumnDef::float_null(format!("high_{s}")));
    }
    let schema = Schema::new(defs);
    let mut db = Database::new(schema, 0, scheme);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Per-stock price state (geometric random walks around a shared market
    // factor, so stock pairs correlate like DJ vs S&P in Fig. 26).
    let mut prices: Vec<f64> = (0..config.stocks).map(|_| rng.gen_range(20.0..200.0)).collect();
    let betas: Vec<f64> = (0..config.stocks).map(|_| rng.gen_range(0.5..1.5)).collect();

    let mut row: Vec<Value> = Vec::with_capacity(config.width());
    for day in 0..config.days {
        let market = rng.gen_range(-0.01..0.01);
        row.clear();
        row.push(Value::Int(day as i64));
        for s in 0..config.stocks {
            let idio = rng.gen_range(-0.015..0.015);
            prices[s] = (prices[s] * (1.0 + betas[s] * market + idio)).max(0.5);
            if rng.gen_bool(config.null_probability) {
                row.push(Value::Null);
                row.push(Value::Null);
                continue;
            }
            let spread = rng.gen_range(0.008..0.016);
            let (low, high) = if rng.gen_bool(config.jump_probability) {
                // A PG&E-style day: high diverges by 50–120% from low.
                let burst = rng.gen_range(0.5..1.2);
                (prices[s] * (1.0 - spread), prices[s] * (1.0 + burst))
            } else {
                (prices[s] * (1.0 - spread), prices[s] * (1.0 + spread))
            };
            row.push(Value::Float(low));
            row.push(Value::Float(high));
        }
        db.insert(&row).expect("stock row insert");
    }

    // Pre-existing indexes: one baseline index per low column.
    for s in 0..config.stocks {
        db.create_baseline_index(config.low_col(s), true).expect("low index");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_core::RangePredicate;
    use hermit_stats::pearson;

    fn small() -> StockConfig {
        StockConfig { stocks: 5, days: 2_000, ..Default::default() }
    }

    #[test]
    fn schema_shape_matches_paper() {
        let cfg = StockConfig::default();
        assert_eq!(cfg.width(), 201, "paper: 201 columns at 100 stocks");
        let cfg = small();
        let db = build_stock(&cfg, TidScheme::Physical);
        assert_eq!(db.heap().schema().width(), 11);
        assert_eq!(db.len(), 2_000);
        for s in 0..cfg.stocks {
            assert!(db.index(cfg.low_col(s)).is_some(), "low_{s} must carry an index");
            assert!(db.index(cfg.high_col(s)).is_none());
        }
    }

    #[test]
    fn high_low_strongly_correlated() {
        let cfg = small();
        let db = build_stock(&cfg, TidScheme::Physical);
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let lows = table.column(cfg.low_col(0)).unwrap();
        let highs = table.column(cfg.high_col(0)).unwrap();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..table.total_rows() {
            if let (Some(l), Some(h)) = (lows.get_f64(i), highs.get_f64(i)) {
                xs.push(l);
                ys.push(h);
            }
        }
        assert!(xs.len() > 1_800, "most days have readings");
        let r = pearson(&xs, &ys);
        assert!(r > 0.95, "high/low must be near-linear, pearson = {r}");
    }

    #[test]
    fn jumps_exist_and_decorrelate() {
        let cfg = StockConfig { stocks: 3, days: 10_000, jump_probability: 0.01, ..small() };
        let db = build_stock(&cfg, TidScheme::Physical);
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let lows = table.column(cfg.low_col(0)).unwrap();
        let highs = table.column(cfg.high_col(0)).unwrap();
        let mut jumps = 0;
        for i in 0..table.total_rows() {
            if let (Some(l), Some(h)) = (lows.get_f64(i), highs.get_f64(i)) {
                if h > l * 1.5 {
                    jumps += 1;
                }
            }
        }
        assert!(jumps > 20, "expected jump days, saw {jumps}");
    }

    #[test]
    fn nulls_present_at_configured_rate() {
        let cfg = StockConfig { null_probability: 0.1, ..small() };
        let db = build_stock(&cfg, TidScheme::Physical);
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let nulls = table.stats(cfg.low_col(0)).unwrap().null_count();
        let frac = nulls as f64 / 2_000.0;
        assert!((0.07..=0.13).contains(&frac), "null rate {frac}");
    }

    #[test]
    fn end_to_end_hermit_on_stock() {
        let cfg = small();
        let mut db = build_stock(&cfg, TidScheme::Physical);
        // Index high_0 through its low_0 host.
        db.create_hermit_index(cfg.high_col(0), cfg.low_col(0)).unwrap();
        // Query: days when high_0 is within a band around its median.
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let stats = table.stats(cfg.high_col(0)).unwrap().clone();
        let (lo, hi) = stats.range().unwrap();
        let mid = (lo + hi) / 2.0;
        drop(table); // release the heap latch before the query takes index latches
        let r = db.lookup_range(RangePredicate::range(cfg.high_col(0), mid * 0.9, mid * 1.1), None);
        // Exactness check against a scan.
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let col = table.column(cfg.high_col(0)).unwrap();
        let expected = (0..table.total_rows())
            .filter(|&i| col.get_f64(i).is_some_and(|v| v >= mid * 0.9 && v <= mid * 1.1))
            .count();
        assert_eq!(r.rows.len(), expected, "Hermit must return exactly the scan's rows");
    }

    #[test]
    fn time_conjunct_supported() {
        let cfg = small();
        let mut db = build_stock(&cfg, TidScheme::Physical);
        db.create_hermit_index(cfg.high_col(1), cfg.low_col(1)).unwrap();
        let hermit_core::Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let (lo, hi) = table.stats(cfg.high_col(1)).unwrap().range().unwrap();
        drop(table); // release the heap latch before the query takes index latches
        let r = db.lookup_range(
            RangePredicate::range(cfg.high_col(1), lo, hi),
            Some(RangePredicate::range(0, 100.0, 199.0)),
        );
        assert!(r.rows.len() <= 100, "time conjunct must cap the result");
        for &loc in &r.rows {
            let t = db.heap().value_f64(loc, 0).unwrap().unwrap();
            assert!((100.0..=199.0).contains(&t));
        }
    }
}
