#![forbid(unsafe_code)]
//! # hermit-workloads
//!
//! The three applications of the Hermit evaluation (§7.1, Appendix A),
//! generated synthetically with the same statistical structure the paper
//! describes, plus query generators for the selectivity sweeps.
//!
//! * [`synthetic`] — one table `(colA, colB, colC, colD)` where
//!   `colB = Fn(colC)` for a Linear or Sigmoid correlation function, with a
//!   configurable percentage of injected noise. Primary index on `colA`,
//!   host index on `colB`, experiments index `colC`.
//! * [`stock`] — a wide table of daily high/low prices for many stocks
//!   (near-linear high↔low correlation with occasional >50% jump outliers
//!   and NULL gaps).
//! * [`sensor`] — 16 gas-concentration sensor columns plus their average;
//!   each sensor is a *non-linear* monotone function of the average.
//! * [`queries`] — deterministic range/point query generators targeting a
//!   given selectivity.
//!
//! All generators are seeded and deterministic; table sizes are parameters
//! so benchmarks can run paper-scale or laptop-scale.

pub mod queries;
pub mod sensor;
pub mod stock;
pub mod synthetic;

pub use queries::QueryGen;
pub use sensor::{build_sensor, SensorConfig};
pub use stock::{build_stock, StockConfig};
pub use synthetic::{build_synthetic, CorrelationKind, SyntheticConfig};
