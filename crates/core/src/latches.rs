//! The canonical latch hierarchy of the engine — one machine-readable
//! declaration, consumed both by humans and by the `hermit-lint` static
//! analyzer (`crates/analysis`).
//!
//! Until this module existed, the lock order lived as prose in
//! [`crate::database`]'s module docs and in reviewer memory. Every rule
//! below is extracted from the real acquisition paths; `hermit-lint`'s
//! `latch-order` rule re-derives nested acquisitions from the source of
//! `crates/core` on every CI run and flags any nesting that contradicts
//! [`LATCH_HIERARCHY`].
//!
//! # The order (outermost → innermost)
//!
//! | rank | latch | acquired via | held across I/O? |
//! |-----:|-------|--------------|------------------|
//! | 10 | durability quiesce | `quiesce_read()`, `quiesce.read()`, `quiesce.write()` | yes |
//! | 20 | WAL guard | `wal_guard()`, `wal.lock()` | yes |
//! | 30 | composite-index registry | `composites()`, `composites_mut()`, `composites.read()`, `composites.write()` | no |
//! | 40 | per-index latch | `tree.read()`, `tree.write()`, `host_tree.read()` | no |
//! | 50 | primary index | `primary()`, `primary.read()`, `primary.write()` | no |
//! | 60 | heap latch | `t.read()`, `t.write()`, `table.read()` (the `Heap::Mem` table) | no |
//!
//! A thread holding a latch of rank *r* may only acquire latches of rank
//! strictly greater than *r*. The load-bearing nestings, for the record:
//!
//! * **DML** (`Database::insert_timed`, `delete_by_pk`, the `_txn`
//!   variants): quiesce (read) → WAL guard, both held across the heap
//!   apply + WAL append; the apply step then takes heap / primary /
//!   per-index / registry latches transiently. The WAL guard sits *above*
//!   the data latches deliberately — apply order and log order must be the
//!   same total order (see `Durability::wal_guard` in
//!   [`crate::recovery`]), so the guard is taken before the first heap
//!   mutation, not at append time.
//! * **Checkpoint** (`Database::checkpoint`): quiesce (write) → WAL guard
//!   — the same top-of-hierarchy order as DML, which is exactly why the
//!   two cannot deadlock.
//! * **Composite reorganization** (`SharedDatabase::maintenance_pass`):
//!   registry (write) → heap (read) — the rebuild scans the base table
//!   under the registry latch so a racing insert cannot be erased.
//! * **Query execution** (`Executor`): per-index (read) → primary (read)
//!   → heap (read) while resolving and validating candidates.
//!
//! Latches *internal* to one component (buffer-pool shards, the
//! `ConcurrentTrsTree` node latches, the transaction-table mutex, the page
//! store's file lock) are leaves: they are acquired last, never nest with
//! each other across components, and are not part of this declaration.
//!
//! # Changing the hierarchy
//!
//! Add or move a level here first, then make the code match. `hermit-lint`
//! resolves acquisitions lexically (receiver name / guard-returning method
//! name, per the `receivers`/`methods` fields), so a new latch must carry
//! a recognizable field or method name and be declared below, or the
//! analyzer will not see it.

/// One level of the engine-wide latch hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatchLevel {
    /// Position in the order; lower = outer. Gaps are deliberate so a
    /// future level can slot in without renumbering.
    pub rank: u32,
    /// Stable human-readable name, used in diagnostics.
    pub name: &'static str,
    /// Final path segment of receivers whose `.read()` / `.write()` /
    /// `.lock()` acquires this latch (`self.primary.write()` → `primary`).
    pub receivers: &'static [&'static str],
    /// Guard-returning no-argument methods that acquire this latch
    /// (`d.wal_guard()` → `wal_guard`).
    pub methods: &'static [&'static str],
    /// Whether this latch may be held across fsync / WAL-append calls.
    /// Only the top of the hierarchy is: the quiesce latch and the WAL
    /// guard exist precisely to bracket durable statements. Holding a data
    /// latch (heap, indexes) across device I/O stalls every reader behind
    /// an fsync and is flagged by `hermit-lint`'s `latch-hold-io` rule.
    pub io_safe: bool,
}

/// The engine-wide latch hierarchy, outermost first. See the module docs
/// for the derivation; `hermit-lint` enforces it over `crates/core`.
pub const LATCH_HIERARCHY: &[LatchLevel] = &[
    LatchLevel {
        rank: 10,
        name: "durability-quiesce",
        receivers: &["quiesce"],
        methods: &["quiesce_read"],
        io_safe: true,
    },
    LatchLevel {
        rank: 20,
        name: "wal-guard",
        receivers: &["wal"],
        methods: &["wal_guard"],
        io_safe: true,
    },
    LatchLevel {
        rank: 30,
        name: "composite-registry",
        receivers: &["composites"],
        methods: &["composites", "composites_mut"],
        io_safe: false,
    },
    LatchLevel {
        rank: 40,
        name: "secondary-index",
        receivers: &["tree", "host_tree"],
        methods: &[],
        io_safe: false,
    },
    LatchLevel {
        rank: 50,
        name: "primary-index",
        receivers: &["primary"],
        methods: &["primary"],
        io_safe: false,
    },
    LatchLevel { rank: 60, name: "heap", receivers: &["t", "table"], methods: &[], io_safe: false },
];

/// Look up a hierarchy level by receiver name.
pub fn level_for_receiver(recv: &str) -> Option<&'static LatchLevel> {
    LATCH_HIERARCHY.iter().find(|l| l.receivers.contains(&recv))
}

/// Look up a hierarchy level by guard-returning method name.
pub fn level_for_method(method: &str) -> Option<&'static LatchLevel> {
    LATCH_HIERARCHY.iter().find(|l| l.methods.contains(&method))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_strictly_increase_and_names_are_unique() {
        for w in LATCH_HIERARCHY.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} must rank above {}", w[0].name, w[1].name);
        }
        let mut names: Vec<_> = LATCH_HIERARCHY.iter().map(|l| l.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LATCH_HIERARCHY.len());
    }

    #[test]
    fn receivers_and_methods_are_unambiguous() {
        let mut seen = std::collections::BTreeSet::new();
        for l in LATCH_HIERARCHY {
            for r in l.receivers {
                assert!(seen.insert(("recv", *r)), "receiver {r} mapped twice");
            }
            for m in l.methods {
                assert!(seen.insert(("method", *m)), "method {m} mapped twice");
            }
        }
    }

    #[test]
    fn only_the_statement_brackets_are_io_safe() {
        for l in LATCH_HIERARCHY {
            assert_eq!(l.io_safe, l.rank <= 20, "{} io_safe flag out of policy", l.name);
        }
    }
}
