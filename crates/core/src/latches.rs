//! The canonical latch hierarchy of the engine — one machine-readable
//! declaration, consumed both by humans and by the `hermit-lint` static
//! analyzer (`crates/analysis`).
//!
//! Until this module existed, the lock order lived as prose in
//! [`crate::database`]'s module docs and in reviewer memory. Every rule
//! below is extracted from the real acquisition paths; `hermit-lint`'s
//! `latch-order` rule re-derives nested acquisitions from the source of
//! `crates/core` on every CI run and flags any nesting that contradicts
//! [`LATCH_HIERARCHY`].
//!
//! # The order (outermost → innermost)
//!
//! | rank | latch | acquired via | held across I/O? |
//! |-----:|-------|--------------|------------------|
//! | 10 | durability quiesce | `quiesce_read()`, `quiesce.read()`, `quiesce.write()` | yes |
//! | 20 | WAL guard | `wal_guard()`, `wal.lock()` | yes |
//! | 30 | composite-index registry | `composites()`, `composites_mut()`, `composites.read()`, `composites.write()` | no |
//! | 40 | per-index latch | `tree.read()`, `tree.write()`, `host_tree.read()` | no |
//! | 50 | primary index | `primary()`, `primary.read()`, `primary.write()` | no |
//! | 60 | heap latch | `t.read()`, `t.write()`, `table.read()` (the `Heap::Mem` table) | no |
//!
//! A thread holding a latch of rank *r* may only acquire latches of rank
//! strictly greater than *r*. The load-bearing nestings, for the record:
//!
//! * **DML** (`Database::insert_timed`, `delete_by_pk`, the `_txn`
//!   variants): quiesce (read) → WAL guard, both held across the heap
//!   apply + WAL append; the apply step then takes heap / primary /
//!   per-index / registry latches transiently. The WAL guard sits *above*
//!   the data latches deliberately — apply order and log order must be the
//!   same total order (see `Durability::wal_guard` in
//!   [`crate::recovery`]), so the guard is taken before the first heap
//!   mutation, not at append time.
//! * **Checkpoint** (`Database::checkpoint`): quiesce (write) → WAL guard
//!   — the same top-of-hierarchy order as DML, which is exactly why the
//!   two cannot deadlock.
//! * **Composite reorganization** (`SharedDatabase::maintenance_pass`):
//!   registry (write) → heap (read) — the rebuild scans the base table
//!   under the registry latch so a racing insert cannot be erased.
//! * **Query execution** (`Executor`): per-index (read) → heap (read)
//!   while validating candidates; primary and heap fetches otherwise
//!   happen after the index guard is released (candidate locs are copied
//!   out), which is why `(40, 50)` and `(50, 60)` are *not* declared in
//!   [`LATCH_NESTING_EDGES`].
//!
//! Latches *internal* to one component (buffer-pool shards, the
//! `ConcurrentTrsTree` node latches, the transaction-table mutex, the page
//! store's file lock) are leaves: they are acquired last, never nest with
//! each other across components, and are not part of this declaration.
//!
//! # Runtime witness and the observed-edge export
//!
//! The declaration is enforced twice. Statically, `hermit-lint` re-derives
//! nestings from source (including across calls — the `latch-order-ip`
//! rule). Dynamically, every engine latch is a [`LatchedRwLock`] /
//! [`LatchedMutex`] wrapper whose guards carry a [`HeldLatch`] token: in
//! debug builds each acquisition pushes its rank onto a thread-local
//! stack, records every `(held, acquired)` pair into a process-global set,
//! and panics (or counts, see [`set_witness_panic`]) when the new rank is
//! lower than one already held. [`observed_nesting_edges`] exports the
//! recorded set; the `latch_witness` integration test drives the DML /
//! query / checkpoint / reorganization workloads and asserts it equals
//! [`LATCH_NESTING_EDGES`] exactly — so the static model, the runtime
//! behavior, and this file cannot drift apart independently. Release
//! builds compile the bookkeeping out.
//!
//! # Changing the hierarchy
//!
//! Add or move a level here first, then make the code match. `hermit-lint`
//! resolves acquisitions lexically (receiver name / guard-returning method
//! name, per the `receivers`/`methods` fields), so a new latch must carry
//! a recognizable field or method name and be declared below, or the
//! analyzer will not see it. New load-bearing nestings must also be added
//! to [`LATCH_NESTING_EDGES`] and exercised by the `latch_witness` test's
//! workload, or CI fails the reconciliation.

/// One level of the engine-wide latch hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatchLevel {
    /// Position in the order; lower = outer. Gaps are deliberate so a
    /// future level can slot in without renumbering.
    pub rank: u32,
    /// Stable human-readable name, used in diagnostics.
    pub name: &'static str,
    /// Final path segment of receivers whose `.read()` / `.write()` /
    /// `.lock()` acquires this latch (`self.primary.write()` → `primary`).
    pub receivers: &'static [&'static str],
    /// Guard-returning no-argument methods that acquire this latch
    /// (`d.wal_guard()` → `wal_guard`).
    pub methods: &'static [&'static str],
    /// Whether this latch may be held across fsync / WAL-append calls.
    /// Only the top of the hierarchy is: the quiesce latch and the WAL
    /// guard exist precisely to bracket durable statements. Holding a data
    /// latch (heap, indexes) across device I/O stalls every reader behind
    /// an fsync and is flagged by `hermit-lint`'s `latch-hold-io` rule.
    pub io_safe: bool,
}

/// The engine-wide latch hierarchy, outermost first. See the module docs
/// for the derivation; `hermit-lint` enforces it over `crates/core`.
pub const LATCH_HIERARCHY: &[LatchLevel] = &[
    LatchLevel {
        rank: 10,
        name: "durability-quiesce",
        receivers: &["quiesce"],
        methods: &["quiesce_read"],
        io_safe: true,
    },
    LatchLevel {
        rank: 20,
        name: "wal-guard",
        receivers: &["wal"],
        methods: &["wal_guard"],
        io_safe: true,
    },
    LatchLevel {
        rank: 30,
        name: "composite-registry",
        receivers: &["composites"],
        methods: &["composites", "composites_mut"],
        io_safe: false,
    },
    LatchLevel {
        rank: 40,
        name: "secondary-index",
        receivers: &["tree", "host_tree"],
        methods: &[],
        io_safe: false,
    },
    LatchLevel {
        rank: 50,
        name: "primary-index",
        receivers: &["primary"],
        methods: &["primary"],
        io_safe: false,
    },
    LatchLevel { rank: 60, name: "heap", receivers: &["t", "table"], methods: &[], io_safe: false },
];

/// Look up a hierarchy level by receiver name.
pub fn level_for_receiver(recv: &str) -> Option<&'static LatchLevel> {
    LATCH_HIERARCHY.iter().find(|l| l.receivers.contains(&recv))
}

/// Look up a hierarchy level by guard-returning method name.
pub fn level_for_method(method: &str) -> Option<&'static LatchLevel> {
    LATCH_HIERARCHY.iter().find(|l| l.methods.contains(&method))
}

/// Look up a hierarchy level by rank. Panics on an undeclared rank — the
/// ranks are compile-time constants at every call site, so a miss is a
/// programming error, not a runtime condition.
pub fn level(rank: u32) -> &'static LatchLevel {
    LATCH_HIERARCHY
        .iter()
        .find(|l| l.rank == rank)
        .unwrap_or_else(|| panic!("rank {rank} is not declared in LATCH_HIERARCHY"))
}

/// The nesting edges `(outer rank, inner rank)` the engine actually
/// exercises: acquiring the inner latch while the outer one is held.
///
/// This is deliberately **not** the full upper-triangle of
/// [`LATCH_HIERARCHY`] — some legal-by-rank nestings are unreachable by
/// construction (composite indexes live only on the in-memory substrate,
/// the per-index tree latch is never taken under the registry write latch,
/// …). The runtime witness records every nesting it observes, and the
/// `latch_witness` integration test asserts set equality both ways: an
/// edge observed at runtime but missing here fails (undeclared nesting),
/// and an edge declared here but never observed fails (the stress
/// workloads stopped exercising a load-bearing path, or the edge is
/// fiction). Keep this list sorted.
pub const LATCH_NESTING_EDGES: &[(u32, u32)] = &[
    (10, 20), // DML + checkpoint: quiesce, then the WAL guard
    (10, 30), // durable DML: registry probe under quiesce + WAL guard
    (10, 40), // durable DML: per-index maintenance under quiesce + WAL guard
    (10, 50), // durable DML: primary-index maintenance under the brackets
    (20, 30), // same apply steps, seen from under the WAL guard
    (20, 40),
    (20, 50),
    (30, 60), // composite reorganization: heap scan under the registry latch
    (40, 60), // query validation: heap re-check under the tree latch
              // Absent on purpose, per the reconciliation test:
              // * (10, 60) / (20, 60) — the durable substrate is paged, and the
              //   paged heap has no rank-60 latch (the buffer pool's shard locks
              //   are leaves); the in-memory heap latch never sits under the
              //   durability brackets because the mem substrate cannot checkpoint.
              // * (40, 50) / (50, 60) — the executor copies candidate locs out of
              //   each index guard before taking the next latch, so primary and
              //   heap acquisitions never nest under another data latch.
];

// ---------------------------------------------------------------------
// Runtime lock-order witness
// ---------------------------------------------------------------------
//
// The static analyzer (`hermit-lint`) re-derives nestings lexically; the
// witness below records what *actually executes*. Debug builds keep a
// thread-local stack of held ranks: every [`LatchedRwLock`] /
// [`LatchedMutex`] acquisition pushes its level, records a nesting edge
// per held rank, and — on a hierarchy violation (acquiring a rank lower
// than one already held) — panics (the default, used by tests) or bumps a
// process-wide counter (`set_witness_panic(false)`). Release builds
// compile the bookkeeping out; the wrappers degrade to the plain locks.
//
// `observed_nesting_edges()` exports the recorded edges so the
// `latch_witness` test can reconcile them against
// [`LATCH_NESTING_EDGES`]; the set is process-global, which is why that
// test lives in its own integration-test binary.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
mod witness {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::sync::Mutex;

    thread_local! {
        /// Ranks of latches this thread currently holds, in acquisition
        /// order. Duplicates are legal (two heap tables, re-entrant
        /// same-rank reads); release removes the most recent occurrence.
        pub static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    /// Every `(outer, inner)` nesting observed process-wide.
    pub static OBSERVED: Mutex<BTreeSet<(u32, u32)>> = Mutex::new(BTreeSet::new());
    /// Hierarchy violations seen while panicking was disabled.
    pub static VIOLATIONS: AtomicU64 = AtomicU64::new(0);
    /// Whether a violation panics (tests) or only counts.
    pub static PANIC_ON_VIOLATION: AtomicBool = AtomicBool::new(true);
}

/// Pop-on-drop token recording one held latch level.
///
/// Field order in [`Witnessed`] puts the lock guard first, so the guard is
/// released before the token pops — the stack never claims a latch that a
/// waiter could already have been granted.
#[derive(Debug)]
pub struct HeldLatch {
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    rank: u32,
}

impl Drop for HeldLatch {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        witness::HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(i) = held.iter().rposition(|&r| r == self.rank) {
                held.remove(i);
            }
        });
    }
}

/// Record an acquisition on the witness stack; returns the pop token.
fn note_acquire(level: &'static LatchLevel) -> HeldLatch {
    #[cfg(debug_assertions)]
    witness::HELD.with(|h| {
        let mut held = h.borrow_mut();
        if !held.is_empty() {
            {
                let mut obs = witness::OBSERVED.lock().unwrap_or_else(|e| e.into_inner());
                for &r in held.iter() {
                    if r != level.rank {
                        obs.insert((r, level.rank));
                    }
                }
            }
            if held.iter().any(|&r| level.rank < r) {
                use std::sync::atomic::Ordering;
                witness::VIOLATIONS.fetch_add(1, Ordering::Relaxed);
                if witness::PANIC_ON_VIOLATION.load(Ordering::Relaxed) {
                    let stack: Vec<u32> = held.clone();
                    drop(held);
                    panic!(
                        "latch witness: acquiring `{}` (rank {}) while holding ranks {stack:?} \
                         — contradicts LATCH_HIERARCHY",
                        level.name, level.rank
                    );
                }
            }
        }
        held.push(level.rank);
    });
    HeldLatch { rank: level.rank }
}

/// The nesting edges `(outer, inner)` observed so far in this process,
/// sorted. Always empty in release builds (the witness is compiled out).
pub fn observed_nesting_edges() -> Vec<(u32, u32)> {
    #[cfg(debug_assertions)]
    {
        witness::OBSERVED.lock().unwrap_or_else(|e| e.into_inner()).iter().copied().collect()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Hierarchy violations recorded while panicking was disabled. Always 0 in
/// release builds.
pub fn witness_violations() -> u64 {
    #[cfg(debug_assertions)]
    {
        use std::sync::atomic::Ordering;
        witness::VIOLATIONS.load(Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Choose whether a violation panics (default, what the test suites want)
/// or only increments [`witness_violations`]. No-op in release builds.
pub fn set_witness_panic(panic_on_violation: bool) {
    #[cfg(debug_assertions)]
    {
        use std::sync::atomic::Ordering;
        witness::PANIC_ON_VIOLATION.store(panic_on_violation, Ordering::Relaxed);
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = panic_on_violation;
    }
}

/// A lock guard plus its witness token. Derefs straight through to the
/// guarded value, so `db.primary().get(pk)` and `&tree.read()` keep
/// working unchanged at every call site.
#[derive(Debug)]
pub struct Witnessed<G> {
    // Declaration order is load-bearing: the guard drops (releasing the
    // lock) before the token pops the witness stack.
    guard: G,
    _held: HeldLatch,
}

impl<G: Deref> Deref for Witnessed<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Witnessed<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

/// An `RwLock` pinned to one [`LatchLevel`]; acquisitions go through the
/// runtime witness.
#[derive(Debug)]
pub struct LatchedRwLock<T> {
    level: &'static LatchLevel,
    inner: RwLock<T>,
}

impl<T> LatchedRwLock<T> {
    pub fn new(level: &'static LatchLevel, value: T) -> Self {
        LatchedRwLock { level, inner: RwLock::new(value) }
    }

    pub fn read(&self) -> Witnessed<RwLockReadGuard<'_, T>> {
        let guard = self.inner.read();
        Witnessed { guard, _held: note_acquire(self.level) }
    }

    pub fn write(&self) -> Witnessed<RwLockWriteGuard<'_, T>> {
        let guard = self.inner.write();
        Witnessed { guard, _held: note_acquire(self.level) }
    }

    /// Exclusive access without locking — no latch is acquired, so the
    /// witness stays out of it.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// A `Mutex` pinned to one [`LatchLevel`]; acquisitions go through the
/// runtime witness.
#[derive(Debug)]
pub struct LatchedMutex<T> {
    level: &'static LatchLevel,
    inner: Mutex<T>,
}

impl<T> LatchedMutex<T> {
    pub fn new(level: &'static LatchLevel, value: T) -> Self {
        LatchedMutex { level, inner: Mutex::new(value) }
    }

    pub fn lock(&self) -> Witnessed<MutexGuard<'_, T>> {
        let guard = self.inner.lock();
        Witnessed { guard, _held: note_acquire(self.level) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_strictly_increase_and_names_are_unique() {
        for w in LATCH_HIERARCHY.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} must rank above {}", w[0].name, w[1].name);
        }
        let mut names: Vec<_> = LATCH_HIERARCHY.iter().map(|l| l.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LATCH_HIERARCHY.len());
    }

    #[test]
    fn receivers_and_methods_are_unambiguous() {
        let mut seen = std::collections::BTreeSet::new();
        for l in LATCH_HIERARCHY {
            for r in l.receivers {
                assert!(seen.insert(("recv", *r)), "receiver {r} mapped twice");
            }
            for m in l.methods {
                assert!(seen.insert(("method", *m)), "method {m} mapped twice");
            }
        }
    }

    #[test]
    fn only_the_statement_brackets_are_io_safe() {
        for l in LATCH_HIERARCHY {
            assert_eq!(l.io_safe, l.rank <= 20, "{} io_safe flag out of policy", l.name);
        }
    }

    #[test]
    fn nesting_edges_are_sorted_declared_and_downward() {
        assert!(LATCH_NESTING_EDGES.windows(2).all(|w| w[0] < w[1]), "edges must be sorted");
        for &(outer, inner) in LATCH_NESTING_EDGES {
            assert!(outer < inner, "edge ({outer}, {inner}) contradicts the hierarchy");
            level(outer);
            level(inner);
        }
    }

    #[test]
    fn witness_records_edges_and_counts_violations() {
        // Debug-only semantics; in release the witness is compiled out.
        if !cfg!(debug_assertions) {
            return;
        }
        let quiesce = LatchedRwLock::new(level(10), ());
        let heap = LatchedRwLock::new(level(60), 0u32);
        let wal = LatchedMutex::new(level(20), ());
        {
            let _q = quiesce.read();
            let _w = wal.lock();
            let _h = heap.write();
        }
        let edges = observed_nesting_edges();
        assert!(edges.contains(&(10, 20)) && edges.contains(&(10, 60)));
        assert!(edges.contains(&(20, 60)));

        // Inversion with panicking disabled: counted, not fatal.
        set_witness_panic(false);
        let before = witness_violations();
        {
            let _h = heap.read();
            let _q = quiesce.read(); // rank 10 under rank 60: violation
        }
        assert_eq!(witness_violations(), before + 1);
        set_witness_panic(true);
    }
}
