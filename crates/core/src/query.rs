//! The unified declarative query surface: [`Query`] values describe *what*
//! to find; [`crate::Database::plan`] decides *how*.
//!
//! A [`Query`] is a conjunction of inclusive [`RangePredicate`]s over any
//! columns, plus an optional projection and row limit — the shape of every
//! lookup in the paper (`SELECT ... WHERE a BETWEEN ? AND ? AND b BETWEEN
//! ? AND ?`). [`crate::Database::execute`] plans it with the cost-based
//! planner ([`crate::plan`]) and funnels the chosen access path into the
//! scalar pipeline; [`crate::Database::execute_batch`] funnels batches into
//! the vectorized pipeline. Both return the same [`crate::QueryResult`]s.
//!
//! # Plan nodes vs the paper's Fig. 3 phases
//!
//! Every plan the planner can emit maps onto the paper's four-phase lookup
//! pipeline (§5.2, Fig. 3); the plan node only changes *which* structures
//! serve phases 1–2:
//!
//! | plan node (EXPLAIN)   | phase 1 (TRS-Tree)      | phase 2 (index probe)       | phase 3 (tid resolve) | phase 4 (validate)     |
//! |-----------------------|-------------------------|-----------------------------|-----------------------|------------------------|
//! | `hermit route`        | translate target→host   | host column's B+-tree       | logical tids only     | driving + residual     |
//! | `index range scan`    | —                       | target column's B+-tree     | logical tids only     | residual only (exact)  |
//! | `composite box scan`  | translate (Hermit only) | composite `(leading, ...)`  | logical tids only     | box + residual         |
//! | `seq scan`            | —                       | —                           | —                     | every conjunct, in-scan|
//!
//! The *driving* conjunct is the one phases 1–2 answer approximately (Hermit)
//! or exactly (baseline); every other conjunct is *residual* and is pushed
//! into phase-4 base-table validation, generalizing the old single `extra`
//! predicate. The `seq scan` node is the fallback that makes queries over
//! unindexed columns return correct rows instead of silently nothing.

use crate::executor::RangePredicate;
use hermit_storage::ColumnId;

/// A declarative conjunctive query: predicates, optional projection,
/// optional limit.
///
/// Built fluently:
///
/// ```
/// use hermit_core::Query;
/// let q = Query::new().range(2, 100.0, 199.0).range(3, 0.0, 10.0).limit(16);
/// assert_eq!(q.conjuncts().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    conjuncts: Vec<RangePredicate>,
    projection: Option<Vec<ColumnId>>,
    limit: Option<usize>,
}

impl Query {
    /// An empty query (matches every row until predicates are added).
    pub fn new() -> Self {
        Query::default()
    }

    /// A query with a single range conjunct — the common case.
    pub fn filter(pred: RangePredicate) -> Self {
        Query { conjuncts: vec![pred], projection: None, limit: None }
    }

    /// Add an inclusive range conjunct `column ∈ [lb, ub]`.
    pub fn range(mut self, column: ColumnId, lb: f64, ub: f64) -> Self {
        self.conjuncts.push(RangePredicate::range(column, lb, ub));
        self
    }

    /// Add a point conjunct `column = v`.
    pub fn point(mut self, column: ColumnId, v: f64) -> Self {
        self.conjuncts.push(RangePredicate::point(column, v));
        self
    }

    /// Add an already-built conjunct.
    pub fn and(mut self, pred: RangePredicate) -> Self {
        self.conjuncts.push(pred);
        self
    }

    /// Project the result to these columns: `execute` materializes one
    /// `Vec<Value>` per qualifying row into
    /// [`crate::QueryResult::projected`].
    pub fn select(mut self, columns: impl IntoIterator<Item = ColumnId>) -> Self {
        self.projection = Some(columns.into_iter().collect());
        self
    }

    /// Return at most `n` rows. Which rows survive is plan- and
    /// substrate-dependent (there is no ORDER BY), exactly like a bare SQL
    /// `LIMIT`.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// The conjuncts, in insertion order.
    pub fn conjuncts(&self) -> &[RangePredicate] {
        &self.conjuncts
    }

    /// The projection, if one was requested.
    pub fn projection(&self) -> Option<&[ColumnId]> {
        self.projection.as_deref()
    }

    /// The row limit, if one was requested.
    pub fn limit_rows(&self) -> Option<usize> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let q = Query::new().range(1, 0.0, 5.0).point(2, 7.0).select([0, 2]).limit(3);
        assert_eq!(q.conjuncts().len(), 2);
        assert_eq!(q.conjuncts()[1], RangePredicate::point(2, 7.0));
        assert_eq!(q.projection(), Some(&[0usize, 2][..]));
        assert_eq!(q.limit_rows(), Some(3));
    }

    #[test]
    fn filter_shorthand() {
        let p = RangePredicate::range(4, 1.0, 2.0);
        assert_eq!(Query::filter(p), Query::new().and(p));
    }
}
