//! The database facade: one table, a primary index, and secondary indexes.
//!
//! This is the integration point of the whole system. A [`Database`] owns:
//!
//! * a heap — in-memory columnar ([`hermit_storage::Table`], the DBMS-X
//!   substrate) or paged ([`hermit_storage::paged::PagedTable`], the
//!   PostgreSQL substrate of §7.8);
//! * a hash primary index (primary key → row location), used both for
//!   uniqueness and to resolve logical tids;
//! * per-column secondary indexes, each a baseline B+-tree or a Hermit
//!   TRS-Tree ([`SecondaryIndex`]).
//!
//! The tuple-identifier scheme ([`TidScheme`]) is fixed per database, as in
//! real systems (PostgreSQL = physical, MySQL = logical).
//!
//! # Concurrency
//!
//! Every component a query or a DML statement touches is individually
//! latched, so reads and writes take `&self` and a database can be served
//! from many threads at once through [`crate::shared::SharedDatabase`]:
//!
//! * the in-memory heap sits behind a coarse `RwLock` (the paged heap's
//!   buffer pool is already internally synchronized);
//! * the primary index and the composite-index registry sit behind
//!   `RwLock`s;
//! * baseline secondary B+-trees each carry their own `RwLock`, and Hermit
//!   indexes use [`hermit_trs::ConcurrentTrsTree`] — the Appendix-B
//!   protocol with a side buffer for writes that race a background
//!   reorganization.
//!
//! The order in which these latches may nest is **not** documented here:
//! the canonical, machine-readable declaration is
//! [`crate::latches::LATCH_HIERARCHY`], and the `hermit-lint` static
//! analyzer (`crates/analysis`) checks every function in this crate
//! against it. If you add a lock site, read that module first.
//!
//! Structural DDL (creating indexes, changing TRS parameters) still takes
//! `&mut self`: the index *registry* itself is not latched, which keeps
//! every per-query lookup latch-free. Build the schema first, then share.

use crate::breakdown::InsertBreakdown;
use crate::composite::{build_composite_tree, build_composite_trs, CompositeIndexes};
use crate::correlation::{discover_correlations, DiscoveryConfig};
use crate::error::CoreError;
use crate::index::SecondaryIndex;
use crate::latches::{self, LatchedRwLock, Witnessed};
use hermit_btree::{BPlusTree, HashPrimaryIndex};
use hermit_storage::paged::PagedTable;
use hermit_storage::{
    ColumnId, ColumnStats, F64Key, RowLoc, RowRef, Schema, StorageError, Table, Tid, TidScheme,
    Value,
};
use hermit_trs::{ConcurrentTrsTree, PairSource, TrsParams, TrsTree};
use hermit_txn::TxnManager;
use parking_lot::RwLockReadGuard;
use std::collections::BTreeMap;
use std::time::Instant;

/// The table heap backing a database: in-memory or paged.
///
/// The in-memory substrate carries a coarse reader-writer latch (appends
/// and tombstones take the write side briefly; scans and fetches share the
/// read side). The paged substrate needs none — its buffer pool and stats
/// are already internally synchronized, so it is shared as-is.
pub enum Heap {
    /// In-memory columnar heap (DBMS-X substrate) behind a coarse latch.
    Mem(LatchedRwLock<Table>),
    /// Slotted-page heap behind a buffer pool (PostgreSQL substrate).
    Paged(PagedTable),
}

impl Heap {
    /// Live row count.
    pub fn len(&self) -> usize {
        match self {
            Heap::Mem(t) => t.read().len(),
            Heap::Paged(t) => t.len(),
        }
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schema of the heap (cloned out from under the latch; schemas are a
    /// handful of column definitions).
    pub fn schema(&self) -> Schema {
        match self {
            Heap::Mem(t) => t.read().schema().clone(),
            Heap::Paged(t) => t.schema().clone(),
        }
    }

    fn insert(&self, row: &[Value]) -> hermit_storage::Result<RowLoc> {
        match self {
            Heap::Mem(t) => t.write().insert(row),
            Heap::Paged(t) => t.insert(row),
        }
    }

    /// Numeric cell access (`None` for NULL); the validation hot path.
    pub fn value_f64(&self, loc: RowLoc, cid: ColumnId) -> hermit_storage::Result<Option<f64>> {
        match self {
            Heap::Mem(t) => t.read().value_f64(loc, cid),
            Heap::Paged(t) => t.value_f64(loc, cid),
        }
    }

    /// Visit one row under a single heap access; every predicate column is
    /// read from the same visit (one page pin on the paged substrate).
    /// `None` for deleted/unresolvable rows.
    pub fn with_row<T>(&self, loc: RowLoc, f: impl FnOnce(Option<RowRef<'_>>) -> T) -> T {
        match self {
            Heap::Mem(t) => t.read().with_row(loc, f),
            Heap::Paged(t) => t.with_row(loc, f),
        }
    }

    /// Batched row visitation for validation: on the paged substrate the
    /// candidates are visited grouped by page (each page pinned once, sorted
    /// through the reusable `order` buffer); the in-memory substrate visits
    /// in input order under one read-latch acquisition. `f` gets each
    /// candidate's index into `locs` and its row view, and must not
    /// re-enter the heap.
    pub fn for_each_row_batch(
        &self,
        locs: &[RowLoc],
        order: &mut Vec<u32>,
        f: impl FnMut(usize, Option<RowRef<'_>>),
    ) {
        match self {
            Heap::Mem(t) => t.read().for_each_row_batch(locs, f),
            Heap::Paged(t) => t.for_each_row_batch(locs, order, f),
        }
    }

    /// Full-row fetch.
    pub fn get(&self, loc: RowLoc) -> hermit_storage::Result<Vec<Value>> {
        match self {
            Heap::Mem(t) => t.read().get(loc),
            Heap::Paged(t) => t.get(loc),
        }
    }

    /// Fetch-and-tombstone as one atomic heap operation (one latch
    /// acquisition / one page access), returning the old row values.
    fn delete_returning(&self, loc: RowLoc) -> hermit_storage::Result<Vec<Value>> {
        match self {
            Heap::Mem(t) => t.write().delete_returning(loc),
            Heap::Paged(t) => t.delete_returning(loc),
        }
    }

    /// Incrementally-maintained column statistics (the planner's
    /// "optimizer statistics").
    pub fn stats(&self, cid: ColumnId) -> hermit_storage::Result<ColumnStats> {
        match self {
            Heap::Mem(t) => t.read().stats(cid).cloned(),
            Heap::Paged(t) => t.stats(cid),
        }
    }

    /// Stream every live row through a `RowRef` visitor; the visitor
    /// returns `false` to stop early. Page-sequential on the paged
    /// substrate (one pool access per page); on the in-memory substrate the
    /// read latch is held for the duration of the scan (writers wait, other
    /// readers proceed). This is the seq-scan access path of the planner.
    pub fn for_each_live_row(&self, f: impl FnMut(RowLoc, RowRef<'_>) -> bool) -> bool {
        match self {
            Heap::Mem(t) => t.read().for_each_live_row(f),
            Heap::Paged(t) => t.for_each_live_row(f),
        }
    }

    fn project_pairs(
        &self,
        target: ColumnId,
        host: ColumnId,
    ) -> hermit_storage::Result<Vec<(f64, f64, RowLoc)>> {
        match self {
            Heap::Mem(t) => t.read().project_pairs(target, host),
            Heap::Paged(t) => t.project_pairs(target, host),
        }
    }

    /// Heap bytes (in-memory) or buffered bytes (paged heaps report zero —
    /// their storage lives on the device, which is the point of §7.8).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Heap::Mem(t) => t.read().memory_bytes(),
            Heap::Paged(_) => 0,
        }
    }
}

/// Memory usage of one database, split the way the paper's space-breakdown
/// figures (5b, 7b, 20b) report it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Base-table bytes.
    pub table: usize,
    /// Primary index + host-column baseline indexes ("existing indexes").
    pub existing_indexes: usize,
    /// Newly created indexes under test (baseline or Hermit).
    pub new_indexes: usize,
}

impl MemoryReport {
    /// Sum of all components.
    pub fn total(&self) -> usize {
        self.table + self.existing_indexes + self.new_indexes
    }
}

/// A single-table database with Hermit support.
pub struct Database {
    pub(crate) heap: Heap,
    pub(crate) scheme: TidScheme,
    pub(crate) pk_col: ColumnId,
    pub(crate) primary: LatchedRwLock<HashPrimaryIndex>,
    /// Secondary indexes by indexed column. The map itself only changes
    /// under `&mut self` (DDL); each index is internally latched, so DML
    /// and queries share it latch-free.
    pub(crate) secondary: BTreeMap<ColumnId, SecondaryIndex>,
    /// Composite `(leading, value)` secondary indexes, maintained on insert
    /// and visible to the query planner.
    pub(crate) composites: LatchedRwLock<CompositeIndexes>,
    /// Columns whose indexes existed before the experiment began; their
    /// maintenance cost is charged to "existing indexes" in breakdowns.
    pub(crate) existing: Vec<ColumnId>,
    pub(crate) trs_params: TrsParams,
    /// Checkpoint/WAL state for restart-survivable databases (see
    /// [`crate::recovery`]); `None` for ephemeral ones. DML holds its
    /// quiesce latch (read side) across the heap apply + WAL append so a
    /// checkpoint observes no half-logged statements.
    pub(crate) durability: Option<crate::recovery::Durability>,
    /// Transaction table: ids, per-pk write locks, undo bookkeeping, and
    /// snapshot-visibility views (see [`crate::txn`]). Always present —
    /// with no open transactions every hook is a lock-free fast path.
    pub(crate) txns: TxnManager,
}

impl Database {
    /// In-memory database.
    pub fn new(schema: Schema, pk_col: ColumnId, scheme: TidScheme) -> Self {
        Database {
            heap: Heap::Mem(LatchedRwLock::new(latches::level(60), Table::new(schema))),
            scheme,
            pk_col,
            primary: LatchedRwLock::new(latches::level(50), HashPrimaryIndex::new()),
            secondary: BTreeMap::new(),
            composites: LatchedRwLock::new(latches::level(30), CompositeIndexes::new()),
            existing: Vec::new(),
            trs_params: TrsParams::default(),
            durability: None,
            txns: TxnManager::new(),
        }
    }

    /// Paged (disk-backed) database; always physical pointers, like
    /// PostgreSQL.
    pub fn new_paged(table: PagedTable, pk_col: ColumnId) -> Self {
        Database {
            heap: Heap::Paged(table),
            scheme: TidScheme::Physical,
            pk_col,
            primary: LatchedRwLock::new(latches::level(50), HashPrimaryIndex::new()),
            secondary: BTreeMap::new(),
            composites: LatchedRwLock::new(latches::level(30), CompositeIndexes::new()),
            existing: Vec::new(),
            trs_params: TrsParams::default(),
            durability: None,
            txns: TxnManager::new(),
        }
    }

    /// Override the TRS-Tree parameters used by subsequent
    /// `create_hermit_index` calls.
    pub fn set_trs_params(&mut self, params: TrsParams) {
        self.trs_params = params;
    }

    /// The tuple-identifier scheme in force.
    pub fn scheme(&self) -> TidScheme {
        self.scheme
    }

    /// The primary-key column.
    pub fn pk_col(&self) -> ColumnId {
        self.pk_col
    }

    /// The composite-index registry the planner consults (read latch).
    pub fn composites(&self) -> Witnessed<RwLockReadGuard<'_, CompositeIndexes>> {
        self.composites.read()
    }

    /// Write latch over the composite registry (maintenance: composite
    /// Hermit reorganization runs under it).
    pub(crate) fn composites_mut(
        &self,
    ) -> Witnessed<parking_lot::RwLockWriteGuard<'_, CompositeIndexes>> {
        self.composites.write()
    }

    /// Borrow the heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Borrow a secondary index.
    pub fn index(&self, col: ColumnId) -> Option<&SecondaryIndex> {
        self.secondary.get(&col)
    }

    /// Mutable access to a secondary index (reorganization driver).
    pub fn index_mut(&mut self, col: ColumnId) -> Option<&mut SecondaryIndex> {
        self.secondary.get_mut(&col)
    }

    /// Columns with secondary indexes, in column order.
    pub fn indexed_columns(&self) -> Vec<ColumnId> {
        self.secondary.keys().copied().collect()
    }

    /// The primary index (read latch).
    pub fn primary(&self) -> Witnessed<RwLockReadGuard<'_, HashPrimaryIndex>> {
        self.primary.read()
    }

    /// Build the tid for a newly inserted row.
    fn make_tid(&self, pk: i64, loc: RowLoc) -> Tid {
        match self.scheme {
            TidScheme::Logical => Tid::from_pk(pk),
            TidScheme::Physical => Tid::from_loc(loc),
        }
    }

    /// Resolve a tid to a row location (the primary-index hop under logical
    /// pointers).
    pub fn resolve(&self, tid: Tid) -> Option<RowLoc> {
        match self.scheme {
            TidScheme::Physical => Some(tid.as_loc()),
            TidScheme::Logical => self.primary.read().get(tid.as_pk()),
        }
    }

    /// Insert a row, maintaining the primary and all secondary indexes.
    ///
    /// Takes `&self`: every touched structure is internally latched, so
    /// writers may run concurrently with each other and with readers (see
    /// the module docs and [`crate::shared`]).
    pub fn insert(&self, row: &[Value]) -> hermit_storage::Result<Tid> {
        self.insert_timed(row, &mut InsertBreakdown::default())
    }

    /// Insert with per-phase timing (Fig. 22's harness).
    ///
    /// The tuple lands in the base table first and in the indexes second —
    /// the real-RDBMS ordering the Appendix-B reorganization scan relies on
    /// (a rebuild scan sees at least the tuples the index has).
    pub fn insert_timed(
        &self,
        row: &[Value],
        breakdown: &mut InsertBreakdown,
    ) -> hermit_storage::Result<Tid> {
        // Durable databases: refuse up front while the WAL is poisoned,
        // then hold the quiesce latch (shared side) and the WAL guard
        // across heap apply + WAL append. The quiesce latch keeps a live
        // checkpoint from cutting between the two; the WAL guard keeps
        // apply order and log order identical across threads (same-pk
        // races would otherwise replay in the wrong order). See
        // `crate::recovery`.
        let mut statement = match &self.durability {
            Some(d) => {
                d.check_writable()?;
                Some((d, d.quiesce_read(), d.wal_guard()))
            }
            None => None,
        };
        let pk = row
            .get(self.pk_col)
            .and_then(|v| v.as_i64())
            .ok_or(StorageError::TypeMismatch { column: self.pk_col, expected: "Int" })?;
        // First-writer-wins against open transactions: a pk they have
        // dirtied is off limits to auto-commit writers too.
        self.txns.check_unlocked(pk).map_err(|_| StorageError::WriteConflict { pk })?;

        let tid = self.apply_insert(row, pk, breakdown)?;

        // Log last: the WAL is a redo log of *applied* statements, so a
        // failed insert never leaves a record to replay. Durable only as of
        // the next commit-batch fsync / checkpoint.
        if let Some((d, _quiesce, wal)) = statement.as_mut() {
            d.log_insert(wal, row)?;
        }
        Ok(tid)
    }

    /// Physically apply an insert: heap, primary index, secondary and
    /// composite index maintenance. No conflict check, no WAL — the shared
    /// apply step of auto-commit inserts, transactional inserts, recovery
    /// replay, and rollback compensation.
    pub(crate) fn apply_insert(
        &self,
        row: &[Value],
        pk: i64,
        breakdown: &mut InsertBreakdown,
    ) -> hermit_storage::Result<Tid> {
        let t0 = Instant::now();
        let loc = self.heap.insert(row)?;
        self.primary.write().insert(pk, loc);
        breakdown.table += t0.elapsed();
        let tid = self.make_tid(pk, loc);

        // Maintain secondary indexes, charging existing vs new separately.
        for (&col, index) in self.secondary.iter() {
            let t1 = Instant::now();
            match index {
                SecondaryIndex::Baseline(tree) => {
                    if let Some(key) = row[col].as_f64() {
                        tree.write().insert(F64Key(key), tid);
                    }
                }
                SecondaryIndex::Hermit { trs, host } => {
                    if let (Some(m), Some(n)) = (row[col].as_f64(), row[*host].as_f64()) {
                        trs.insert(m, n, tid);
                    }
                }
            }
            let d = t1.elapsed();
            if self.existing.contains(&col) {
                breakdown.existing_indexes += d;
            } else {
                breakdown.new_indexes += d;
            }
        }

        // Maintain database-owned composite indexes (charged as new). The
        // registry's shape only changes under `&mut self`, so the
        // read-check before the write latch cannot race a registration.
        if !self.composites.read().is_empty() {
            let t2 = Instant::now();
            self.composites.write().maintain_insert(row, tid);
            breakdown.new_indexes += t2.elapsed();
        }
        Ok(tid)
    }

    /// Delete a row by primary key, maintaining all indexes.
    ///
    /// The heap delete happens *first*, as one atomic fetch-and-tombstone:
    /// if it fails, no index has been touched and the database stays
    /// consistent (previously the secondary and composite indexes were
    /// updated before the heap, so a failing heap delete left them
    /// disagreeing with the base table). Index entries are removed after; a
    /// concurrent reader that still finds the stale tid simply fails tid
    /// resolution / validation, exactly like any other dead candidate.
    pub fn delete_by_pk(&self, pk: i64) -> hermit_storage::Result<()> {
        let mut statement = match &self.durability {
            Some(d) => {
                d.check_writable()?;
                Some((d, d.quiesce_read(), d.wal_guard()))
            }
            None => None,
        };
        self.txns.check_unlocked(pk).map_err(|_| StorageError::WriteConflict { pk })?;
        self.apply_delete(pk)?;
        if let Some((d, _quiesce, wal)) = statement.as_mut() {
            d.log_delete(wal, pk)?;
        }
        Ok(())
    }

    /// Physically apply a delete by pk: heap fetch-and-tombstone first,
    /// then primary / secondary / composite index removal. No conflict
    /// check, no WAL — the shared apply step of auto-commit deletes,
    /// transactional deletes, recovery replay, and rollback compensation.
    /// Returns the deleted row's pre-image.
    pub(crate) fn apply_delete(&self, pk: i64) -> hermit_storage::Result<Vec<Value>> {
        let loc = self.primary.read().get(pk).ok_or(StorageError::PkNotFound { pk })?;
        let row = self.heap.delete_returning(loc)?;
        let tid = self.make_tid(pk, loc);
        self.primary.write().remove(pk);
        for (&col, index) in self.secondary.iter() {
            match index {
                SecondaryIndex::Baseline(tree) => {
                    if let Some(key) = row[col].as_f64() {
                        tree.write().remove(&F64Key(key), &tid);
                    }
                }
                SecondaryIndex::Hermit { trs, .. } => {
                    if let Some(m) = row[col].as_f64() {
                        trs.delete(m, tid);
                    }
                }
            }
        }
        if !self.composites.read().is_empty() {
            self.composites.write().maintain_delete(&row, tid);
        }
        Ok(row)
    }

    /// Create a complete baseline B+-tree index on `col`, bulk-loaded from
    /// the current table contents. `existing` marks it as a pre-existing
    /// index for breakdown accounting (host indexes, primary-adjacent
    /// indexes).
    pub fn create_baseline_index(
        &mut self,
        col: ColumnId,
        existing: bool,
    ) -> hermit_storage::Result<()> {
        // Bulk load: project (key, tid) sorted by key.
        let mut entries: Vec<(F64Key, Tid)> = Vec::with_capacity(self.heap.len());
        match &self.heap {
            Heap::Mem(t) => {
                let t = t.read();
                let keys = t.column(col)?;
                let pks = t.column(self.pk_col)?;
                for loc in t.scan() {
                    let idx = loc.index();
                    if let Some(k) = keys.get_f64(idx) {
                        let pk = pks.get_f64(idx).unwrap_or(0.0) as i64;
                        entries.push((F64Key(k), self.make_tid(pk, loc)));
                    }
                }
            }
            Heap::Paged(t) => {
                for (loc, row) in t.scan()? {
                    if let Some(k) = row[col].as_f64() {
                        let pk = row[self.pk_col].as_i64().unwrap_or(0);
                        entries.push((F64Key(k), self.make_tid(pk, loc)));
                    }
                }
            }
        }
        entries.sort_by_key(|a| a.0);
        let tree = BPlusTree::bulk_load(entries);
        self.secondary.insert(col, SecondaryIndex::baseline(tree));
        if existing && !self.existing.contains(&col) {
            self.existing.push(col);
        }
        Ok(())
    }

    /// The paper's precondition for a Hermit index: the host column must
    /// already carry a complete baseline index for the TRS-Tree's second
    /// hop to probe.
    fn require_host_index(&self, target: ColumnId, host: ColumnId) -> Result<(), CoreError> {
        if matches!(self.secondary.get(&host), Some(SecondaryIndex::Baseline(_))) {
            Ok(())
        } else {
            Err(CoreError::MissingHostIndex { target, host })
        }
    }

    /// Create a Hermit index on `target` routed through `host`, whose
    /// baseline index must already exist — violating the paper's
    /// precondition is a typed [`CoreError::MissingHostIndex`], not a
    /// panic.
    pub fn create_hermit_index(
        &mut self,
        target: ColumnId,
        host: ColumnId,
    ) -> Result<(), CoreError> {
        self.require_host_index(target, host)?;
        let pairs = self.project_tid_pairs(target, host)?;
        let range = self.heap.stats(target)?.range().unwrap_or((0.0, 0.0));
        let trs = TrsTree::build(self.trs_params, range, pairs);
        self.secondary
            .insert(target, SecondaryIndex::Hermit { trs: ConcurrentTrsTree::new(trs), host });
        Ok(())
    }

    /// Multi-threaded variant of [`create_hermit_index`](Self::create_hermit_index) (Appendix D.2 /
    /// Fig. 21); enforces the same host-index precondition.
    pub fn create_hermit_index_parallel(
        &mut self,
        target: ColumnId,
        host: ColumnId,
        threads: usize,
    ) -> Result<(), CoreError> {
        self.require_host_index(target, host)?;
        let pairs = self.project_tid_pairs(target, host)?;
        let range = self.heap.stats(target)?.range().unwrap_or((0.0, 0.0));
        let trs = hermit_trs::build_parallel(self.trs_params, range, pairs, threads);
        self.secondary
            .insert(target, SecondaryIndex::Hermit { trs: ConcurrentTrsTree::new(trs), host });
        Ok(())
    }

    /// Create a composite baseline B+-tree on `(leading, value)`,
    /// bulk-loaded from the current table contents and owned by this
    /// database: subsequent inserts maintain it and the query planner can
    /// choose it for 2-conjunct box queries. Returns its registry position.
    pub fn create_composite_baseline(
        &mut self,
        leading: ColumnId,
        value: ColumnId,
    ) -> Result<usize, CoreError> {
        let tree = build_composite_tree(&self.heap, self.scheme, self.pk_col, leading, value)?;
        Ok(self.composites.get_mut().push_baseline(tree, leading, value))
    }

    /// Create a composite Hermit index on `(leading, target)` routed
    /// through `host`: requires a composite baseline on `(leading, host)`
    /// in this database's registry (typed
    /// [`CoreError::MissingCompositeHost`] otherwise). Returns its
    /// registry position.
    pub fn create_composite_hermit(
        &mut self,
        leading: ColumnId,
        target: ColumnId,
        host: ColumnId,
    ) -> Result<usize, CoreError> {
        if self.composites.read().companion_baseline(leading, host).is_none() {
            return Err(CoreError::MissingCompositeHost { leading, host });
        }
        let trs = build_composite_trs(
            &self.heap,
            self.scheme,
            self.pk_col,
            target,
            host,
            self.trs_params,
        )?;
        Ok(self.composites.get_mut().push_hermit(trs, leading, target, host))
    }

    /// The paper's index-creation flow (§3): on `CREATE INDEX`, check the
    /// correlation registry for a qualifying host column that already has
    /// an index; build a Hermit index if one exists, otherwise fall back to
    /// a baseline index. Returns `true` if a Hermit index was created.
    pub fn create_index_auto(
        &mut self,
        target: ColumnId,
        config: &DiscoveryConfig,
    ) -> Result<bool, CoreError> {
        let hosts: Vec<ColumnId> =
            self.secondary.iter().filter(|(_, idx)| !idx.is_hermit()).map(|(&c, _)| c).collect();
        let candidates = match &self.heap {
            Heap::Mem(t) => discover_correlations(&t.read(), target, &hosts, config),
            // Discovery over paged heaps would scan pages; the disk
            // experiment pre-declares its correlation instead.
            Heap::Paged(_) => Vec::new(),
        };
        if let Some(best) = candidates.first() {
            self.create_hermit_index(target, best.host)?;
            Ok(true)
        } else {
            self.create_baseline_index(target, false)?;
            Ok(false)
        }
    }

    /// Project `(target, host, tid)` pairs for TRS-Tree construction,
    /// converting row locations to the database's tid scheme.
    fn project_tid_pairs(
        &self,
        target: ColumnId,
        host: ColumnId,
    ) -> hermit_storage::Result<Vec<(f64, f64, Tid)>> {
        let raw = self.heap.project_pairs(target, host)?;
        match self.scheme {
            TidScheme::Physical => {
                Ok(raw.into_iter().map(|(m, n, loc)| (m, n, Tid::from_loc(loc))).collect())
            }
            TidScheme::Logical => {
                // Need the pk per row; fetch through the heap.
                let mut out = Vec::with_capacity(raw.len());
                for (m, n, loc) in raw {
                    let pk = self.heap.value_f64(loc, self.pk_col)?.unwrap_or(0.0) as i64;
                    out.push((m, n, Tid::from_pk(pk)));
                }
                Ok(out)
            }
        }
    }

    /// Buffer-pool counters of the paged substrate — `(hits, misses,
    /// evictions)` since startup (or the pool's last reset). `None` for the
    /// in-memory heap, which has no pool. The serving layer's `Stats`
    /// exporter reads this.
    pub fn pool_counters(&self) -> Option<(u64, u64, u64)> {
        match &self.heap {
            Heap::Mem(_) => None,
            Heap::Paged(t) => {
                let stats = t.pool().stats();
                Some((stats.hits(), stats.misses(), stats.evictions()))
            }
        }
    }

    /// WAL records appended since the last commit-batch fsync — the depth
    /// of the not-yet-durable tail, bounded by
    /// [`DurabilityConfig::wal_sync_every`](crate::recovery::DurabilityConfig).
    /// `None` for non-durable databases. Takes the WAL guard briefly, so
    /// calling it from a metrics scrape contends with durable DML exactly
    /// like one more statement would.
    pub fn wal_depth(&self) -> Option<usize> {
        self.durability.as_ref().map(|d| d.wal_guard().uncommitted())
    }

    /// Memory report split the way the paper's breakdown figures are.
    pub fn memory_report(&self) -> MemoryReport {
        let mut report = MemoryReport {
            table: self.heap.memory_bytes(),
            existing_indexes: self.primary.read().memory_bytes(),
            new_indexes: 0,
        };
        for (col, index) in &self.secondary {
            if self.existing.contains(col) {
                report.existing_indexes += index.memory_bytes();
            } else {
                report.new_indexes += index.memory_bytes();
            }
        }
        report
    }
}

/// [`PairSource`] adapter so TRS-Tree reorganization can re-scan a
/// database's base table for a (target, host) pair.
pub struct TablePairSource<'a> {
    /// The database to scan.
    pub db: &'a Database,
    /// Target column of the TRS-Tree being reorganized.
    pub target: ColumnId,
    /// Host column of the TRS-Tree being reorganized.
    pub host: ColumnId,
}

impl PairSource for TablePairSource<'_> {
    fn scan_range(&self, lb: f64, ub: f64) -> Vec<(f64, f64, Tid)> {
        let raw = match &self.db.heap {
            Heap::Mem(t) => {
                t.read().project_pairs_in_range(self.target, self.host, lb, ub).unwrap_or_default()
            }
            Heap::Paged(t) => t
                .project_pairs(self.target, self.host)
                .unwrap_or_default()
                .into_iter()
                .filter(|(m, _, _)| *m >= lb && *m <= ub)
                .collect(),
        };
        match self.db.scheme {
            TidScheme::Physical => {
                raw.into_iter().map(|(m, n, loc)| (m, n, Tid::from_loc(loc))).collect()
            }
            TidScheme::Logical => raw
                .into_iter()
                .map(|(m, n, loc)| {
                    let pk =
                        self.db.heap.value_f64(loc, self.db.pk_col).ok().flatten().unwrap_or(0.0)
                            as i64;
                    (m, n, Tid::from_pk(pk))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_storage::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("host"),
            ColumnDef::float("target"),
        ])
    }

    fn populated(scheme: TidScheme, n: usize) -> Database {
        let db = Database::new(schema(), 0, scheme);
        for i in 0..n {
            let m = i as f64;
            db.insert(&[Value::Int(i as i64), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
        }
        db
    }

    #[test]
    fn insert_and_resolve_both_schemes() {
        for scheme in [TidScheme::Logical, TidScheme::Physical] {
            let db = Database::new(schema(), 0, scheme);
            let tid = db.insert(&[Value::Int(7), Value::Float(1.0), Value::Float(2.0)]).unwrap();
            let loc = db.resolve(tid).expect("tid resolves");
            assert_eq!(db.heap().get(loc).unwrap()[0], Value::Int(7));
        }
    }

    #[test]
    fn baseline_index_builds_and_maintains() {
        let mut db = populated(TidScheme::Physical, 1_000);
        db.create_baseline_index(2, false).unwrap();
        let SecondaryIndex::Baseline(tree) = db.index(2).unwrap() else { panic!() };
        assert_eq!(tree.read().len(), 1_000);
        // Subsequent inserts maintain it.
        db.insert(&[Value::Int(5_000), Value::Float(0.0), Value::Float(123.456)]).unwrap();
        let SecondaryIndex::Baseline(tree) = db.index(2).unwrap() else { panic!() };
        assert_eq!(tree.read().len(), 1_001);
        assert!(tree.read().contains_key(&F64Key(123.456)));
    }

    #[test]
    fn hermit_index_requires_host() {
        let mut db = populated(TidScheme::Physical, 100);
        assert_eq!(
            db.create_hermit_index(2, 1),
            Err(CoreError::MissingHostIndex { target: 2, host: 1 }),
            "missing host index must be a typed error, not a panic"
        );
        // The parallel builder enforces the same precondition.
        assert_eq!(
            db.create_hermit_index_parallel(2, 1, 4),
            Err(CoreError::MissingHostIndex { target: 2, host: 1 })
        );
        // A Hermit index on the host does not satisfy it either.
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();
        assert_eq!(
            db.create_hermit_index(3, 2),
            Err(CoreError::MissingHostIndex { target: 3, host: 2 }),
            "a TRS-Tree cannot serve as a host index"
        );
    }

    #[test]
    fn hermit_index_builds_on_host() {
        let mut db = populated(TidScheme::Physical, 10_000);
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();
        let idx = db.index(2).unwrap();
        assert!(idx.is_hermit());
        assert_eq!(idx.host_column(), Some(1));
        // The succinct index must be far smaller than the host B+-tree.
        let host_bytes = db.index(1).unwrap().memory_bytes();
        assert!(
            idx.memory_bytes() * 10 < host_bytes,
            "TRS-Tree ({}) should be ≪ B+-tree ({})",
            idx.memory_bytes(),
            host_bytes
        );
    }

    #[test]
    fn auto_index_picks_hermit_when_correlated() {
        let mut db = populated(TidScheme::Physical, 20_000);
        db.create_baseline_index(1, true).unwrap();
        let used_hermit = db.create_index_auto(2, &DiscoveryConfig::default()).unwrap();
        assert!(used_hermit, "perfectly correlated column must get a Hermit index");
        assert!(db.index(2).unwrap().is_hermit());
    }

    #[test]
    fn auto_index_falls_back_to_baseline() {
        // Host column is uncorrelated noise.
        let mut db = Database::new(schema(), 0, TidScheme::Physical);
        let mut state = 1u64;
        for i in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64;
            db.insert(&[Value::Int(i), Value::Float(noise), Value::Float(i as f64)]).unwrap();
        }
        db.create_baseline_index(1, true).unwrap();
        let used_hermit = db.create_index_auto(2, &DiscoveryConfig::default()).unwrap();
        assert!(!used_hermit, "uncorrelated host must fall back to baseline");
        assert!(!db.index(2).unwrap().is_hermit());
    }

    #[test]
    fn delete_maintains_indexes() {
        let mut db = populated(TidScheme::Logical, 1_000);
        db.create_baseline_index(2, false).unwrap();
        db.delete_by_pk(500).unwrap();
        assert_eq!(db.len(), 999);
        let SecondaryIndex::Baseline(tree) = db.index(2).unwrap() else { panic!() };
        assert!(!tree.read().contains_key(&F64Key(500.0)));
        assert_eq!(
            db.delete_by_pk(500),
            Err(StorageError::PkNotFound { pk: 500 }),
            "double delete reports the missing primary key, not a bogus row location"
        );
    }

    #[test]
    fn memory_report_separates_new_from_existing() {
        let mut db = populated(TidScheme::Physical, 5_000);
        db.create_baseline_index(1, true).unwrap(); // existing (host)
        db.create_hermit_index(2, 1).unwrap(); // new
        let report = db.memory_report();
        assert!(report.table > 0);
        assert!(report.existing_indexes > 0);
        assert!(report.new_indexes > 0);
        assert!(
            report.new_indexes < report.existing_indexes,
            "Hermit new-index share must be small: {report:?}"
        );
        assert_eq!(report.total(), report.table + report.existing_indexes + report.new_indexes);
    }

    #[test]
    fn table_pair_source_scans_ranges() {
        let db = populated(TidScheme::Physical, 1_000);
        let src = TablePairSource { db: &db, target: 2, host: 1 };
        let pairs = src.scan_range(100.0, 110.0);
        assert_eq!(pairs.len(), 11);
        assert!(pairs.iter().all(|(m, n, _)| *n == 2.0 * *m));
    }
}
