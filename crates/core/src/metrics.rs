//! Latency histograms for the serving layer's observability surface.
//!
//! The serving front end (`hermit-server`) needs per-plan-kind latency
//! distributions — the p50/p99 numbers every scale claim in the roadmap is
//! benchmarked against — without a metrics dependency and without taking a
//! lock on the query hot path. [`LatencyHistogram`] is the whole answer:
//! fixed log-scaled buckets (powers of two in microseconds) backed by
//! relaxed atomic counters, so recording is a couple of atomic adds and
//! reading is a consistent-enough snapshot for a stats dump.
//!
//! [`PlanLatencies`] bundles one histogram per [`PlanKind`], matching the
//! planner's coarse classification: a regression that flips queries from
//! the Hermit route onto the scan fallback shows up as mass moving between
//! histograms, not just as a slower aggregate.

use crate::plan::PlanKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of finite buckets: bucket `i` holds samples with
/// `latency_us < 2^i` (after the previous bucket), covering 1 µs … ~8.4 s.
/// The last slot is the overflow (+Inf) bucket.
pub const BUCKETS: usize = 24;

/// A fixed log-scaled latency histogram with atomic counters.
///
/// Bucket upper bounds are `2^i` microseconds for `i in 0..BUCKETS`, plus
/// an overflow bucket. Recording is wait-free (two relaxed `fetch_add`s);
/// all read-side views are snapshots of concurrently-updated counters.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Upper bound (µs) of finite bucket `i`.
    #[inline]
    pub fn bucket_bound_us(i: usize) -> u64 {
        1u64 << i
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = if us == 0 {
            0
        } else {
            let bits = 64 - us.leading_zeros() as usize; // us < 2^bits
            bits.min(BUCKETS)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded latencies, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Estimated quantile in microseconds: the upper bound of the bucket
    /// containing the `q`-quantile sample (the conventional conservative
    /// histogram estimate). 0 when empty; the overflow bucket reports the
    /// largest finite bound.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound_us(i.min(BUCKETS - 1));
            }
        }
        Self::bucket_bound_us(BUCKETS - 1)
    }

    /// Snapshot of the cumulative bucket counts, as `(le_us, cumulative)`
    /// pairs for every *occupied* prefix of the histogram (trailing empty
    /// buckets are dropped; the overflow bucket appears as `u64::MAX`).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let last = match counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut acc = 0u64;
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            acc += c;
            let bound = if i == BUCKETS { u64::MAX } else { Self::bucket_bound_us(i) };
            out.push((bound, acc));
        }
        out
    }
}

/// One [`LatencyHistogram`] per [`PlanKind`], indexed by
/// [`PlanKind::ALL`] order.
#[derive(Debug, Default)]
pub struct PlanLatencies {
    histograms: [LatencyHistogram; PlanKind::ALL.len()],
}

impl PlanLatencies {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one query latency under its plan kind.
    pub fn record(&self, kind: PlanKind, latency: Duration) {
        self.histogram(kind).record(latency);
    }

    /// The histogram for one plan kind.
    pub fn histogram(&self, kind: PlanKind) -> &LatencyHistogram {
        let slot = PlanKind::ALL.iter().position(|k| *k == kind).expect("kind is in ALL");
        &self.histograms[slot]
    }

    /// Iterate `(kind, histogram)` in [`PlanKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (PlanKind, &LatencyHistogram)> {
        PlanKind::ALL.iter().copied().zip(self.histograms.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_scaled() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(0)); // bucket 0 (< 1 µs)
        h.record(Duration::from_micros(1)); // 1 < 2^1
        h.record(Duration::from_micros(3)); // < 4
        h.record(Duration::from_micros(1000)); // < 1024
        h.record(Duration::from_secs(100)); // overflow
        assert_eq!(h.count(), 5);
        let cum = h.cumulative();
        assert_eq!(cum.last().unwrap().0, u64::MAX, "overflow bucket present");
        assert_eq!(cum.last().unwrap().1, 5, "cumulative reaches the count");
        // 1000 µs lands in the le=1024 bucket.
        assert!(cum.iter().any(|&(le, _)| le == 1024));
    }

    #[test]
    fn quantiles_are_bucket_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(5)); // le=8 bucket
        }
        h.record(Duration::from_micros(5_000)); // le=8192 bucket
        assert_eq!(h.quantile_us(0.5), 8);
        assert_eq!(h.quantile_us(0.99), 8);
        assert_eq!(h.quantile_us(1.0), 8192);
        assert!((h.mean_us() - (99.0 * 5.0 + 5_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.cumulative().is_empty());
    }

    #[test]
    fn plan_latencies_route_by_kind() {
        let m = PlanLatencies::new();
        m.record(PlanKind::Hermit, Duration::from_micros(10));
        m.record(PlanKind::Hermit, Duration::from_micros(12));
        m.record(PlanKind::Scan, Duration::from_millis(2));
        assert_eq!(m.histogram(PlanKind::Hermit).count(), 2);
        assert_eq!(m.histogram(PlanKind::Scan).count(), 1);
        assert_eq!(m.histogram(PlanKind::Baseline).count(), 0);
        let kinds: Vec<PlanKind> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, PlanKind::ALL.to_vec());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(Duration::from_micros(t * 1_000 + i % 100));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.cumulative().last().unwrap().1, 40_000);
    }
}
