#![forbid(unsafe_code)]
//! # hermit-core
//!
//! The **Hermit** secondary-indexing mechanism (§3/§5 of the paper), tying
//! together the storage engine, the B+-tree substrate, and the TRS-Tree.
//!
//! A [`Database`] owns one table (in-memory or paged), a primary index, and
//! a set of secondary indexes. Each secondary index is either:
//!
//! * a **baseline** index — a complete B+-tree on the column (what a
//!   conventional RDBMS builds), or
//! * a **Hermit** index — a succinct TRS-Tree that routes queries to a
//!   *host* column's existing baseline index.
//!
//! Lookups on a Hermit-indexed column run the paper's three-phase pipeline
//! (Fig. 3): TRS-Tree search → host-index search (→ optional primary-index
//! resolution under logical pointers) → base-table validation, with
//! per-phase wall-clock accounting so the breakdown figures (10/11/14/15/24)
//! can be regenerated.
//!
//! [`correlation`] implements the discovery workflow of Appendix D.1:
//! screen candidate (target, host) pairs with Pearson/Spearman coefficients
//! over a sample and recommend a host column whose index already exists.

//! [`recovery`] makes the paged substrate restart-survivable:
//! [`Database::checkpoint`] / [`Database::open`] pair a durable page flush
//! and per-index TRS-Tree snapshots with an atomically-written catalog and
//! a CRC-framed write-ahead log for the DML tail (§6 / §7.8).
//!
//! [`query`] and [`plan`] form the unified query surface: a declarative
//! [`Query`] of arbitrary conjuncts is turned into an inspectable, costed
//! [`QueryPlan`] (EXPLAIN via `Display`) choosing among the Hermit route, a
//! baseline index, a composite box scan, or a sequential-scan fallback;
//! [`Database::execute`] and [`Database::execute_batch`] run plans through
//! the scalar and vectorized pipelines respectively.
//!
//! [`txn`] adds multi-statement transactions on top: snapshot-isolation
//! reads, first-writer-wins write locks, WAL commit records, and loser
//! rollback on recovery ([`Database::begin`] / [`Database::commit_txn`] /
//! [`Database::rollback_txn`]).

pub mod batch;
pub mod breakdown;
pub mod composite;
pub mod correlation;
pub mod database;
pub mod error;
pub mod executor;
pub mod index;
pub mod latches;
pub mod metrics;
pub mod plan;
pub mod query;
pub mod recovery;
pub mod shared;
pub mod txn;

pub use batch::BatchOptions;
pub use breakdown::{InsertBreakdown, LookupBreakdown, Phase};
pub use composite::{CompositeIndex, CompositeIndexes};
pub use correlation::{discover_correlations, CorrelationReport, DiscoveryConfig};
pub use database::{Database, Heap, MemoryReport};
pub use error::CoreError;
pub use executor::{QueryResult, RangePredicate};
pub use hermit_txn::{TxnCounters, TxnError};
pub use index::SecondaryIndex;
pub use metrics::{LatencyHistogram, PlanLatencies};
pub use plan::{AccessPath, PlanKind, QueryPlan};
pub use query::Query;
pub use recovery::DurabilityConfig;
pub use shared::{MaintenanceConfig, MaintenanceWorker, SharedDatabase};
