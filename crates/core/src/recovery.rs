//! Checkpoint / recovery for the whole database — §7.8's disk-resident
//! regime made restart-survivable.
//!
//! The paper's disk experiment assumes tuples persist on storage while the
//! index structures live in memory: PostgreSQL owns heap durability, and §6
//! says the TRS-Tree either checkpoints like an in-memory index (relying on
//! write-ahead logging for the tail) or persists like a disk index. This
//! module supplies the RDBMS half of that contract for our paged substrate:
//!
//! * [`Database::checkpoint`] makes a durable cut: buffer pool flushed and
//!   fsynced, every Hermit index snapshotted (the existing TRS-Tree
//!   snapshot v2 format, now written with its own fsync + rename), and a
//!   versioned [`Catalog`] written atomically as the commit point.
//! * A CRC-framed logical WAL ([`hermit_storage::wal`]) captures DML after
//!   the checkpoint; [`Database::wal_commit`] (and the automatic every-N
//!   commit batch) is the fsync boundary.
//! * [`Database::open`] reattaches: pages via [`FilePageStore::open`], the
//!   heap via `PagedTable::reopen` (live rows and `ColumnStats` recomputed
//!   by scan), the primary index and baseline B+-trees rebuilt from one
//!   heap scan, Hermit indexes restored from their epoch-named snapshots
//!   (or rebuilt from the heap when a snapshot is missing/torn), and the
//!   WAL replayed through the ordinary DML path — so every index is
//!   maintained by construction. A torn WAL tail is truncated, never an
//!   error.
//!
//! # Commit points and crash windows
//!
//! ```text
//! ... DML ... ──fsync──> wal commit ──...──> checkpoint (catalog rename)
//! ```
//!
//! * Crash before a WAL commit: statements since the last commit are lost
//!   (bounded by `wal_sync_every`); everything earlier replays.
//! * Crash during checkpoint: the catalog rename is the atomic commit
//!   point. Before it, recovery sees the old catalog + old-epoch WAL and
//!   recovers the pre-checkpoint state; after it, the new catalog ignores
//!   the old-epoch WAL (its effects are inside the checkpoint) — the epoch
//!   fence is what makes "rename, then reset WAL" safe.
//! * The buffer pool *steals*: evictions (and the pool's drop-flush) may
//!   push post-checkpoint page states to the file at any time. Recovery
//!   therefore replays the WAL **idempotently** — per primary key the log
//!   alternates insert/delete, so applying each record only when the
//!   recovered heap does not already reflect it converges on the logged
//!   final state no matter how far the pages ran ahead. The flip side of
//!   redo-only recovery with steal: a statement that was *not* yet
//!   WAL-committed can still survive a crash if its page happened to be
//!   flushed (phantom durability); there is no undo pass to remove it.
//! * A page write that never reached the device despite the catalog
//!   claiming it (a lying device / dropped write) is detected on open by
//!   the catalog's per-page live counts **and content CRCs** whenever the
//!   WAL shows no post-checkpoint DML, and reported as
//!   [`CoreError::Recovery`] rather than silently serving stale rows. (With
//!   post-checkpoint DML in the log, legitimate run-ahead pages are
//!   indistinguishable from dropped writes at page granularity, so the
//!   check stands down and idempotent replay carries correctness.)
//!
//! # What is covered, and what is not
//!
//! Covered: single-statement durability for insert/delete on the paged
//! substrate, index reconstruction (primary, baseline, Hermit,
//! `ColumnStats`), torn-tail WAL recovery, torn-checkpoint detection.
//! Not covered: multi-statement transactions (every statement is its own
//! commit unit), undo of uncommitted statements (see phantom durability
//! above), DDL logging (index definitions become durable at the next
//! checkpoint, not through the WAL), and composite indexes (they are
//! in-memory-substrate only, which the catalog reflects by never recording
//! any). The in-memory substrate itself is rejected with a typed
//! [`CoreError::NotDurable`].
//!
//! Durable databases assume **unique primary keys** (the same assumption
//! `delete_by_pk` and the primary index already make): idempotent replay
//! and the recovery-time ghost-row sweep both key on the pk. If a WAL
//! append or a post-catalog WAL reset fails, the WAL is *poisoned* —
//! subsequent DML and `wal_commit` calls are rejected up front rather than
//! silently accepting statements that could never be recovered; a
//! successful checkpoint clears the condition.

use crate::database::{Database, Heap};
use crate::error::CoreError;
use crate::index::SecondaryIndex;
use crate::latches::{self, LatchedMutex, LatchedRwLock, Witnessed};
use hermit_btree::{BPlusTree, HashPrimaryIndex};
use hermit_storage::paged::{BufferPool, FilePageStore, PageStore, PagedTable};
use hermit_storage::recovery::{write_file_atomic, BaselineDef, Catalog, HermitDef, PageEntry};
use hermit_storage::wal::{read_wal, WalRecord, WalWriter};
use hermit_storage::{ColumnId, F64Key, RowLoc, Schema, StorageError, Tid, TidScheme, Value};
use hermit_trs::{ConcurrentTrsTree, TrsParams, TrsTree};
use parking_lot::RwLockReadGuard;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// File holding the heap pages inside a durability directory.
pub const PAGES_FILE: &str = "pages.db";
/// File holding the checkpoint catalog.
pub const CATALOG_FILE: &str = "catalog.bin";
/// File holding the write-ahead log.
pub const WAL_FILE: &str = "wal.log";

/// Name of a Hermit index's snapshot inside the directory: epoch-suffixed
/// so a snapshot can never be paired with the wrong catalog (a crash
/// between "snapshot written" and "catalog renamed" leaves a file the old
/// catalog simply does not reference).
pub(crate) fn snapshot_name(target: ColumnId, epoch: u64) -> String {
    format!("trs_{target}.e{epoch}.trst")
}

/// Knobs for opening / creating a durable database.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Buffer-pool shards.
    pub pool_shards: usize,
    /// Commit batch: the WAL fsyncs automatically after this many appended
    /// records (1 = every statement durable, at one fsync per statement).
    /// [`Database::wal_commit`] forces the boundary early.
    pub wal_sync_every: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig { pool_pages: 1024, pool_shards: 1, wal_sync_every: 64 }
    }
}

/// Live durability state attached to a [`Database`].
pub(crate) struct Durability {
    dir: PathBuf,
    /// Checkpoint quiescence: DML holds the read side across heap apply +
    /// WAL append; `checkpoint` holds the write side across flush →
    /// snapshots → catalog → WAL reset, so the cut it takes is
    /// statement-atomic.
    quiesce: LatchedRwLock<()>,
    wal: LatchedMutex<WalWriter>,
    /// Epoch of the current catalog/WAL pairing.
    epoch: AtomicU64,
    sync_every: usize,
    /// Raised when the WAL can no longer accept records (an append/fsync
    /// failed, or a checkpoint committed its catalog but could not reset
    /// the log). While poisoned, every DML statement and `wal_commit` is
    /// rejected up front — silently continuing would let statements report
    /// success and then vanish at recovery. A successful checkpoint clears
    /// it (the new catalog captures the heap, and a fresh WAL takes over).
    wal_poisoned: AtomicBool,
}

fn wal_err(e: hermit_storage::RecoveryError) -> StorageError {
    StorageError::Io(format!("wal append failed: {e}"))
}

impl Durability {
    pub(crate) fn quiesce_read(&self) -> Witnessed<RwLockReadGuard<'_, ()>> {
        self.quiesce.read()
    }

    /// Reject DML up front while the WAL is poisoned (checked *before* the
    /// heap apply, so a rejected statement really did nothing).
    pub(crate) fn check_writable(&self) -> hermit_storage::Result<()> {
        if self.wal_poisoned.load(Ordering::Acquire) {
            return Err(StorageError::Io(
                "durability WAL is unavailable after a failed append or checkpoint; \
                 take a checkpoint to restore logging"
                    .into(),
            ));
        }
        Ok(())
    }

    /// The per-statement WAL guard. DML acquires it (after the quiesce
    /// read latch — the same order `checkpoint` uses, so no deadlock) and
    /// holds it across heap-apply **and** append: without that, two
    /// threads racing on the same pk could apply in one order and log in
    /// the other, and replay would reconstruct a state contradicting
    /// acknowledged statements. Durable DML is therefore serialized per
    /// database — the honest cost of a single serial redo log.
    pub(crate) fn wal_guard(&self) -> Witnessed<parking_lot::MutexGuard<'_, WalWriter>> {
        self.wal.lock()
    }

    pub(crate) fn log_insert(
        &self,
        wal: &mut WalWriter,
        row: &[Value],
    ) -> hermit_storage::Result<()> {
        self.log(wal, &WalRecord::Insert { row: row.to_vec() })
    }

    pub(crate) fn log_delete(&self, wal: &mut WalWriter, pk: i64) -> hermit_storage::Result<()> {
        self.log(wal, &WalRecord::Delete { pk })
    }

    /// Append one record, fsyncing when the commit batch fills. Shared by
    /// the auto-commit log-last paths and the transactional log-first
    /// paths (see [`crate::txn`]).
    pub(crate) fn log(&self, wal: &mut WalWriter, rec: &WalRecord) -> hermit_storage::Result<()> {
        let result = wal.append(rec).map_err(wal_err).and_then(|pending| {
            if pending >= self.sync_every {
                wal.commit().map_err(wal_err)
            } else {
                Ok(())
            }
        });
        self.absorb_log_failure(result)
    }

    /// Append the `TxnCommit` record for `txn` and **force** the fsync
    /// boundary regardless of the commit batch: a positive commit
    /// acknowledgement must survive a crash. Routed through
    /// [`WalWriter::append_txn_commit`] so the `wal.txn_commit` fault site
    /// fires.
    pub(crate) fn log_txn_commit(
        &self,
        wal: &mut WalWriter,
        txn: u64,
    ) -> hermit_storage::Result<()> {
        let result =
            wal.append_txn_commit(txn).map_err(wal_err).and_then(|_| wal.commit().map_err(wal_err));
        self.absorb_log_failure(result)
    }

    /// Append the `TxnAbort` record for `txn` on the normal commit batch —
    /// abort durability is an optimization, not a correctness requirement
    /// (recovery rolls losers back without it). Routed through
    /// [`WalWriter::append_txn_abort`] so the `wal.txn_abort` fault site
    /// fires.
    pub(crate) fn log_txn_abort(
        &self,
        wal: &mut WalWriter,
        txn: u64,
    ) -> hermit_storage::Result<()> {
        let result = wal.append_txn_abort(txn).map_err(wal_err).and_then(|pending| {
            if pending >= self.sync_every {
                wal.commit().map_err(wal_err)
            } else {
                Ok(())
            }
        });
        self.absorb_log_failure(result)
    }

    /// Poison the WAL on an append/fsync failure and report the split
    /// state honestly: the write is applied in memory but unlogged, so it
    /// becomes durable only at the next successful checkpoint.
    fn absorb_log_failure(&self, result: hermit_storage::Result<()>) -> hermit_storage::Result<()> {
        if let Err(e) = result {
            self.wal_poisoned.store(true, Ordering::Release);
            return Err(StorageError::Io(format!(
                "statement applied in memory but could not be logged ({e}); it becomes \
                 durable only at the next successful checkpoint, and further DML is \
                 rejected until then"
            )));
        }
        Ok(())
    }
}

/// Encode [`TrsParams`] as the catalog's opaque blob (so a Hermit index
/// whose snapshot is lost is rebuilt with the parameters it was created
/// with, not the defaults).
fn encode_params(p: &TrsParams) -> Vec<u8> {
    let mut out = Vec::with_capacity(56);
    out.extend_from_slice(&(p.node_fanout as u32).to_le_bytes());
    out.extend_from_slice(&(p.max_height as u32).to_le_bytes());
    out.extend_from_slice(&p.outlier_ratio.to_le_bytes());
    out.extend_from_slice(&p.error_bound.to_le_bytes());
    out.extend_from_slice(&p.sampling_fraction.unwrap_or(-1.0).to_le_bytes());
    out.extend_from_slice(&p.split_trigger_ratio.to_le_bytes());
    out.extend_from_slice(&p.merge_trigger_ratio.to_le_bytes());
    out.extend_from_slice(&p.seed.to_le_bytes());
    out
}

fn decode_params(blob: &[u8]) -> Option<TrsParams> {
    if blob.len() != 56 {
        return None;
    }
    let u32_at = |i: usize| u32::from_le_bytes(blob[i..i + 4].try_into().unwrap());
    let f64_at = |i: usize| f64::from_le_bytes(blob[i..i + 8].try_into().unwrap());
    let sampling = f64_at(24);
    let params = TrsParams {
        node_fanout: u32_at(0) as usize,
        max_height: u32_at(4) as usize,
        outlier_ratio: f64_at(8),
        error_bound: f64_at(16),
        sampling_fraction: (sampling >= 0.0).then_some(sampling),
        split_trigger_ratio: f64_at(32),
        merge_trigger_ratio: f64_at(40),
        seed: u64::from_le_bytes(blob[48..56].try_into().unwrap()),
    };
    params.validate().ok().map(|()| params)
}

impl Database {
    /// Create a restart-survivable paged database rooted at `dir`
    /// (`pages.db`, `catalog.bin`, `wal.log`, and one snapshot per Hermit
    /// index live inside it). Fails if `dir` already holds a non-empty page
    /// file — use [`open`](Database::open) to reattach.
    ///
    /// The returned database is already checkpointed (empty), so a crash at
    /// any later point recovers at least the empty table.
    pub fn create_durable(
        schema: Schema,
        pk_col: ColumnId,
        dir: &Path,
        config: &DurabilityConfig,
    ) -> Result<Database, CoreError> {
        std::fs::create_dir_all(dir).map_err(StorageError::from)?;
        let store = Arc::new(FilePageStore::create(&dir.join(PAGES_FILE))?);
        let pool = Arc::new(BufferPool::new_sharded(store, config.pool_pages, config.pool_shards));
        let table = PagedTable::new(schema, pool);
        let mut db = Database::new_paged(table, pk_col);
        db.durability = Some(Durability {
            dir: dir.to_path_buf(),
            quiesce: LatchedRwLock::new(latches::level(10), ()),
            wal: LatchedMutex::new(latches::level(20), WalWriter::create(&dir.join(WAL_FILE), 0)?),
            epoch: AtomicU64::new(0),
            sync_every: config.wal_sync_every.max(1),
            wal_poisoned: AtomicBool::new(false),
        });
        db.checkpoint(dir)?;
        Ok(db)
    }

    /// The durability directory this database checkpoints into, if any.
    pub fn durability_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Force the WAL commit-batch boundary: everything appended so far is
    /// fsynced and will survive a crash. No-op for non-durable databases.
    pub fn wal_commit(&self) -> hermit_storage::Result<()> {
        if let Some(d) = &self.durability {
            d.check_writable()?;
            d.wal.lock().commit().map_err(wal_err)?;
        }
        Ok(())
    }

    /// Take a durable checkpoint of the whole database into `dir`.
    ///
    /// Requires the paged substrate over a [`FilePageStore`] at
    /// `dir/pages.db` (typed [`CoreError::NotDurable`] otherwise). Writers
    /// are quiesced for the duration — the §4.4 background reorganization
    /// worker may keep running, since reorganization never changes index
    /// *membership*. Sequence (each step durable before the next):
    ///
    /// 1. flush + fsync the buffer pool (heap pages), and drain the old
    ///    WAL writer's buffer into the old generation (a failure here
    ///    aborts the checkpoint with the previous catalog + WAL intact);
    /// 2. snapshot every Hermit index to `trs_<col>.e<epoch>.trst`
    ///    (atomic: temp + fsync + rename);
    /// 3. atomically write the catalog naming the new epoch — **the commit
    ///    point**;
    /// 4. reset the WAL to the new epoch (a crash in between is benign: the
    ///    stale WAL's epoch no longer matches and is ignored on open; a
    ///    *failure* of the reset itself poisons the WAL so later DML fails
    ///    loudly instead of logging into a generation recovery ignores);
    /// 5. garbage-collect snapshots and temp files of other epochs.
    pub fn checkpoint(&self, dir: &Path) -> Result<(), CoreError> {
        let Heap::Paged(table) = &self.heap else {
            return Err(CoreError::NotDurable {
                reason: "the in-memory heap has no backing store; only paged databases checkpoint",
            });
        };
        if let Some(d) = &self.durability {
            if d.dir != dir {
                return Err(CoreError::NotDurable {
                    reason: "checkpoint directory does not match the attached durability directory",
                });
            }
        }
        let pages_path = dir.join(PAGES_FILE);
        if table.pool().store().file_path() != Some(pages_path.as_path()) {
            return Err(CoreError::NotDurable {
                reason: "page store is not file-backed at <dir>/pages.db",
            });
        }

        let _quiesce = self.durability.as_ref().map(|d| d.quiesce.write());

        // Open transactions hold physically-applied-but-uncommitted writes;
        // a checkpoint would bake them into the new epoch and then discard
        // the old-epoch WAL records recovery needs to roll them back
        // (phantom commit). Refuse instead. Checked under the quiesce write
        // latch: `begin` on a durable database holds the read side, so no
        // new transaction can slip in after this check.
        let active = self.txns.active();
        if active > 0 {
            return Err(CoreError::OpenTransactions { active });
        }
        table.pool().flush()?;

        // Drain the old writer's buffer into the *old* generation before
        // anything commits: its records will be inside this checkpoint, so
        // the flush is harmless — but letting the old BufWriter drop-flush
        // *after* the later truncate would smuggle stale frames (with
        // valid CRCs!) into the new epoch's log, and recovery would
        // re-apply statements the checkpoint already contains. Doing it
        // before the catalog write means a failure aborts cleanly, old
        // catalog + old WAL still consistent. Skipped while poisoned (the
        // writer is known broken; the heap state being checkpointed is the
        // truth, and a successful reset below un-poisons).
        if let Some(d) = &self.durability {
            if !d.wal_poisoned.load(Ordering::Acquire) {
                d.wal.lock().commit().map_err(wal_err)?;
            }
        }

        let epoch = match &self.durability {
            Some(d) => d.epoch.load(Ordering::Acquire) + 1,
            // Checkpointing a hand-built database: continue the directory's
            // epoch sequence if a catalog exists.
            None => Catalog::read(&dir.join(CATALOG_FILE)).map(|c| c.wal_epoch + 1).unwrap_or(1),
        };

        let mut baselines = Vec::new();
        let mut hermits = Vec::new();
        for (&col, index) in self.secondary.iter() {
            match index {
                SecondaryIndex::Baseline(_) => baselines
                    .push(BaselineDef { column: col, existing: self.existing.contains(&col) }),
                SecondaryIndex::Hermit { trs, host } => {
                    let bytes = trs.snapshot_bytes().map_err(|e| {
                        CoreError::Recovery(format!("snapshot of column {col}: {e}"))
                    })?;
                    write_file_atomic(&dir.join(snapshot_name(col, epoch)), &bytes)
                        .map_err(StorageError::from)?;
                    hermits.push(HermitDef {
                        target: col,
                        host: *host,
                        params: encode_params(&trs.params()),
                    });
                }
            }
        }

        let pages = table.pages();
        let observed = table.page_checkpoint_entries()?;
        let catalog = Catalog {
            schema: table.schema().clone(),
            pk_col: self.pk_col,
            scheme: self.scheme,
            wal_epoch: epoch,
            next_page: table.pool().store().page_count(),
            pages: pages
                .into_iter()
                .zip(observed)
                .map(|(page, (live_rows, crc))| PageEntry { page, live_rows, crc })
                .collect(),
            baselines,
            hermits,
        };
        catalog.write_atomic(&dir.join(CATALOG_FILE))?;

        match &self.durability {
            Some(d) => {
                // The catalog is committed; the old-epoch WAL is now dead
                // weight (its records are inside the checkpoint). If the
                // reset fails, the live writer would keep logging into a
                // generation recovery ignores — poison instead, so every
                // later statement is rejected before it applies.
                let mut wal = d.wal.lock();
                match WalWriter::create(&dir.join(WAL_FILE), epoch) {
                    Ok(fresh) => {
                        // Discard, don't drop: a poisoned old writer can
                        // still hold buffered frames, and a drop-flush
                        // would land them inside the just-truncated file.
                        std::mem::replace(&mut *wal, fresh).discard();
                        d.epoch.store(epoch, Ordering::Release);
                        d.wal_poisoned.store(false, Ordering::Release);
                    }
                    Err(e) => {
                        d.wal_poisoned.store(true, Ordering::Release);
                        return Err(CoreError::Recovery(format!(
                            "checkpoint committed (epoch {epoch}) but the WAL could not be \
                             reset ({e}); DML is rejected until a checkpoint succeeds"
                        )));
                    }
                }
            }
            None => {
                WalWriter::create(&dir.join(WAL_FILE), epoch)?;
            }
        }

        // GC snapshot files from other epochs and orphaned temp siblings
        // (both are torn-checkpoint leftovers the current catalog never
        // references).
        if let Ok(entries) = std::fs::read_dir(dir) {
            let keep = format!(".e{epoch}.trst");
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let stale_snapshot = name.ends_with(".trst") && !name.ends_with(&keep);
                if name.starts_with("trs_") && (stale_snapshot || name.ends_with(".tmp")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Reopen a checkpointed database from `dir`, replaying any WAL tail.
    /// See the module docs for the recovery sequence and guarantees.
    pub fn open(dir: &Path, config: &DurabilityConfig) -> Result<Database, CoreError> {
        let store = Arc::new(FilePageStore::open(&dir.join(PAGES_FILE))?);
        Self::open_with_store(dir, store, config)
    }

    /// [`open`](Database::open) with an injected page store (recovery tests
    /// substitute fault-injecting stores). The store must present the same
    /// pages `dir/pages.db` holds; its allocation watermark is raised to
    /// the catalog's via [`PageStore::reserve`].
    pub fn open_with_store(
        dir: &Path,
        store: Arc<dyn PageStore>,
        config: &DurabilityConfig,
    ) -> Result<Database, CoreError> {
        let catalog = Catalog::read(&dir.join(CATALOG_FILE))?;
        store.reserve(catalog.next_page);
        let pool = Arc::new(BufferPool::new_sharded(store, config.pool_pages, config.pool_shards));
        let page_ids: Vec<u64> = catalog.pages.iter().map(|e| e.page).collect();
        let (table, observed) = PagedTable::reopen(catalog.schema.clone(), pool, page_ids)?;

        // A stale-epoch WAL predates the catalog (its effects are inside
        // the checkpoint) and is safe to reset. So is a missing or
        // header-torn one: only a crash between catalog rename and WAL
        // reset produces those, and the pre-reset content was already
        // inside the checkpoint. A *real* I/O error must propagate —
        // falling through to the reset would truncate a possibly-valid
        // committed log.
        let wal_path = dir.join(WAL_FILE);
        use hermit_storage::RecoveryError;
        let replay = match read_wal(&wal_path) {
            Ok(r) if r.epoch == catalog.wal_epoch => Some(r),
            Ok(_) => None,
            Err(RecoveryError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(RecoveryError::BadMagic) | Err(RecoveryError::Corrupt(_)) => None,
            Err(e) => {
                return Err(CoreError::Recovery(format!(
                    "cannot read the WAL at {}: {e}",
                    wal_path.display()
                )))
            }
        };

        // Torn-checkpoint detection. The durable pages may legitimately run
        // *ahead* of the catalog — post-checkpoint DML reaches the file
        // through evictions and pool flushes — but every such statement
        // also appended a WAL record under the same quiesce latch. So when
        // the same-epoch WAL is empty and untorn (no post-checkpoint DML
        // evidence at all), the pages must match the catalog exactly; a
        // mismatch means a write the checkpoint claimed durable never
        // reached the device (a lying disk / dropped write).
        let quiescent = replay.as_ref().is_some_and(|r| r.records.is_empty() && !r.torn_tail);
        if quiescent {
            for (entry, &(live, crc)) in catalog.pages.iter().zip(&observed) {
                if entry.live_rows != live || entry.crc != crc {
                    return Err(CoreError::Recovery(format!(
                        "page {} does not match the catalog ({live} live rows / crc {crc:#x} on \
                         disk vs {} / {:#x} recorded) and no post-checkpoint DML exists: torn \
                         checkpoint (a page write never reached the device)",
                        entry.page, entry.live_rows, entry.crc
                    )));
                }
            }
        }

        let mut db = Database::new_paged(table, catalog.pk_col);
        db.scheme = catalog.scheme;
        db.rebuild_indexes(&catalog, dir)?;

        // Replay the WAL tail through the ordinary DML path (durability not
        // yet attached, so replay does not re-log). Replay is *idempotent*
        // per primary key: a record is applied only when the recovered heap
        // does not already reflect it, because any prefix of these
        // statements may have reached the page file before the crash (see
        // the torn-checkpoint note above). Per pk the log alternates
        // insert/delete, so apply-when-applicable converges on the logged
        // final state regardless of how far the pages ran ahead.
        //
        // Transactional records extend this to redo-then-undo (ARIES-lite;
        // see `crate::txn`): *every* record redoes in order — including
        // those of transactions that never committed, since the pool may
        // have stolen any prefix of their effects — while each open
        // transaction accumulates its undo list. `TxnCommit` closes a
        // winner, `TxnAbort` rolls its transaction back at that log
        // position, and whoever is still open at end of log is a loser
        // rolled back last.
        let writer = match replay {
            Some(replay) => {
                let width = catalog.schema.width();
                fn redo_insert(
                    db: &Database,
                    row: &[Value],
                    width: usize,
                    pk_col: ColumnId,
                ) -> Result<i64, CoreError> {
                    if row.len() != width {
                        return Err(CoreError::Recovery(format!(
                            "wal insert record arity {} does not match schema width {width}",
                            row.len()
                        )));
                    }
                    let pk = row.get(pk_col).and_then(|v| v.as_i64()).ok_or_else(|| {
                        CoreError::Recovery("wal insert record lacks a pk".into())
                    })?;
                    let existing = db.primary().get(pk);
                    match existing {
                        None => {
                            db.insert(row).map_err(|e| {
                                CoreError::Recovery(format!("wal insert replay failed: {e}"))
                            })?;
                        }
                        Some(loc) => {
                            // The heap ran ahead of the checkpoint (steal),
                            // but the snapshot-restored Hermit trees are
                            // strictly *at* the checkpoint — every
                            // same-epoch record postdates them. Re-apply
                            // index-only maintenance or the entry is a
                            // permanent false negative. (Baseline trees and
                            // the primary are rebuilt from the heap and
                            // already carry it.)
                            db.reapply_hermit_insert(row, pk, loc);
                        }
                    }
                    Ok(pk)
                }
                fn redo_delete(db: &Database, pk: i64) -> Result<(), CoreError> {
                    // A delete the heap already reflects is skipped
                    // entirely: a Hermit entry the snapshot still carries
                    // for it is a benign stale tid — resolution/validation
                    // filters it, exactly like any other dead candidate.
                    if db.primary().get(pk).is_some() {
                        db.delete_by_pk(pk).map_err(|e| {
                            CoreError::Recovery(format!("wal delete replay failed: {e}"))
                        })?;
                    }
                    Ok(())
                }
                let mut open_txns: std::collections::HashMap<u64, Vec<hermit_txn::Undo>> =
                    std::collections::HashMap::new();
                let mut max_txn = 0u64;
                for rec in &replay.records {
                    match rec {
                        WalRecord::Insert { row } => {
                            redo_insert(&db, row, width, catalog.pk_col)?;
                        }
                        WalRecord::Delete { pk } => redo_delete(&db, *pk)?,
                        WalRecord::TxnBegin { txn } => {
                            max_txn = max_txn.max(*txn);
                            open_txns.entry(*txn).or_default();
                        }
                        WalRecord::TxnInsert { txn, row } => {
                            max_txn = max_txn.max(*txn);
                            let pk = redo_insert(&db, row, width, catalog.pk_col)?;
                            open_txns
                                .entry(*txn)
                                .or_default()
                                .push(hermit_txn::Undo::Insert { pk });
                        }
                        WalRecord::TxnDelete { txn, pk, row } => {
                            max_txn = max_txn.max(*txn);
                            redo_delete(&db, *pk)?;
                            open_txns
                                .entry(*txn)
                                .or_default()
                                .push(hermit_txn::Undo::Delete { pk: *pk, row: row.clone() });
                        }
                        WalRecord::TxnCommit { txn } => {
                            max_txn = max_txn.max(*txn);
                            open_txns.remove(txn);
                        }
                        WalRecord::TxnAbort { txn } => {
                            max_txn = max_txn.max(*txn);
                            if let Some(undo) = open_txns.remove(txn) {
                                db.apply_undo(&undo)?;
                            }
                        }
                    }
                }
                // End of log: everyone still open is a loser. Each txn's
                // undo applies in reverse; across transactions the order is
                // immaterial (the lock table kept their pk sets disjoint),
                // sorted only for determinism.
                let mut losers: Vec<(u64, Vec<hermit_txn::Undo>)> = open_txns.into_iter().collect();
                losers.sort_by_key(|(txn, _)| *txn);
                for (_, undo) in &losers {
                    db.apply_undo(undo)?;
                }
                // Never reuse an id that still appears in this log
                // generation.
                db.txns().seed_next_id(max_txn + 1);
                WalWriter::open_append(&wal_path, replay.epoch, replay.valid_len)?
            }
            None => WalWriter::create(&wal_path, catalog.wal_epoch)?,
        };

        db.durability = Some(Durability {
            dir: dir.to_path_buf(),
            quiesce: LatchedRwLock::new(latches::level(10), ()),
            wal: LatchedMutex::new(latches::level(20), writer),
            epoch: AtomicU64::new(catalog.wal_epoch),
            sync_every: config.wal_sync_every.max(1),
            wal_poisoned: AtomicBool::new(false),
        });
        Ok(db)
    }

    /// Index-only redo for a WAL insert whose row already reached the heap
    /// before the crash: push the entry into every Hermit index, keyed to
    /// the existing row's location. See the replay loop in
    /// [`open_with_store`](Database::open_with_store).
    fn reapply_hermit_insert(&self, row: &[Value], pk: i64, loc: hermit_storage::RowLoc) {
        let tid = match self.scheme {
            TidScheme::Physical => Tid::from_loc(loc),
            TidScheme::Logical => Tid::from_pk(pk),
        };
        for (&col, index) in self.secondary.iter() {
            if let SecondaryIndex::Hermit { trs, host } = index {
                if let (Some(m), Some(n)) = (row[col].as_f64(), row[*host].as_f64()) {
                    trs.insert(m, n, tid);
                }
            }
        }
    }

    /// Rebuild the in-memory side from the recovered heap: primary index
    /// and every baseline B+-tree from **one** heap scan; Hermit indexes
    /// from their epoch-named snapshots, falling back to a fresh build from
    /// the heap (with the catalog's recorded parameters) when a snapshot is
    /// missing or torn.
    fn rebuild_indexes(&mut self, catalog: &Catalog, dir: &Path) -> Result<(), CoreError> {
        let pk_col = self.pk_col;
        let scheme = self.scheme;
        let base_cols: Vec<ColumnId> = catalog.baselines.iter().map(|b| b.column).collect();
        let mut primary;
        let mut entries: Vec<Vec<(F64Key, Tid)>>;
        loop {
            primary = HashPrimaryIndex::with_capacity(self.heap.len());
            entries = vec![Vec::new(); base_cols.len()];
            // Because the pool steals at page granularity, a lost delete
            // tombstone (page never flushed) can coexist with a flushed
            // re-insert of the same pk: two live heap rows for one key.
            // The later one (pages scan in insert order) is the newer
            // version; the earlier is a ghost whose tombstone the crash
            // ate. Tombstone it now, or replay's per-pk idempotence would
            // leave it live forever.
            let mut ghosts: Vec<RowLoc> = Vec::new();
            self.heap.for_each_live_row(|loc, row| {
                let pk = row.value(pk_col).as_i64().unwrap_or(0);
                if let Some(old) = primary.get(pk) {
                    ghosts.push(old);
                }
                primary.insert(pk, loc);
                let tid = match scheme {
                    TidScheme::Physical => Tid::from_loc(loc),
                    TidScheme::Logical => Tid::from_pk(pk),
                };
                for (slot, &col) in base_cols.iter().enumerate() {
                    if let Some(k) = row.f64(col) {
                        entries[slot].push((F64Key(k), tid));
                    }
                }
                true
            });
            if ghosts.is_empty() {
                break;
            }
            // Rare path: drop the ghosts (fixing live counts and stats),
            // then rebuild from the now-clean heap — the pass-1 entries
            // still reference the ghost rows.
            let Heap::Paged(table) = &self.heap else { unreachable!("recovery is paged-only") };
            for loc in ghosts {
                table.delete(loc)?;
            }
        }
        self.primary = LatchedRwLock::new(latches::level(50), primary);
        for (slot, def) in catalog.baselines.iter().enumerate() {
            let mut e = std::mem::take(&mut entries[slot]);
            e.sort_by_key(|entry| entry.0);
            self.secondary.insert(def.column, SecondaryIndex::baseline(BPlusTree::bulk_load(e)));
            if def.existing && !self.existing.contains(&def.column) {
                self.existing.push(def.column);
            }
        }
        for def in &catalog.hermits {
            let snapshot = dir.join(snapshot_name(def.target, catalog.wal_epoch));
            match TrsTree::restore(&snapshot) {
                Ok(tree) => {
                    self.secondary.insert(
                        def.target,
                        SecondaryIndex::Hermit {
                            trs: ConcurrentTrsTree::new(tree),
                            host: def.host,
                        },
                    );
                }
                Err(_) => {
                    // Missing or torn snapshot: rebuild from the recovered
                    // heap, with the parameters the index was created with.
                    let saved = self.trs_params;
                    self.trs_params = decode_params(&def.params).unwrap_or_default();
                    let built = self.create_hermit_index(def.target, def.host);
                    self.trs_params = saved;
                    built?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_blob_roundtrip() {
        let p = TrsParams {
            node_fanout: 4,
            max_height: 7,
            error_bound: 3.25,
            sampling_fraction: Some(0.05),
            seed: 42,
            ..Default::default()
        };
        assert_eq!(decode_params(&encode_params(&p)), Some(p));
        let none = TrsParams { sampling_fraction: None, ..Default::default() };
        assert_eq!(decode_params(&encode_params(&none)), Some(none));
        assert_eq!(decode_params(&[1, 2, 3]), None, "short blob rejected");
        let mut bad = encode_params(&TrsParams::default());
        bad[0] = 0; // node_fanout = 0 fails validation
        assert_eq!(decode_params(&bad), None);
    }
}
