//! Multi-column secondary indexes (§3 of the paper).
//!
//! > "Suppose that two columns A and M on a table are queried together
//! > frequently, so an index on (A, M) is desirable. Hermit can utilize a
//! > host index on (A, N) and the correlation between M and N, to answer
//! > queries on A and M."
//!
//! This module adds that capability: composite B+-tree indexes keyed on a
//! *(leading, value)* column pair, and composite Hermit indexes where the
//! value column routes through a correlated host column that shares the
//! same leading column. A *box* query — a conjunction of a leading-column
//! range and a value-column range — then runs either directly on the
//! composite baseline index or through the TRS-Tree + composite host
//! pipeline.
//!
//! Key layout: lexicographic `(leading, value)` pairs. A box query scans
//! the leading range and filters the second dimension in-index, which is
//! exactly what a conventional RDBMS does with a composite B+-tree when
//! the leading predicate is the more selective one.

use crate::breakdown::LookupBreakdown;
use crate::database::{Database, Heap};
use crate::executor::{QueryResult, RangePredicate};
use hermit_btree::BPlusTree;
use hermit_storage::{ColumnId, F64Key, StorageError, Tid, TidScheme};
use hermit_trs::{TrsParams, TrsTree};
use std::time::Instant;

/// A composite key: (leading column value, second column value), ordered
/// lexicographically (derived `Ord` on the tuple).
pub type CompositeKey = (F64Key, F64Key);

/// A two-column secondary index.
pub enum CompositeIndex {
    /// Complete composite B+-tree on `(leading, value)`.
    Baseline {
        /// The tree, keyed lexicographically.
        tree: BPlusTree<CompositeKey, Tid>,
        /// Leading column id.
        leading: ColumnId,
        /// Second (value) column id.
        value: ColumnId,
    },
    /// Hermit composite index: a TRS-Tree on `target → host` plus the name
    /// of a composite baseline index on `(leading, host)` that serves the
    /// translated probes.
    Hermit {
        /// Correlation structure from the target column to the host column.
        trs: TrsTree,
        /// Leading column id (shared with the host index).
        leading: ColumnId,
        /// Target (indexed) column id.
        target: ColumnId,
        /// Host column id.
        host: ColumnId,
    },
}

impl CompositeIndex {
    /// Heap bytes held by the index structure.
    pub fn memory_bytes(&self) -> usize {
        match self {
            CompositeIndex::Baseline { tree, .. } => tree.memory_bytes(),
            CompositeIndex::Hermit { trs, .. } => trs.memory_bytes(),
        }
    }

    /// True for the Hermit variant.
    pub fn is_hermit(&self) -> bool {
        matches!(self, CompositeIndex::Hermit { .. })
    }
}

/// Composite-index registry and executor, layered over [`Database`].
///
/// Kept separate from the single-column path so the core executor stays
/// exactly the paper's Fig. 3 pipeline; a composite database wraps the two.
pub struct CompositeIndexes {
    indexes: Vec<CompositeIndex>,
}

impl Default for CompositeIndexes {
    fn default() -> Self {
        Self::new()
    }
}

impl CompositeIndexes {
    /// Empty registry.
    pub fn new() -> Self {
        CompositeIndexes { indexes: Vec::new() }
    }

    /// Number of composite indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True if no composite indexes exist.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Borrow an index by position.
    pub fn get(&self, i: usize) -> Option<&CompositeIndex> {
        self.indexes.get(i)
    }

    /// Mutable access for background maintenance (composite Hermit
    /// reorganization under the registry write latch).
    pub(crate) fn get_mut_for_maintenance(&mut self, i: usize) -> Option<&mut CompositeIndex> {
        self.indexes.get_mut(i)
    }

    /// Registry position of the composite baseline index on
    /// `(leading, host)`, if one exists — the companion a composite Hermit
    /// index routes its translated probes through.
    pub fn companion_baseline(&self, leading: ColumnId, host: ColumnId) -> Option<usize> {
        self.indexes.iter().position(|idx| {
            matches!(
                idx,
                CompositeIndex::Baseline { leading: l, value: v, .. }
                    if *l == leading && *v == host
            )
        })
    }

    /// Build a composite baseline index on `(leading, value)` over the
    /// current contents of `db`. Returns its registry position.
    pub fn create_baseline(
        &mut self,
        db: &Database,
        leading: ColumnId,
        value: ColumnId,
    ) -> hermit_storage::Result<usize> {
        let tree = build_composite_tree(db.heap(), db.scheme(), db.pk_col(), leading, value)?;
        Ok(self.push_baseline(tree, leading, value))
    }

    /// Register a built composite baseline tree; returns its position.
    pub(crate) fn push_baseline(
        &mut self,
        tree: BPlusTree<CompositeKey, Tid>,
        leading: ColumnId,
        value: ColumnId,
    ) -> usize {
        self.indexes.push(CompositeIndex::Baseline { tree, leading, value });
        self.indexes.len() - 1
    }

    /// Register a built composite Hermit index; returns its position.
    pub(crate) fn push_hermit(
        &mut self,
        trs: TrsTree,
        leading: ColumnId,
        target: ColumnId,
        host: ColumnId,
    ) -> usize {
        self.indexes.push(CompositeIndex::Hermit { trs, leading, target, host });
        self.indexes.len() - 1
    }

    /// Build a composite Hermit index on `(leading, target)` routed through
    /// the host column: requires that a composite baseline on
    /// `(leading, host)` already exists in this registry (the paper's
    /// precondition, composite form). Returns its registry position.
    pub fn create_hermit(
        &mut self,
        db: &Database,
        leading: ColumnId,
        target: ColumnId,
        host: ColumnId,
        params: TrsParams,
    ) -> hermit_storage::Result<usize> {
        assert!(
            self.companion_baseline(leading, host).is_some(),
            "a composite baseline index on (leading={leading}, host={host}) must exist first"
        );
        let trs = build_composite_trs(db.heap(), db.scheme(), db.pk_col(), target, host, params)?;
        Ok(self.push_hermit(trs, leading, target, host))
    }

    /// Maintain all composite indexes for a newly-inserted row.
    pub fn insert_row(&mut self, db: &Database, row: &[hermit_storage::Value], tid: Tid) {
        let _ = db;
        self.maintain_insert(row, tid);
    }

    /// Maintain all composite indexes for a newly-inserted row (the
    /// database-agnostic core of [`insert_row`](Self::insert_row); called
    /// by [`Database::insert_timed`] for the registry the database owns).
    pub fn maintain_insert(&mut self, row: &[hermit_storage::Value], tid: Tid) {
        for index in &mut self.indexes {
            match index {
                CompositeIndex::Baseline { tree, leading, value } => {
                    if let (Some(l), Some(v)) = (row[*leading].as_f64(), row[*value].as_f64()) {
                        tree.insert((F64Key(l), F64Key(v)), tid);
                    }
                }
                CompositeIndex::Hermit { trs, target, host, .. } => {
                    if let (Some(m), Some(n)) = (row[*target].as_f64(), row[*host].as_f64()) {
                        trs.insert(m, n, tid);
                    }
                }
            }
        }
    }

    /// Maintain all composite indexes for a row being deleted: exact key
    /// removal on baselines, TRS-Tree tombstoning on Hermit indexes (the
    /// same contract as the single-column indexes in
    /// [`Database::delete_by_pk`]).
    pub fn maintain_delete(&mut self, row: &[hermit_storage::Value], tid: Tid) {
        for index in &mut self.indexes {
            match index {
                CompositeIndex::Baseline { tree, leading, value } => {
                    if let (Some(l), Some(v)) = (row[*leading].as_f64(), row[*value].as_f64()) {
                        tree.remove(&(F64Key(l), F64Key(v)), &tid);
                    }
                }
                CompositeIndex::Hermit { trs, target, .. } => {
                    if let Some(m) = row[*target].as_f64() {
                        trs.delete(m, tid);
                    }
                }
            }
        }
    }

    /// Phases 1–2 of a box query against the index at `idx`: gather
    /// candidate tids into `candidates`, recording per-phase time in
    /// `breakdown`. Baseline indexes box-scan directly; Hermit indexes
    /// translate the value predicate through the TRS-Tree and box-scan the
    /// companion `(leading, host)` baseline with each translated range.
    ///
    /// Returns `false` when `idx` does not exist or a Hermit index's
    /// companion baseline is missing — the caller treats that as an empty
    /// candidate set. The planner and both executors (scalar
    /// [`Database::execute_plan`], batched [`Database::execute_plans`])
    /// share this path.
    pub(crate) fn gather_box_candidates(
        &self,
        idx: usize,
        leading_pred: RangePredicate,
        value_pred: RangePredicate,
        breakdown: &mut LookupBreakdown,
        candidates: &mut Vec<Tid>,
    ) -> bool {
        let Some(index) = self.indexes.get(idx) else { return false };
        match index {
            CompositeIndex::Baseline { tree, .. } => {
                let t0 = Instant::now();
                scan_box(tree, &leading_pred, &value_pred, |tid| candidates.push(tid));
                breakdown.host_index += t0.elapsed();
            }
            CompositeIndex::Hermit { trs, leading, host, .. } => {
                // Phase 1: TRS-Tree translation of the value predicate.
                let t0 = Instant::now();
                let approx = trs.lookup(value_pred.lb, value_pred.ub);
                breakdown.trs_tree += t0.elapsed();

                // Phase 2: box probes on the (leading, host) baseline.
                let t1 = Instant::now();
                let Some(companion) = self.companion_baseline(*leading, *host) else {
                    return false;
                };
                let Some(CompositeIndex::Baseline { tree, .. }) = self.indexes.get(companion)
                else {
                    return false;
                };
                candidates.extend_from_slice(&approx.tids);
                let had_outliers = !candidates.is_empty();
                for (lo, hi) in &approx.ranges {
                    let host_pred = RangePredicate { column: *host, lb: *lo, ub: *hi };
                    scan_box(tree, &leading_pred, &host_pred, |tid| candidates.push(tid));
                }
                if had_outliers {
                    candidates.sort_unstable();
                    candidates.dedup();
                }
                breakdown.host_index += t1.elapsed();
            }
        }
        true
    }

    /// Execute a box query — `leading ∈ [l.lb, l.ub] AND value ∈ [v.lb,
    /// v.ub]` — against the composite index at `idx`.
    ///
    /// The baseline path answers from the composite tree directly; the
    /// Hermit path translates the value predicate through the TRS-Tree,
    /// probes the companion `(leading, host)` baseline with the box, and
    /// validates at the base table (the three-phase pipeline in composite
    /// form).
    pub fn lookup_box(
        &self,
        db: &Database,
        idx: usize,
        leading_pred: RangePredicate,
        value_pred: RangePredicate,
    ) -> QueryResult {
        let mut result = QueryResult::default();
        let mut candidates: Vec<Tid> = Vec::new();
        if !self.gather_box_candidates(
            idx,
            leading_pred,
            value_pred,
            &mut result.breakdown,
            &mut candidates,
        ) {
            return result;
        }
        let validate_value = self.indexes.get(idx).map(CompositeIndex::is_hermit).unwrap_or(false);
        finish(db, candidates, value_pred, Some(leading_pred), validate_value, &mut result);
        result
    }

    /// Total heap bytes across all composite indexes.
    pub fn memory_bytes(&self) -> usize {
        self.indexes.iter().map(|i| i.memory_bytes()).sum()
    }
}

/// Scan the composite tree over the leading range, filtering the second
/// dimension, yielding tids.
fn scan_box(
    tree: &BPlusTree<CompositeKey, Tid>,
    leading: &RangePredicate,
    value: &RangePredicate,
    mut f: impl FnMut(Tid),
) {
    let lo = (F64Key(leading.lb), F64Key(f64::NEG_INFINITY));
    let hi = (F64Key(leading.ub), F64Key(f64::INFINITY));
    tree.for_each_in_range(&lo, &hi, |key, tid| {
        if key.1 .0 >= value.lb && key.1 .0 <= value.ub {
            f(*tid);
        }
    });
}

/// Shared tail: resolve tids and validate both predicates at the base
/// table. Mirrors the single-column executor's phases 3–4.
fn finish(
    db: &Database,
    candidates: Vec<Tid>,
    value_pred: RangePredicate,
    leading_pred: Option<RangePredicate>,
    validate_value: bool,
    result: &mut QueryResult,
) {
    let locs: Vec<hermit_storage::RowLoc> = match db.scheme() {
        TidScheme::Physical => candidates.into_iter().map(|t| t.as_loc()).collect(),
        TidScheme::Logical => {
            let t = Instant::now();
            let primary = db.primary();
            let locs = candidates
                .into_iter()
                .filter_map(|tid| {
                    let loc = primary.get(tid.as_pk());
                    if loc.is_none() {
                        result.unresolved += 1;
                    }
                    loc
                })
                .collect();
            result.breakdown.primary_index += t.elapsed();
            locs
        }
    };
    let t = Instant::now();
    for loc in locs {
        let value_ok = if validate_value {
            match db.heap().value_f64(loc, value_pred.column) {
                Ok(v) => value_pred.matches(v),
                Err(_) => {
                    result.unresolved += 1;
                    continue;
                }
            }
        } else {
            true
        };
        let leading_ok = leading_pred.is_none_or(|p| {
            db.heap().value_f64(loc, p.column).map(|v| p.matches(v)).unwrap_or(false)
        });
        if value_ok && leading_ok {
            result.rows.push(loc);
        } else {
            result.false_positives += 1;
        }
    }
    result.breakdown.base_table += t.elapsed();
}

/// Bulk-load a composite `(leading, value)` B+-tree from a heap. Shared by
/// the standalone registry's [`CompositeIndexes::create_baseline`] and the
/// database-owned [`Database::create_composite_baseline`].
pub(crate) fn build_composite_tree(
    heap: &Heap,
    scheme: TidScheme,
    pk_col: ColumnId,
    leading: ColumnId,
    value: ColumnId,
) -> hermit_storage::Result<BPlusTree<CompositeKey, Tid>> {
    let mut entries: Vec<(CompositeKey, Tid)> = Vec::with_capacity(heap.len());
    for_each_heap_pair(heap, scheme, pk_col, leading, value, |lead, val, tid| {
        entries.push(((F64Key(lead), F64Key(val)), tid));
    })?;
    entries.sort_by_key(|e| e.0);
    Ok(BPlusTree::bulk_load(entries))
}

/// Build the TRS-Tree of a composite Hermit index over `target → host`
/// pairs (the leading column plays no role in the correlation itself).
/// Shared by [`CompositeIndexes::create_hermit`] and
/// [`Database::create_composite_hermit`].
pub(crate) fn build_composite_trs(
    heap: &Heap,
    scheme: TidScheme,
    pk_col: ColumnId,
    target: ColumnId,
    host: ColumnId,
    params: TrsParams,
) -> hermit_storage::Result<TrsTree> {
    let mut pairs: Vec<(f64, f64, Tid)> = Vec::with_capacity(heap.len());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for_each_heap_pair(heap, scheme, pk_col, target, host, |t, h, tid| {
        lo = lo.min(t);
        hi = hi.max(t);
        pairs.push((t, h, tid));
    })?;
    if pairs.is_empty() {
        lo = 0.0;
        hi = 0.0;
    }
    Ok(TrsTree::build(params, (lo, hi), pairs))
}

/// Visit `(a, b, tid)` for every live row, skipping NULLs. Split out at
/// heap level so [`Database`]-owned composite creation can run while the
/// database is mutably borrowed.
pub(crate) fn for_each_heap_pair(
    heap: &Heap,
    scheme: TidScheme,
    pk_col: ColumnId,
    a: ColumnId,
    b: ColumnId,
    mut f: impl FnMut(f64, f64, Tid),
) -> hermit_storage::Result<()> {
    match heap {
        Heap::Mem(table) => {
            let table = table.read();
            let ca = table.column(a)?;
            let cb = table.column(b)?;
            let cpk = table.column(pk_col)?;
            for loc in table.scan() {
                let i = loc.index();
                if let (Some(x), Some(y)) = (ca.get_f64(i), cb.get_f64(i)) {
                    let tid = match scheme {
                        TidScheme::Physical => Tid::from_loc(loc),
                        TidScheme::Logical => Tid::from_pk(cpk.get_f64(i).unwrap_or(0.0) as i64),
                    };
                    f(x, y, tid);
                }
            }
            Ok(())
        }
        Heap::Paged(_) => Err(StorageError::Io(
            "composite indexes are implemented for the in-memory substrate".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_storage::{ColumnDef, Schema, Value};

    /// Stock-like table: time (pk), dj (host), sp (target, ≈ dj/8).
    fn stock_db(scheme: TidScheme, n: usize) -> Database {
        let schema = Schema::new(vec![
            ColumnDef::int("time"),
            ColumnDef::float("dj"),
            ColumnDef::float("sp"),
        ]);
        let db = Database::new(schema, 0, scheme);
        for t in 0..n {
            // Slow upward drift with deterministic wiggle.
            let dj = 3_000.0 + t as f64 * 0.5 + ((t % 97) as f64 - 48.0);
            let sp = dj / 8.0 + ((t % 13) as f64 - 6.0) * 0.05;
            db.insert(&[Value::Int(t as i64), Value::Float(dj), Value::Float(sp)]).unwrap();
        }
        db
    }

    fn ground_truth(db: &Database, tl: f64, tu: f64, sl: f64, su: f64) -> usize {
        let Heap::Mem(table) = db.heap() else { unreachable!() };
        let table = table.read();
        let time = table.column(0).unwrap();
        let sp = table.column(2).unwrap();
        table
            .scan()
            .filter(|loc| {
                let i = loc.index();
                time.get_f64(i).is_some_and(|t| t >= tl && t <= tu)
                    && sp.get_f64(i).is_some_and(|s| s >= sl && s <= su)
            })
            .count()
    }

    #[test]
    fn composite_baseline_box_query_exact() {
        let db = stock_db(TidScheme::Physical, 20_000);
        let mut comp = CompositeIndexes::new();
        let idx = comp.create_baseline(&db, 0, 2).unwrap();
        let r = comp.lookup_box(
            &db,
            idx,
            RangePredicate::range(0, 5_000.0, 10_000.0),
            RangePredicate::range(2, 700.0, 800.0),
        );
        assert_eq!(r.rows.len(), ground_truth(&db, 5_000.0, 10_000.0, 700.0, 800.0));
        assert!(r.rows.len() > 100, "box should be non-trivial: {}", r.rows.len());
    }

    #[test]
    fn composite_hermit_matches_composite_baseline() {
        for scheme in [TidScheme::Physical, TidScheme::Logical] {
            let db = stock_db(scheme, 20_000);
            let mut comp = CompositeIndexes::new();
            // Host: (time, dj). Direct: (time, sp). Hermit: sp → dj via host.
            comp.create_baseline(&db, 0, 1).unwrap();
            let direct = comp.create_baseline(&db, 0, 2).unwrap();
            let hermit = comp.create_hermit(&db, 0, 2, 1, TrsParams::default()).unwrap();

            for (tl, tu, sl, su) in [
                (1_000.0, 4_000.0, 500.0, 600.0),
                (0.0, 20_000.0, 800.0, 820.0),
                (15_000.0, 16_000.0, 0.0, 10_000.0),
                (7.0, 7.0, 0.0, 10_000.0),
            ] {
                let a = comp.lookup_box(
                    &db,
                    direct,
                    RangePredicate::range(0, tl, tu),
                    RangePredicate::range(2, sl, su),
                );
                let b = comp.lookup_box(
                    &db,
                    hermit,
                    RangePredicate::range(0, tl, tu),
                    RangePredicate::range(2, sl, su),
                );
                let mut ra = a.rows.clone();
                let mut rb = b.rows.clone();
                ra.sort();
                rb.sort();
                assert_eq!(ra, rb, "{scheme:?} box ([{tl},{tu}] × [{sl},{su}])");
            }
        }
    }

    #[test]
    fn composite_hermit_is_succinct() {
        let db = stock_db(TidScheme::Physical, 20_000);
        let mut comp = CompositeIndexes::new();
        comp.create_baseline(&db, 0, 1).unwrap();
        let direct = comp.create_baseline(&db, 0, 2).unwrap();
        let hermit = comp.create_hermit(&db, 0, 2, 1, TrsParams::default()).unwrap();
        let direct_bytes = comp.get(direct).unwrap().memory_bytes();
        let hermit_bytes = comp.get(hermit).unwrap().memory_bytes();
        assert!(
            hermit_bytes * 5 < direct_bytes,
            "composite TRS-Tree ({hermit_bytes}) must be ≪ composite B+-tree ({direct_bytes})"
        );
    }

    #[test]
    fn composite_insert_maintenance() {
        let db = stock_db(TidScheme::Physical, 5_000);
        let mut comp = CompositeIndexes::new();
        comp.create_baseline(&db, 0, 1).unwrap();
        let hermit = comp.create_hermit(&db, 0, 2, 1, TrsParams::default()).unwrap();
        // Insert a fresh row with an off-model sp (outlier).
        let row = vec![Value::Int(5_000), Value::Float(6_000.0), Value::Float(123_456.0)];
        let tid = db.insert(&row).unwrap();
        comp.insert_row(&db, &row, tid);
        let r = comp.lookup_box(
            &db,
            hermit,
            RangePredicate::range(0, 4_999.0, 5_001.0),
            RangePredicate::range(2, 123_000.0, 124_000.0),
        );
        assert_eq!(r.rows.len(), 1, "outlier insert must be reachable through the box path");
    }

    #[test]
    fn hermit_requires_matching_host() {
        let db = stock_db(TidScheme::Physical, 100);
        let mut comp = CompositeIndexes::new();
        // No composite baseline on (0, 1) yet → must panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            comp.create_hermit(&db, 0, 2, 1, TrsParams::default()).unwrap();
        }));
        assert!(result.is_err());
    }
}
