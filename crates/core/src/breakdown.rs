//! Per-phase wall-clock accounting for lookups and inserts.
//!
//! Figures 10/11/14/15/22b/24b of the paper show where query and insert
//! time goes: TRS-Tree vs host index vs primary index vs base table. The
//! executor threads a [`LookupBreakdown`] through every lookup and a
//! [`InsertBreakdown`] through every insert, accumulating nanoseconds per
//! phase.

use std::time::Duration;

/// Lookup pipeline phases (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// TRS-Tree search (Hermit only).
    TrsTree,
    /// Host-index range probes (Hermit) or secondary-index search
    /// (baseline).
    HostIndex,
    /// Primary-index resolution of logical tids (both methods, logical
    /// pointers only).
    PrimaryIndex,
    /// Base-table fetch + predicate validation.
    BaseTable,
}

impl Phase {
    /// Label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::TrsTree => "trs_tree",
            Phase::HostIndex => "host_index",
            Phase::PrimaryIndex => "primary_index",
            Phase::BaseTable => "base_table",
        }
    }
}

/// Accumulated per-phase lookup time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupBreakdown {
    /// Time in the TRS-Tree phase.
    pub trs_tree: Duration,
    /// Time probing the host (or baseline secondary) index.
    pub host_index: Duration,
    /// Time resolving logical tids through the primary index.
    pub primary_index: Duration,
    /// Time fetching and validating base-table tuples.
    pub base_table: Duration,
}

impl LookupBreakdown {
    /// Add a measured duration to a phase.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        match phase {
            Phase::TrsTree => self.trs_tree += d,
            Phase::HostIndex => self.host_index += d,
            Phase::PrimaryIndex => self.primary_index += d,
            Phase::BaseTable => self.base_table += d,
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &LookupBreakdown) {
        self.trs_tree += other.trs_tree;
        self.host_index += other.host_index;
        self.primary_index += other.primary_index;
        self.base_table += other.base_table;
    }

    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.trs_tree + self.host_index + self.primary_index + self.base_table
    }

    /// Per-phase shares in `[0, 1]`, ordered
    /// `(trs, host, primary, base)` — the stacked bars of the breakdown
    /// figures. All zeros if nothing was recorded.
    pub fn shares(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.trs_tree.as_secs_f64() / total,
            self.host_index.as_secs_f64() / total,
            self.primary_index.as_secs_f64() / total,
            self.base_table.as_secs_f64() / total,
        )
    }
}

/// Accumulated per-phase insert time (Fig. 22b's stacked bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertBreakdown {
    /// Base-table append (+ primary-index registration).
    pub table: Duration,
    /// Maintenance of pre-existing indexes (primary/host columns).
    pub existing_indexes: Duration,
    /// Maintenance of the newly-created indexes under test (baseline
    /// B+-trees or Hermit TRS-Trees).
    pub new_indexes: Duration,
}

impl InsertBreakdown {
    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &InsertBreakdown) {
        self.table += other.table;
        self.existing_indexes += other.existing_indexes;
        self.new_indexes += other.new_indexes;
    }

    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.table + self.existing_indexes + self.new_indexes
    }

    /// Shares `(table, existing, new)` in `[0, 1]`.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.table.as_secs_f64() / total,
            self.existing_indexes.as_secs_f64() / total,
            self.new_indexes.as_secs_f64() / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut b = LookupBreakdown::default();
        b.add(Phase::TrsTree, Duration::from_millis(1));
        b.add(Phase::HostIndex, Duration::from_millis(2));
        b.add(Phase::PrimaryIndex, Duration::from_millis(3));
        b.add(Phase::BaseTable, Duration::from_millis(4));
        assert_eq!(b.total(), Duration::from_millis(10));
        let (t, h, p, base) = b.shares();
        assert!((t - 0.1).abs() < 1e-9);
        assert!((h - 0.2).abs() < 1e-9);
        assert!((p - 0.3).abs() < 1e-9);
        assert!((base - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_shares_are_zero() {
        assert_eq!(LookupBreakdown::default().shares(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(InsertBreakdown::default().shares(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LookupBreakdown::default();
        a.add(Phase::TrsTree, Duration::from_millis(5));
        let mut b = LookupBreakdown::default();
        b.add(Phase::TrsTree, Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.trs_tree, Duration::from_millis(12));

        let mut x = InsertBreakdown { table: Duration::from_millis(1), ..Default::default() };
        let y = InsertBreakdown { new_indexes: Duration::from_millis(2), ..Default::default() };
        x.merge(&y);
        assert_eq!(x.total(), Duration::from_millis(3));
    }

    #[test]
    fn phase_labels() {
        assert_eq!(Phase::TrsTree.label(), "trs_tree");
        assert_eq!(Phase::BaseTable.label(), "base_table");
    }
}
