//! Query execution: the three-phase Hermit lookup and the baseline lookup,
//! both with per-phase timing (§5.2, Fig. 3).
//!
//! **Hermit path** (target column carries a TRS-Tree):
//!
//! 1. *TRS-Tree lookup* — translate the target predicate into host-column
//!    ranges plus outlier tids.
//! 2. *Host-index lookup* — probe the host column's baseline B+-tree with
//!    each range; union with the outlier tids.
//! 3. *Primary-index lookup* (logical pointers only) — resolve candidate
//!    tids to row locations.
//! 4. *Base-table validation* — fetch each candidate and re-check the
//!    original predicate, discarding false positives.
//!
//! **Baseline path** (target column carries a complete B+-tree): secondary
//! index → (primary index) → base table; the results are exact, but the
//! paper's harness still fetches the tuples, because that is what a real
//! query does and it is where the time goes at high selectivity.

use crate::breakdown::LookupBreakdown;
use crate::database::Database;
use crate::index::SecondaryIndex;
use crate::plan::{AccessPath, QueryPlan};
use crate::query::Query;
use hermit_storage::{ColumnId, F64Key, RowLoc, Tid, TidScheme, Value};
use hermit_txn::ReadView;
use std::time::Instant;

/// An inclusive range predicate on one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangePredicate {
    /// Column the predicate applies to.
    pub column: ColumnId,
    /// Lower bound (inclusive).
    pub lb: f64,
    /// Upper bound (inclusive).
    pub ub: f64,
}

impl RangePredicate {
    /// Range predicate.
    pub fn range(column: ColumnId, lb: f64, ub: f64) -> Self {
        RangePredicate { column, lb, ub }
    }

    /// Point predicate (`lb == ub`).
    pub fn point(column: ColumnId, v: f64) -> Self {
        RangePredicate { column, lb: v, ub: v }
    }

    /// Check the predicate against a fetched value.
    #[inline]
    pub fn matches(&self, v: Option<f64>) -> bool {
        v.is_some_and(|x| x >= self.lb && x <= self.ub)
    }
}

/// Result of a range/point lookup.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Row locations of qualifying tuples.
    pub rows: Vec<RowLoc>,
    /// Candidates fetched that failed validation (Hermit's approximation
    /// cost; always 0 for the baseline and the seq scan). Feeds Fig. 17.
    pub false_positives: usize,
    /// Candidates whose tid did not resolve (deleted tuples etc.).
    pub unresolved: usize,
    /// Per-phase wall-clock time.
    pub breakdown: LookupBreakdown,
    /// Materialized projection, aligned with `rows` — present only when the
    /// executed [`Query`] carried a `select`.
    pub projected: Option<Vec<Vec<Value>>>,
}

impl QueryResult {
    /// False-positive ratio among fetched candidates.
    pub fn false_positive_ratio(&self) -> f64 {
        let fetched = self.rows.len() + self.false_positives;
        if fetched == 0 {
            0.0
        } else {
            self.false_positives as f64 / fetched as f64
        }
    }
}

impl Database {
    /// Plan and execute a [`Query`] through the scalar pipeline.
    ///
    /// The planner picks the driving access path (Hermit route, baseline
    /// B+-tree, composite box, or seq scan); every other conjunct is
    /// validated at the base table. Unlike the legacy
    /// [`lookup_range`](Self::lookup_range), a query over an unindexed
    /// column returns its rows via the scan plan instead of nothing.
    pub fn execute(&self, query: &Query) -> QueryResult {
        let plan = self.plan(query);
        self.execute_plan(&plan)
    }

    /// Execute an already-built [`QueryPlan`] through the scalar pipeline
    /// (plan once with [`plan`](Self::plan), execute many times).
    ///
    /// Reads are snapshot-filtered as an auto-commit reader: another
    /// transaction's uncommitted inserts are invisible and its pending
    /// deletes still visible (see [`crate::txn`]). With no open
    /// transactions the view is a lock-free no-op.
    /// [`execute_for_txn`](Self::execute_for_txn) reads *as* a transaction
    /// instead.
    pub fn execute_plan(&self, plan: &QueryPlan) -> QueryResult {
        // Shared visibility latch for the whole execution (see
        // `crate::txn`): the frozen view stays in lockstep with the heap
        // until the last row is validated.
        let _vis = self.txns.read_visibility();
        self.execute_plan_view(plan, &self.txns.read_view(None))
    }

    /// [`execute_plan`](Self::execute_plan) with an explicit visibility
    /// view (the shared body of auto-commit and transactional reads).
    pub(crate) fn execute_plan_view(&self, plan: &QueryPlan, view: &ReadView) -> QueryResult {
        let mut result = QueryResult::default();
        match &plan.access {
            AccessPath::Hermit { pred, host } => {
                let Some(SecondaryIndex::Hermit { trs, .. }) = self.index(pred.column) else {
                    return result; // index dropped since planning
                };
                self.run_hermit(trs, *host, *pred, &plan.recheck, Some(view), &mut result);
            }
            AccessPath::Baseline { pred } => {
                let Some(SecondaryIndex::Baseline(tree)) = self.index(pred.column) else {
                    return result;
                };
                self.run_baseline(&tree.read(), *pred, &plan.recheck, Some(view), &mut result);
            }
            AccessPath::CompositeBaseline { index, leading, value }
            | AccessPath::CompositeHermit { index, leading, value, .. } => {
                let mut candidates = Vec::new();
                if !self.composites().gather_box_candidates(
                    *index,
                    *leading,
                    *value,
                    &mut result.breakdown,
                    &mut candidates,
                ) {
                    return result;
                }
                self.resolve_and_validate_view(candidates, &plan.recheck, view, &mut result);
            }
            AccessPath::SeqScan => {
                self.run_scan_into(&plan.recheck, plan.limit, view, &mut result);
            }
        }
        self.finish_plan(plan, &mut result);
        result
    }

    /// Apply a plan's limit and projection to a validated result.
    ///
    /// Projection rows are fetched page-grouped through
    /// [`crate::Heap::for_each_row_batch`] — each heap page pinned once —
    /// but `projected` stays aligned with `rows` order.
    pub(crate) fn finish_plan(&self, plan: &QueryPlan, result: &mut QueryResult) {
        if let Some(n) = plan.limit {
            result.rows.truncate(n);
        }
        if let Some(cols) = &plan.projection {
            let t = Instant::now();
            let mut projected = vec![Vec::new(); result.rows.len()];
            let mut order = Vec::new();
            self.heap().for_each_row_batch(&result.rows, &mut order, |i, row| {
                projected[i] = match row {
                    Some(row) => cols.iter().map(|&c| row.value(c)).collect(),
                    None => vec![Value::Null; cols.len()],
                };
            });
            result.projected = Some(projected);
            result.breakdown.base_table += t.elapsed();
        }
    }

    /// Execute a range lookup on an indexed column, dispatching to the
    /// Hermit or baseline pipeline based on the index kind.
    ///
    /// This is the legacy single-predicate surface, kept as the scalar
    /// oracle for the equivalence suites: it *forces* the index access path
    /// (no planner, no scan fallback — an unindexed column still returns an
    /// empty result). `extra` is an optional second predicate validated at
    /// the base table (the Stock workload's `TIME BETWEEN ? AND ?`
    /// conjunct); [`Query`] generalizes it to arbitrary conjunctions.
    pub fn lookup_range(&self, pred: RangePredicate, extra: Option<RangePredicate>) -> QueryResult {
        let mut result = QueryResult::default();
        match self.index(pred.column) {
            Some(SecondaryIndex::Hermit { trs, host }) => {
                let recheck: Vec<RangePredicate> = std::iter::once(pred).chain(extra).collect();
                self.run_hermit(trs, *host, pred, &recheck, None, &mut result);
            }
            Some(SecondaryIndex::Baseline(tree)) => {
                let recheck: Vec<RangePredicate> = extra.into_iter().collect();
                self.run_baseline(&tree.read(), pred, &recheck, None, &mut result);
            }
            None => {}
        }
        result
    }

    /// Point-lookup convenience wrapper.
    pub fn lookup_point(&self, column: ColumnId, v: f64) -> QueryResult {
        self.lookup_range(RangePredicate::point(column, v), None)
    }

    /// Phases 1–4 of the Hermit route: TRS-Tree translation, host-index
    /// probes, then the resolve+validate tail with `recheck` (which must
    /// include `pred` itself — Hermit candidates are approximate).
    /// `Some(view)` takes the snapshot tail (single heap read-session,
    /// visibility-filtered); `None` is the legacy per-candidate tail kept
    /// for [`lookup_range`](Self::lookup_range).
    fn run_hermit(
        &self,
        trs: &hermit_trs::ConcurrentTrsTree,
        host: ColumnId,
        pred: RangePredicate,
        recheck: &[RangePredicate],
        view: Option<&ReadView>,
        result: &mut QueryResult,
    ) {
        // Phase 1: TRS-Tree search (under the tree's read latch).
        let t0 = Instant::now();
        let approx = trs.lookup(pred.lb, pred.ub);
        result.breakdown.trs_tree += t0.elapsed();

        // Phase 2: host-index search over the translated ranges, unioned
        // with the outlier tids (which skip the host index entirely, §4.3).
        let t1 = Instant::now();
        let Some(SecondaryIndex::Baseline(host_tree)) = self.index(host) else {
            // Host index dropped out from under us — treat as no results.
            return;
        };
        let host_tree = host_tree.read();
        let had_outliers = !approx.tids.is_empty();
        let mut candidates: Vec<Tid> = approx.tids;
        for (lo, hi) in &approx.ranges {
            host_tree.for_each_in_range(&F64Key(*lo), &F64Key(*hi), |_, tid| {
                candidates.push(*tid);
            });
        }
        drop(host_tree);
        // The unioned ranges are disjoint, so host probes cannot repeat a
        // tuple among themselves — duplicates only arise between outlier
        // tids and range results. Dedupe only when outliers were returned.
        if had_outliers {
            candidates.sort_unstable();
            candidates.dedup();
        }
        result.breakdown.host_index += t1.elapsed();

        // Phase 3 + 4: resolve and validate.
        match view {
            Some(view) => self.resolve_and_validate_view(candidates, recheck, view, result),
            None => self.resolve_and_validate(candidates, recheck, result),
        }
    }

    /// Baseline pipeline: exact index range scan, then the resolve+validate
    /// tail with the residual conjuncts only (`view` as in `run_hermit`).
    fn run_baseline(
        &self,
        tree: &hermit_btree::BPlusTree<F64Key, Tid>,
        pred: RangePredicate,
        recheck: &[RangePredicate],
        view: Option<&ReadView>,
        result: &mut QueryResult,
    ) {
        // Secondary-index search (charged to the host-index phase so the
        // breakdown figures line up across methods).
        let t0 = Instant::now();
        let mut candidates: Vec<Tid> = Vec::new();
        tree.for_each_in_range(&F64Key(pred.lb), &F64Key(pred.ub), |_, tid| {
            candidates.push(*tid);
        });
        result.breakdown.host_index += t0.elapsed();

        // The baseline's index hits are exact on `pred`; validation is only
        // needed for the residual conjuncts, but the tuples are fetched
        // either way (a real query returns rows, not tids).
        match view {
            Some(view) => self.resolve_and_validate_view(candidates, recheck, view, result),
            None => self.resolve_and_validate(candidates, recheck, result),
        }
    }

    /// The scan fallback: stream every live heap row, validating all
    /// conjuncts in-scan. Exact (no false positives, nothing unresolved),
    /// and the only path that honors `limit` by stopping early. Rows the
    /// snapshot `view` cannot see are skipped before predicate evaluation
    /// and do not count toward the limit.
    pub(crate) fn run_scan_into(
        &self,
        checks: &[RangePredicate],
        limit: Option<usize>,
        view: &ReadView,
        result: &mut QueryResult,
    ) {
        let t = Instant::now();
        let limit = limit.unwrap_or(usize::MAX);
        let filtering = view.is_filtering();
        let pk_col = self.pk_col();
        let rows = &mut result.rows;
        if limit > 0 {
            self.heap().for_each_live_row(|loc, row| {
                if filtering && row.value(pk_col).as_i64().is_some_and(|pk| !view.visible_pk(pk)) {
                    return true; // invisible to this snapshot; keep scanning
                }
                if checks.iter().all(|p| p.matches(row.f64(p.column))) {
                    rows.push(loc);
                }
                rows.len() < limit
            });
        }
        result.breakdown.base_table += t.elapsed();
    }

    /// Phase 3 alone: resolve candidate tids to row locations. The logical
    /// scheme pays the primary-index hop (one read-latch acquisition for
    /// the whole candidate set); the physical scheme is a reinterpret.
    fn resolve_candidates(&self, candidates: Vec<Tid>, result: &mut QueryResult) -> Vec<RowLoc> {
        match self.scheme() {
            TidScheme::Physical => candidates.into_iter().map(|t| t.as_loc()).collect(),
            TidScheme::Logical => {
                let t2 = Instant::now();
                let primary = self.primary();
                let resolved: Vec<RowLoc> = candidates
                    .into_iter()
                    .filter_map(|t| {
                        let loc = primary.get(t.as_pk());
                        if loc.is_none() {
                            result.unresolved += 1;
                        }
                        loc
                    })
                    .collect();
                result.breakdown.primary_index += t2.elapsed();
                resolved
            }
        }
    }

    /// Legacy tail of the index pipelines: primary-index resolution
    /// (logical pointers) and one base-table fetch per candidate,
    /// validating every `recheck` conjunct. Kept unfiltered as the scalar
    /// oracle behind [`lookup_range`](Self::lookup_range).
    fn resolve_and_validate(
        &self,
        candidates: Vec<Tid>,
        recheck: &[RangePredicate],
        result: &mut QueryResult,
    ) {
        let locs = self.resolve_candidates(candidates, result);

        // Phase 4: base-table fetch + validation. One heap visit per
        // candidate: every recheck column is read from the same row view,
        // so extra conjuncts never resolve the page twice.
        let t3 = Instant::now();
        for loc in locs {
            self.heap().with_row(loc, |row| match row {
                None => result.unresolved += 1,
                Some(row) => {
                    if recheck.iter().all(|p| p.matches(row.f64(p.column))) {
                        result.rows.push(loc);
                    } else {
                        result.false_positives += 1;
                    }
                }
            });
        }
        result.breakdown.base_table += t3.elapsed();
    }

    /// Snapshot tail of the index pipelines: phase 3 via
    /// [`resolve_candidates`](Self::resolve_candidates), then one batched
    /// heap read-session for phase 4 — each heap page is pinned once
    /// ([`crate::Heap::for_each_row_batch`]) instead of one latch
    /// round-trip per candidate, which is what lets concurrent snapshot
    /// readers scale past the per-row latch churn of the legacy tail.
    ///
    /// Rows invisible to `view` (another transaction's uncommitted insert,
    /// or a row the owner has pending-deleted) are skipped silently: they
    /// count as neither matches nor false positives, exactly as if the
    /// write had never happened. Verdicts are buffered per candidate index
    /// so `rows` keeps candidate order — bit-identical to the legacy tail
    /// when nothing is filtered.
    fn resolve_and_validate_view(
        &self,
        candidates: Vec<Tid>,
        recheck: &[RangePredicate],
        view: &ReadView,
        result: &mut QueryResult,
    ) {
        let locs = self.resolve_candidates(candidates, result);

        let t3 = Instant::now();
        let filtering = view.is_filtering();
        let pk_col = self.pk_col();
        // 0 = unresolved, 1 = match, 2 = false positive, 3 = invisible.
        let mut verdicts = vec![0u8; locs.len()];
        let mut order = Vec::new();
        self.heap().for_each_row_batch(&locs, &mut order, |i, row| {
            verdicts[i] = match row {
                None => 0,
                Some(row) => {
                    if filtering
                        && row.value(pk_col).as_i64().is_some_and(|pk| !view.visible_pk(pk))
                    {
                        3
                    } else if recheck.iter().all(|p| p.matches(row.f64(p.column))) {
                        1
                    } else {
                        2
                    }
                }
            };
        });
        for (i, &loc) in locs.iter().enumerate() {
            match verdicts[i] {
                1 => result.rows.push(loc),
                2 => result.false_positives += 1,
                3 => {}
                _ => result.unresolved += 1,
            }
        }
        result.breakdown.base_table += t3.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_storage::{ColumnDef, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("host"),
            ColumnDef::float("target"),
            ColumnDef::float("other"),
        ])
    }

    /// Database with target = i, host = 2i (+ noise rows), both index kinds
    /// available on demand.
    fn populated(scheme: TidScheme, n: usize, noise_every: usize) -> Database {
        let db = Database::new(schema(), 0, scheme);
        for i in 0..n {
            let m = i as f64;
            let host = if noise_every > 0 && i % noise_every == 0 {
                -5.0e6 // wild outlier host value
            } else {
                2.0 * m
            };
            db.insert(&[
                Value::Int(i as i64),
                Value::Float(host),
                Value::Float(m),
                Value::Float(m * 10.0),
            ])
            .unwrap();
        }
        db
    }

    fn hermit_db(scheme: TidScheme, n: usize, noise_every: usize) -> Database {
        let mut db = populated(scheme, n, noise_every);
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();
        db
    }

    fn baseline_db(scheme: TidScheme, n: usize) -> Database {
        let mut db = populated(scheme, n, 0);
        db.create_baseline_index(2, false).unwrap();
        db
    }

    fn row_targets(db: &Database, result: &QueryResult) -> Vec<f64> {
        let mut v: Vec<f64> =
            result.rows.iter().map(|&loc| db.heap().value_f64(loc, 2).unwrap().unwrap()).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    #[test]
    fn hermit_range_lookup_exact_results() {
        for scheme in [TidScheme::Logical, TidScheme::Physical] {
            let db = hermit_db(scheme, 10_000, 0);
            let result = db.lookup_range(RangePredicate::range(2, 100.0, 199.0), None);
            let targets = row_targets(&db, &result);
            assert_eq!(targets.len(), 100, "{scheme:?}");
            assert_eq!(targets[0], 100.0);
            assert_eq!(targets[99], 199.0);
        }
    }

    #[test]
    fn baseline_range_lookup_exact_results() {
        for scheme in [TidScheme::Logical, TidScheme::Physical] {
            let db = baseline_db(scheme, 10_000);
            let result = db.lookup_range(RangePredicate::range(2, 100.0, 199.0), None);
            assert_eq!(result.rows.len(), 100, "{scheme:?}");
            assert_eq!(result.false_positives, 0);
        }
    }

    #[test]
    fn hermit_and_baseline_agree() {
        let hermit = hermit_db(TidScheme::Physical, 20_000, 97);
        let baseline = {
            let mut db = populated(TidScheme::Physical, 20_000, 97);
            db.create_baseline_index(2, false).unwrap();
            db
        };
        for (lb, ub) in [(0.0, 50.0), (500.5, 700.25), (19_990.0, 30_000.0), (7.0, 7.0)] {
            let h = hermit.lookup_range(RangePredicate::range(2, lb, ub), None);
            let b = baseline.lookup_range(RangePredicate::range(2, lb, ub), None);
            assert_eq!(
                row_targets(&hermit, &h),
                row_targets(&baseline, &b),
                "mismatch on [{lb}, {ub}]"
            );
        }
    }

    #[test]
    fn point_lookup_with_outlier_rows() {
        // Rows where i % 50 == 0 have wild host values; the TRS-Tree must
        // find them via its outlier buffers.
        let db = hermit_db(TidScheme::Physical, 10_000, 50);
        for probe in [0.0, 50.0, 4_950.0] {
            let r = db.lookup_point(2, probe);
            assert_eq!(r.rows.len(), 1, "outlier row at target={probe} must be found");
        }
        // Normal rows still work.
        let r = db.lookup_point(2, 123.0);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn false_positives_counted_and_validated_away() {
        // Inflate error_bound so the host ranges are wide → false positives
        // get fetched but filtered.
        let mut db = populated(TidScheme::Physical, 10_000, 0);
        db.set_trs_params(hermit_trs::TrsParams::with_error_bound(5_000.0));
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();
        let r = db.lookup_range(RangePredicate::range(2, 1_000.0, 1_009.0), None);
        assert_eq!(row_targets(&db, &r), (1_000..=1_009).map(|i| i as f64).collect::<Vec<_>>());
        assert!(
            r.false_positives > 0,
            "huge error_bound must produce false positives to validate away"
        );
        assert!(r.false_positive_ratio() > 0.0 && r.false_positive_ratio() < 1.0);
    }

    #[test]
    fn extra_predicate_validated_at_base_table() {
        let db = hermit_db(TidScheme::Physical, 10_000, 0);
        // other = 10 * target; constrain other ∈ [1500, 1590] → target ∈ [150, 159].
        let r = db.lookup_range(
            RangePredicate::range(2, 100.0, 199.0),
            Some(RangePredicate::range(3, 1_500.0, 1_590.0)),
        );
        let targets = row_targets(&db, &r);
        assert_eq!(targets, (150..=159).map(|i| i as f64).collect::<Vec<_>>());
        assert!(r.false_positives >= 90, "rows failing the extra conjunct count as FPs");
    }

    #[test]
    fn logical_scheme_records_primary_time() {
        let db = hermit_db(TidScheme::Logical, 10_000, 0);
        let r = db.lookup_range(RangePredicate::range(2, 0.0, 999.0), None);
        assert_eq!(r.rows.len(), 1_000);
        assert!(r.breakdown.primary_index.as_nanos() > 0, "logical scheme must pay the hop");
        let db = hermit_db(TidScheme::Physical, 10_000, 0);
        let r = db.lookup_range(RangePredicate::range(2, 0.0, 999.0), None);
        assert_eq!(r.breakdown.primary_index.as_nanos(), 0, "physical scheme skips the hop");
    }

    #[test]
    fn deleted_rows_do_not_resurface() {
        let db = hermit_db(TidScheme::Logical, 1_000, 0);
        db.delete_by_pk(500).unwrap();
        let r = db.lookup_range(RangePredicate::range(2, 499.0, 501.0), None);
        let targets = row_targets(&db, &r);
        assert_eq!(targets, vec![499.0, 501.0]);
    }

    #[test]
    fn unindexed_column_returns_empty() {
        let db = populated(TidScheme::Physical, 100, 0);
        let r = db.lookup_range(RangePredicate::range(2, 0.0, 10.0), None);
        assert!(r.rows.is_empty());
    }

    #[test]
    fn empty_predicate_range() {
        let db = hermit_db(TidScheme::Physical, 1_000, 0);
        let r = db.lookup_range(RangePredicate::range(2, 900.0, 100.0), None);
        assert!(r.rows.is_empty(), "inverted range matches nothing");
        let r = db.lookup_range(RangePredicate::range(2, 5_000.0, 6_000.0), None);
        assert!(r.rows.is_empty(), "out-of-domain range matches nothing");
    }
}
