//! Multi-statement transactions over one [`Database`]: begin / commit /
//! rollback, transactional DML, and snapshot reads.
//!
//! The bookkeeping (ids, per-pk write locks, undo lists, visibility views)
//! lives in [`hermit_txn`]; this module is the integration with the engine
//! — the heap, every index kind, and PR 5's epoch-fenced WAL.
//!
//! # Write protocol
//!
//! Transactional DML inverts the auto-commit ordering: it is **logged
//! before it is applied**. Auto-commit statements log last because the WAL
//! is a redo-only log of applied statements — a failed statement must leave
//! no record. A transaction instead carries an undo list, and recovery is
//! redo-then-undo (below), so the invariant it needs is the opposite one:
//! *no applied write without a WAL record*, or a crash could persist a
//! loser's effect (via buffer-pool steal) that recovery cannot see to roll
//! back.
//!
//! * **Insert** — lock the pk (first-writer-wins), log `TxnInsert`, apply
//!   physically. The row is physically present but invisible to every other
//!   reader until commit (see [`hermit_txn::ReadView`]).
//! * **Delete of a pre-existing row** — *deferred*: the pk is locked and
//!   the pre-image parked, but the row stays physically present (and
//!   visible to other snapshots) until commit, when it is logged as
//!   `TxnDelete` (carrying the full pre-image) and applied under the same
//!   WAL guard as the commit record. The pre-image rides in the record
//!   because the pool may steal the tombstoned page before the commit
//!   record lands — undoing the loser then needs the bytes from the log.
//! * **Delete of the txn's own insert** — applied (and logged) immediately:
//!   no other reader ever saw the row.
//! * **Commit** — apply + log the deferred deletes, then append
//!   `TxnCommit` and **force the fsync boundary** (a positive commit
//!   acknowledgement survives a crash regardless of `wal_sync_every`).
//! * **Rollback** — apply the undo list in reverse (idempotent
//!   delete-if-present / insert-if-absent compensations), then append
//!   `TxnAbort` on the normal commit batch. Rollback never requires a
//!   healthy WAL: the in-memory rollback always completes, because recovery
//!   reaches the same state without the abort record.
//!
//! # Recovery: redo-then-undo (ARIES-lite)
//!
//! [`Database::open`](Database::open) replays the same-epoch WAL in order,
//! applying *every* record idempotently — including records of transactions
//! that never committed — while accumulating each open transaction's undo
//! list. `TxnCommit` closes a winner; `TxnAbort` (and end-of-log, for
//! losers) applies the accumulated undo in reverse. Redo-everything is not
//! optional: the buffer pool steals, so any prefix of a loser's effects may
//! already sit in the page file — re-applying the rest and then undoing the
//! whole transaction is what converges from every crash point. The epoch
//! fence from PR 5 is what keeps this sound across checkpoints: only
//! current-epoch records replay, and [`Database::checkpoint`] refuses to
//! run while transactions are open ([`CoreError::OpenTransactions`]) so a
//! checkpoint can never bake an uncommitted write into the new epoch while
//! discarding its undo information with the old log.
//!
//! # Isolation
//!
//! Reads are snapshot-isolated at statement granularity: a query freezes
//! the dirty-pk overlay ([`TxnManager::read_view`]) once and filters
//! validation against it, so it never sees another transaction's
//! uncommitted insert and keeps seeing rows another transaction has
//! pending-deleted. The overlay is kept in lockstep with the heap by the
//! manager's *visibility latch*: queries hold the shared side for their
//! whole execution while transactional physical applies and commit/abort
//! publication hold the exclusive side, so a reader observes every
//! transaction all-or-nothing — never a row applied after its freeze, never
//! a half-published commit. (Auto-commit DML is already atomic per
//! statement and skips the latch; its rows may appear between two queries
//! but never mid-validation of one.) Writers conflict first-writer-wins
//! per pk — no lock
//! queues, hence no deadlocks; losers get
//! [`StorageError::WriteConflict`] and may retry. On a non-durable
//! database the duplicate-pk pre-checks are best-effort (there is no WAL
//! guard serializing them); on a durable database every write path holds
//! the WAL guard, which makes them exact.

use crate::breakdown::InsertBreakdown;
use crate::database::Database;
use crate::error::CoreError;
use crate::executor::QueryResult;
use crate::query::Query;
use hermit_storage::wal::WalRecord;
use hermit_storage::{StorageError, Tid, Value};
use hermit_txn::{DeleteMode, TxnCounters, TxnManager, Undo};

impl Database {
    /// The transaction manager's counter snapshot (begins / commits /
    /// aborts / conflicts / active gauge) for the metrics exporter.
    pub fn txn_counters(&self) -> TxnCounters {
        self.txns.counters()
    }

    /// Number of currently open transactions.
    pub fn txn_active(&self) -> usize {
        self.txns.active()
    }

    /// Borrow the transaction manager (crate-internal integration hook).
    pub(crate) fn txns(&self) -> &TxnManager {
        &self.txns
    }

    /// Open a transaction and return its id.
    ///
    /// On a durable database the `TxnBegin` record is appended under the
    /// quiesce + WAL guards; a WAL failure closes the id again and
    /// propagates, so a transaction the caller never learned about cannot
    /// linger open.
    pub fn begin(&self) -> Result<u64, CoreError> {
        let mut statement = match &self.durability {
            Some(d) => {
                d.check_writable()?;
                Some((d, d.quiesce_read(), d.wal_guard()))
            }
            None => None,
        };
        let txn = self.txns.begin();
        if let Some((d, _quiesce, wal)) = statement.as_mut() {
            if let Err(e) = d.log(wal, &WalRecord::TxnBegin { txn }) {
                let _ = self.txns.start_abort(txn);
                let _ = self.txns.finish_abort(txn);
                return Err(e.into());
            }
        }
        Ok(txn)
    }

    /// Insert a row inside transaction `txn`.
    ///
    /// The pk is locked first-writer-wins; a pk that is physically live —
    /// including one this same transaction holds a pending delete on — is
    /// rejected as [`StorageError::WriteConflict`] (re-inserting a deleted
    /// key becomes possible only after the deleting transaction commits).
    /// The `TxnInsert` record is logged *before* the physical apply; see
    /// the module docs for why.
    pub fn insert_txn(&self, txn: u64, row: &[Value]) -> Result<Tid, CoreError> {
        let mut statement = match &self.durability {
            Some(d) => {
                d.check_writable()?;
                Some((d, d.quiesce_read(), d.wal_guard()))
            }
            None => None,
        };
        let pk = row
            .get(self.pk_col)
            .and_then(|v| v.as_i64())
            .ok_or(StorageError::TypeMismatch { column: self.pk_col, expected: "Int" })?;
        if !self.txns.is_open(txn) {
            return Err(CoreError::UnknownTxn { txn });
        }
        if self.primary.read().get(pk).is_some() {
            // Duplicate pk: the commit/rollback machinery keys everything
            // on pk uniqueness, so unlike the auto-commit path this is a
            // hard error, reported in the same retryable class as a lock
            // conflict.
            return Err(StorageError::WriteConflict { pk }.into());
        }
        self.txns.note_insert(txn, pk)?;
        if let Some((d, _quiesce, wal)) = statement.as_mut() {
            if let Err(e) = d.log(wal, &WalRecord::TxnInsert { txn, row: row.to_vec() }) {
                // Nothing was applied: unwind the lock and undo entry so
                // the failed statement leaves no trace.
                self.txns.forget_insert(txn, pk);
                return Err(e.into());
            }
        }
        // Apply after the record is down, under the exclusive side of the
        // visibility latch: a query that froze its view before this
        // statement locked the pk would not filter the row, so the physical
        // apply must wait until that query has drained. If the apply itself
        // fails the undo entry stays: its delete-if-present compensation is
        // a no-op for a row that never landed, and recovery's redo-then-undo
        // converges on the same rolled-back state.
        let _vis = self.txns.write_visibility();
        let tid = self.apply_insert(row, pk, &mut InsertBreakdown::default())?;
        Ok(tid)
    }

    /// Delete a row by pk inside transaction `txn`.
    ///
    /// A pre-existing row is **deferred**: locked and parked, physically
    /// deleted (and WAL-logged with its pre-image) only at commit, so
    /// concurrent snapshots keep reading it. A row this same transaction
    /// inserted is deleted immediately. Read-your-writes: a pk the
    /// transaction already deleted reports
    /// [`StorageError::PkNotFound`].
    pub fn delete_by_pk_txn(&self, txn: u64, pk: i64) -> Result<(), CoreError> {
        let mut statement = match &self.durability {
            Some(d) => {
                d.check_writable()?;
                Some((d, d.quiesce_read(), d.wal_guard()))
            }
            None => None,
        };
        if !self.txns.is_open(txn) {
            return Err(CoreError::UnknownTxn { txn });
        }
        if self.txns.has_pending_delete(txn, pk) {
            return Err(StorageError::PkNotFound { pk }.into());
        }
        if self.primary.read().get(pk).is_none() {
            return Err(StorageError::PkNotFound { pk }.into());
        }
        // Exclusive visibility latch across lock + apply: `lock_delete`
        // flips an own-insert's lock kind to `Delete` (visible-to-others)
        // before the physical delete lands, and a view frozen inside that
        // gap would read a row no transaction ever committed.
        let _vis = self.txns.write_visibility();
        match self.txns.lock_delete(txn, pk)? {
            DeleteMode::OwnInsert => {
                // The row was this txn's own insert: no other reader ever
                // saw it, so the physical delete applies now. Log first
                // (pre-image included — the insert's page may be stolen
                // before any commit/abort record lands).
                let loc = self.primary.read().get(pk).ok_or(StorageError::PkNotFound { pk })?;
                let row = self.heap.get(loc)?;
                if let Some((d, _quiesce, wal)) = statement.as_mut() {
                    // On failure the WAL is poisoned: commit is impossible
                    // and rollback (which removes this row anyway) is the
                    // only exit, so the flipped lock needs no unwinding.
                    d.log(wal, &WalRecord::TxnDelete { txn, pk, row: row.clone() })?;
                }
                let pre = self.apply_delete(pk)?;
                self.txns.note_applied_delete(txn, pk, pre)?;
            }
            DeleteMode::Deferred => {
                // Park the pre-image; nothing is logged or applied until
                // commit. (If a non-durable race deleted the row between
                // the existence check and the lock, the dangling lock is
                // released with the transaction — harmless.)
                let loc = self.primary.read().get(pk).ok_or(StorageError::PkNotFound { pk })?;
                let row = self.heap.get(loc)?;
                self.txns.note_pending_delete(txn, pk, row)?;
            }
        }
        Ok(())
    }

    /// Commit transaction `txn`: apply + log the deferred deletes, append
    /// the `TxnCommit` record, and **force the WAL fsync boundary** so the
    /// acknowledgement survives a crash. Locks release and the visibility
    /// watermark advances only after the commit record is durable.
    ///
    /// On failure the transaction stays open with a sound undo list — the
    /// caller should [`rollback_txn`](Self::rollback_txn) (which works even
    /// behind a poisoned WAL) or disconnect and let recovery roll it back.
    pub fn commit_txn(&self, txn: u64) -> Result<(), CoreError> {
        let mut statement = match &self.durability {
            Some(d) => {
                d.check_writable()?;
                Some((d, d.quiesce_read(), d.wal_guard()))
            }
            None => None,
        };
        // Exclusive visibility latch across apply + publication: a reader
        // must see the whole commit (deferred deletes applied, locks gone)
        // or none of it, never a half-committed transaction.
        let _vis = self.txns.write_visibility();
        let pending = self.txns.start_commit(txn)?;
        for (pk, row) in pending {
            if let Some((d, _quiesce, wal)) = statement.as_mut() {
                d.log(wal, &WalRecord::TxnDelete { txn, pk, row: row.clone() })?;
            }
            // The pk is locked by this txn, so the row is still live.
            let pre = self.apply_delete(pk)?;
            self.txns.note_applied_delete(txn, pk, pre)?;
        }
        if let Some((d, _quiesce, wal)) = statement.as_mut() {
            d.log_txn_commit(wal, txn)?;
        }
        self.txns.finish_commit(txn)?;
        Ok(())
    }

    /// Roll back transaction `txn`: apply the undo list in reverse
    /// (deferred deletes were never applied and simply evaporate), then
    /// append the `TxnAbort` record when the WAL is healthy.
    ///
    /// The in-memory rollback always completes — even behind a poisoned
    /// WAL — because releasing the locks must never be blocked on I/O and
    /// recovery rolls the loser back regardless. A WAL failure while
    /// logging the abort record is reported *after* the rollback finished.
    pub fn rollback_txn(&self, txn: u64) -> Result<(), CoreError> {
        let mut statement = self.durability.as_ref().map(|d| (d, d.quiesce_read(), d.wal_guard()));
        // Exclusive visibility latch across undo + publication, for the
        // same all-or-nothing reason as commit.
        let _vis = self.txns.write_visibility();
        let undo = self.txns.start_abort(txn)?;
        self.apply_undo(&undo)?;
        let logged = match statement.as_mut() {
            Some((d, _quiesce, wal)) if d.check_writable().is_ok() => d.log_txn_abort(wal, txn),
            _ => Ok(()),
        };
        drop(statement);
        self.txns.finish_abort(txn)?;
        logged?;
        Ok(())
    }

    /// Plan and execute a query as transaction `txn`: the read view is
    /// frozen with `txn` as the owner, so the transaction sees its own
    /// uncommitted writes (inserts visible, pending deletes gone) on top of
    /// the same snapshot rules every other reader gets.
    pub fn execute_for_txn(&self, query: &Query, txn: u64) -> QueryResult {
        let plan = self.plan(query);
        // Shared visibility latch for the whole execution: the frozen view
        // stays in lockstep with the heap until the last row is validated.
        let _vis = self.txns.read_visibility();
        let view = self.txns.read_view(Some(txn));
        self.execute_plan_view(&plan, &view)
    }

    /// Apply an undo list in reverse order. Both compensations are
    /// idempotent — delete-if-present, insert-if-absent — so replaying the
    /// same undo after a crash mid-rollback re-converges. Shared by
    /// [`rollback_txn`](Self::rollback_txn) and recovery's loser rollback.
    pub(crate) fn apply_undo(&self, undo: &[Undo]) -> Result<(), CoreError> {
        for u in undo.iter().rev() {
            match u {
                Undo::Insert { pk } => {
                    if self.primary.read().get(*pk).is_some() {
                        self.apply_delete(*pk)?;
                    }
                }
                Undo::Delete { pk, row } => {
                    if self.primary.read().get(*pk).is_none() {
                        self.apply_insert(row, *pk, &mut InsertBreakdown::default())?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::RangePredicate;
    use hermit_storage::{ColumnDef, Schema, TidScheme};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("host"),
            ColumnDef::float("target"),
        ])
    }

    fn indexed_db(n: usize) -> Database {
        let mut db = Database::new(schema(), 0, TidScheme::Logical);
        for i in 0..n {
            let m = i as f64;
            db.insert(&[Value::Int(i as i64), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
        }
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();
        db
    }

    fn count(db: &Database, lb: f64, ub: f64) -> usize {
        db.execute(&Query::filter(RangePredicate::range(2, lb, ub))).rows.len()
    }

    #[test]
    fn commit_makes_writes_visible() {
        let db = indexed_db(100);
        let t = db.begin().unwrap();
        db.insert_txn(t, &[Value::Int(1_000), Value::Float(401.0), Value::Float(200.5)]).unwrap();
        db.delete_by_pk_txn(t, 50).unwrap();
        // Pre-commit: auto-commit readers see the old state.
        assert_eq!(count(&db, 200.0, 201.0), 0, "uncommitted insert invisible");
        assert_eq!(count(&db, 50.0, 50.0), 1, "pending delete still visible");
        // The owner sees its own writes.
        let own = db.execute_for_txn(&Query::filter(RangePredicate::range(2, 200.0, 201.0)), t);
        assert_eq!(own.rows.len(), 1);
        let own = db.execute_for_txn(&Query::filter(RangePredicate::point(2, 50.0)), t);
        assert!(own.rows.is_empty(), "owner must not see its own pending delete");
        db.commit_txn(t).unwrap();
        assert_eq!(count(&db, 200.0, 201.0), 1);
        assert_eq!(count(&db, 50.0, 50.0), 0);
        assert_eq!(db.len(), 100);
        let c = db.txn_counters();
        assert_eq!((c.begins, c.commits, c.aborts, c.active), (1, 1, 0, 0));
    }

    #[test]
    fn rollback_restores_exact_state() {
        let db = indexed_db(100);
        let before = count(&db, 0.0, 1_000.0);
        let t = db.begin().unwrap();
        db.insert_txn(t, &[Value::Int(500), Value::Float(999.0), Value::Float(499.5)]).unwrap();
        db.delete_by_pk_txn(t, 10).unwrap();
        db.delete_by_pk_txn(t, 500).unwrap(); // delete own insert
        db.delete_by_pk_txn(t, 20).unwrap();
        db.rollback_txn(t).unwrap();
        assert_eq!(count(&db, 0.0, 1_000.0), before);
        assert_eq!(db.len(), 100);
        assert_eq!(count(&db, 10.0, 10.0), 1, "deferred delete undone");
        assert_eq!(count(&db, 499.5, 499.5), 0, "own insert gone");
        assert!(!db.txns.is_open(t));
    }

    #[test]
    fn conflicts_are_first_writer_wins() {
        let db = indexed_db(50);
        let a = db.begin().unwrap();
        let b = db.begin().unwrap();
        db.delete_by_pk_txn(a, 7).unwrap();
        assert!(matches!(
            db.delete_by_pk_txn(b, 7),
            Err(CoreError::Storage(StorageError::WriteConflict { pk: 7 }))
        ));
        // Auto-commit writers lose the same way.
        assert_eq!(db.delete_by_pk(7), Err(StorageError::WriteConflict { pk: 7 }));
        // Duplicate insert of a live pk is rejected.
        assert!(matches!(
            db.insert_txn(b, &[Value::Int(7), Value::Float(0.0), Value::Float(0.0)]),
            Err(CoreError::Storage(StorageError::WriteConflict { pk: 7 }))
        ));
        db.rollback_txn(a).unwrap();
        db.delete_by_pk_txn(b, 7).unwrap();
        db.commit_txn(b).unwrap();
        assert_eq!(count(&db, 7.0, 7.0), 0);
    }

    #[test]
    fn unknown_txn_is_typed() {
        let db = indexed_db(10);
        assert!(matches!(db.commit_txn(99), Err(CoreError::UnknownTxn { txn: 99 })));
        assert!(matches!(db.rollback_txn(99), Err(CoreError::UnknownTxn { txn: 99 })));
        assert!(matches!(
            db.insert_txn(99, &[Value::Int(77), Value::Float(0.0), Value::Float(0.0)]),
            Err(CoreError::UnknownTxn { txn: 99 })
        ));
        assert!(matches!(db.delete_by_pk_txn(99, 1), Err(CoreError::UnknownTxn { txn: 99 })));
    }

    #[test]
    fn read_your_writes_delete_semantics() {
        let db = indexed_db(10);
        let t = db.begin().unwrap();
        db.delete_by_pk_txn(t, 3).unwrap();
        assert!(matches!(
            db.delete_by_pk_txn(t, 3),
            Err(CoreError::Storage(StorageError::PkNotFound { pk: 3 }))
        ));
        db.rollback_txn(t).unwrap();
        assert_eq!(count(&db, 3.0, 3.0), 1);
    }

    #[test]
    fn seq_scan_respects_visibility() {
        // Query on an unindexed column takes the scan path.
        let db = indexed_db(20);
        let t = db.begin().unwrap();
        db.insert_txn(t, &[Value::Int(100), Value::Float(5.0), Value::Float(500.0)]).unwrap();
        db.delete_by_pk_txn(t, 4).unwrap();
        let q = Query::filter(RangePredicate::range(1, 0.0, 10_000.0));
        let auto = db.execute(&q);
        assert_eq!(auto.rows.len(), 20, "scan: insert hidden, pending delete visible");
        let own = db.execute_for_txn(&q, t);
        assert_eq!(own.rows.len(), 20, "scan: owner sees insert, not its delete");
        db.rollback_txn(t).unwrap();
        assert_eq!(db.execute(&q).rows.len(), 20);
    }
}
