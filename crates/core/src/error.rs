//! Typed errors for database-level operations.
//!
//! Storage-layer failures pass through as [`CoreError::Storage`]; the
//! variants above it capture preconditions that only exist at the database
//! layer (the paper's §3 requirement that a Hermit index routes to a host
//! column whose complete index already exists).

use hermit_storage::{ColumnId, StorageError};
use std::fmt;

/// Errors produced by [`crate::Database`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A Hermit index was requested on `target` routed through `host`, but
    /// `host` carries no baseline B+-tree (the paper's precondition: the
    /// TRS-Tree's second hop needs a complete index to probe).
    MissingHostIndex {
        /// Column the Hermit index was requested on.
        target: ColumnId,
        /// Host column that lacks a baseline index.
        host: ColumnId,
    },
    /// A composite Hermit index on `(leading, target)` was requested, but
    /// no composite baseline index on `(leading, host)` exists to serve the
    /// translated box probes.
    MissingCompositeHost {
        /// Shared leading column.
        leading: ColumnId,
        /// Host column of the missing `(leading, host)` baseline.
        host: ColumnId,
    },
    /// A durability operation (checkpoint, open, WAL commit) was requested
    /// on a database that cannot support it — an in-memory heap, or a paged
    /// heap whose store is not the directory's page file.
    NotDurable {
        /// Why the database cannot be checkpointed / reopened.
        reason: &'static str,
    },
    /// Checkpoint or recovery failed: a torn checkpoint was detected, an
    /// on-disk structure is corrupt, or the recovery files are unreadable.
    Recovery(String),
    /// A transactional operation referenced an id that is not open (never
    /// begun, or already committed / rolled back).
    UnknownTxn {
        /// The offending transaction id.
        txn: u64,
    },
    /// A checkpoint was refused because transactions are still open: the
    /// checkpoint would bake their uncommitted (physically applied) writes
    /// into the new epoch while discarding the WAL records recovery needs
    /// to roll them back. Finish or abort the transactions first.
    OpenTransactions {
        /// Number of open transactions at refusal time.
        active: usize,
    },
    /// An underlying storage operation failed.
    Storage(StorageError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingHostIndex { target, host } => write!(
                f,
                "cannot build a Hermit index on column {target}: host column {host} has no \
                 baseline index to route through"
            ),
            CoreError::MissingCompositeHost { leading, host } => write!(
                f,
                "cannot build a composite Hermit index: no composite baseline index on \
                 (leading={leading}, host={host}) exists"
            ),
            CoreError::NotDurable { reason } => write!(f, "database is not durable: {reason}"),
            CoreError::Recovery(what) => write!(f, "recovery failed: {what}"),
            CoreError::UnknownTxn { txn } => write!(f, "transaction {txn} is not open"),
            CoreError::OpenTransactions { active } => write!(
                f,
                "checkpoint refused: {active} transaction(s) still open; commit or roll them \
                 back first"
            ),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<hermit_storage::RecoveryError> for CoreError {
    fn from(e: hermit_storage::RecoveryError) -> Self {
        CoreError::Recovery(e.to_string())
    }
}

impl From<hermit_txn::TxnError> for CoreError {
    fn from(e: hermit_txn::TxnError) -> Self {
        match e {
            // A write-write conflict is a storage-class failure: callers
            // (and the wire protocol) already classify `WriteConflict` as
            // retryable, which is exactly the first-writer-wins contract.
            hermit_txn::TxnError::Conflict { pk } => {
                CoreError::Storage(StorageError::WriteConflict { pk })
            }
            hermit_txn::TxnError::UnknownTxn { txn } => CoreError::UnknownTxn { txn },
        }
    }
}

/// Result alias for database-level operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = CoreError::MissingHostIndex { target: 2, host: 1 };
        assert!(e.to_string().contains("host column 1"));
        let e: CoreError = StorageError::PageFull.into();
        assert!(matches!(e, CoreError::Storage(StorageError::PageFull)));
        assert!(e.to_string().contains("page full"));
    }
}
