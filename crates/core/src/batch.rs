//! Batched, page-locality-aware query execution.
//!
//! [`Database::lookup_batch`] runs many range/point predicates through the
//! same four-phase pipeline as [`Database::lookup_range`], but amortizes
//! everything the scalar path pays per query:
//!
//! * **TRS traversal scratch** — the BFS queue and the approximate-result
//!   buffers ([`hermit_trs::LookupScratch`] / [`hermit_trs::TrsLookup`])
//!   are reused across predicates instead of allocated per lookup.
//! * **Candidate buffers** — the tid and row-location vectors grow once and
//!   are recycled for every subsequent predicate.
//! * **Base-table locality** — validation fetches candidates *in page
//!   order* through [`crate::Heap::for_each_row_batch`]: each heap page is pinned
//!   once per query and every candidate on it is validated under that
//!   single buffer-pool access, instead of one pool lock + frame lookup per
//!   value.
//! * **Point probes** — exact-match predicates probe the B+-tree with the
//!   allocation-free [`hermit_btree::BPlusTree::for_each_eq`].
//!
//! With [`BatchOptions::threads`] > 1 the predicates are partitioned across
//! scoped worker threads (`crossbeam::thread::scope`), each with its own
//! scratch, and the per-thread [`QueryResult`] partials are stitched back
//! in input order — results are bit-identical to the sequential path.
//!
//! The scalar path stays as the oracle: `tests/batch_equivalence.rs` proves
//! both paths return identical rows, false-positive and unresolved counts
//! on every substrate and tid scheme.

use crate::database::Database;
use crate::executor::{QueryResult, RangePredicate};
use crate::index::SecondaryIndex;
use crate::plan::{AccessPath, QueryPlan};
use crate::query::Query;
use hermit_storage::{F64Key, RowLoc, Tid, TidScheme};
use hermit_trs::{LookupScratch, TrsLookup};
use hermit_txn::ReadView;
use std::time::Instant;

/// Knobs for a batched lookup.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads validating predicates in parallel. `1` (the default)
    /// runs everything on the calling thread.
    pub threads: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { threads: 1 }
    }
}

impl BatchOptions {
    /// Options with `threads` parallel workers.
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions { threads }
    }
}

/// Reusable per-worker buffers for the batched pipeline. One instance
/// serves any number of sequential [`Database::lookup_batch`] predicates;
/// parallel workers each own one.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// TRS-Tree BFS queue (phase 1).
    trs: LookupScratch,
    /// TRS approximate result: host ranges + outlier tids (phase 1).
    approx: TrsLookup,
    /// Candidate tuple ids (phase 2).
    candidates: Vec<Tid>,
    /// Resolved row locations (phase 3).
    locs: Vec<RowLoc>,
    /// Page-sort permutation for locality-aware validation (phase 4).
    order: Vec<u32>,
    /// Conjuncts re-checked at the base table (phase 4).
    recheck: Vec<RangePredicate>,
}

impl Database {
    /// Execute a batch of range predicates with reused scratch buffers and
    /// page-ordered base-table validation. Returns one [`QueryResult`] per
    /// predicate, in input order, with the same row *set* and
    /// false-positive/unresolved counts as running
    /// [`lookup_range`](Self::lookup_range) on each. Within one result the
    /// order of `rows` is unspecified: the paged substrate emits them in
    /// page order (that is the point), the scalar path in candidate order.
    pub fn lookup_batch(&self, preds: &[RangePredicate]) -> Vec<QueryResult> {
        self.lookup_batch_with(preds, None, &BatchOptions::default())
    }

    /// [`lookup_batch`](Self::lookup_batch) with an optional shared `extra`
    /// conjunct (validated at the base table, as in the Stock workload's
    /// `TIME BETWEEN ? AND ?`) and explicit [`BatchOptions`].
    pub fn lookup_batch_with(
        &self,
        preds: &[RangePredicate],
        extra: Option<RangePredicate>,
        opts: &BatchOptions,
    ) -> Vec<QueryResult> {
        self.run_partitioned(preds, opts, |p, scratch| self.lookup_one(*p, extra, scratch))
    }

    /// Plan every [`Query`] with the cost-based planner and execute the
    /// batch through the vectorized pipeline: per-worker scratch reuse,
    /// page-ordered base-table validation, optional thread partitioning —
    /// the batched counterpart of [`Database::execute`]. Results come back
    /// in input order with the same row *set* and false-positive/unresolved
    /// counts as executing each query's plan on the scalar path. The one
    /// caveat is `limit`: which qualifying rows survive truncation is
    /// path-dependent (the scalar pipeline validates in candidate order,
    /// this one in page order), exactly like an unordered SQL `LIMIT`.
    pub fn execute_batch(&self, queries: &[Query], opts: &BatchOptions) -> Vec<QueryResult> {
        let plans: Vec<QueryPlan> = queries.iter().map(|q| self.plan(q)).collect();
        self.execute_plans(&plans, opts)
    }

    /// Execute pre-built plans through the vectorized pipeline (plan once,
    /// execute many).
    pub fn execute_plans(&self, plans: &[QueryPlan], opts: &BatchOptions) -> Vec<QueryResult> {
        self.run_partitioned(plans, opts, |plan, scratch| self.execute_one_plan(plan, scratch))
    }

    /// Shared batch driver: run `one` over every item with reused
    /// per-worker scratch, partitioning contiguous chunks across scoped
    /// threads when [`BatchOptions::threads`] > 1. Chunk results
    /// concatenate back into input order.
    fn run_partitioned<T: Sync>(
        &self,
        items: &[T],
        opts: &BatchOptions,
        one: impl Fn(&T, &mut BatchScratch) -> QueryResult + Sync,
    ) -> Vec<QueryResult> {
        let threads = opts.threads.clamp(1, items.len().max(1));
        if threads == 1 {
            let mut scratch = BatchScratch::default();
            return items.iter().map(|item| one(item, &mut scratch)).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let one = &one;
        let partials: Vec<Vec<QueryResult>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|chunk_items| {
                    scope.spawn(move |_| {
                        let mut scratch = BatchScratch::default();
                        chunk_items.iter().map(|item| one(item, &mut scratch)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
        })
        .expect("scoped batch execution");
        partials.into_iter().flatten().collect()
    }

    /// One plan through the batched pipeline, reusing `scratch`. Reads take
    /// an auto-commit snapshot view, like [`Database::execute_plan`] — with
    /// no open transactions the view is a lock-free no-op.
    fn execute_one_plan(&self, plan: &QueryPlan, scratch: &mut BatchScratch) -> QueryResult {
        // Shared visibility latch per plan, like `Database::execute_plan`.
        let _vis = self.txns.read_visibility();
        let view = self.txns.read_view(None);
        let mut result = QueryResult::default();
        scratch.candidates.clear();
        scratch.recheck.clear();
        scratch.recheck.extend_from_slice(&plan.recheck);
        match &plan.access {
            AccessPath::Hermit { pred, host } => {
                let Some(SecondaryIndex::Hermit { trs, .. }) = self.index(pred.column) else {
                    return result; // index dropped since planning
                };
                if !self.gather_hermit(trs, *host, *pred, scratch, &mut result) {
                    return result;
                }
            }
            AccessPath::Baseline { pred } => {
                let Some(SecondaryIndex::Baseline(tree)) = self.index(pred.column) else {
                    return result;
                };
                self.gather_baseline(&tree.read(), *pred, scratch, &mut result);
            }
            AccessPath::CompositeBaseline { index, leading, value }
            | AccessPath::CompositeHermit { index, leading, value, .. } => {
                if !self.composites().gather_box_candidates(
                    *index,
                    *leading,
                    *value,
                    &mut result.breakdown,
                    &mut scratch.candidates,
                ) {
                    return result;
                }
            }
            AccessPath::SeqScan => {
                // The scan is already sequential in page order; the scalar
                // scan path *is* the batched scan path.
                self.run_scan_into(&scratch.recheck, plan.limit, &view, &mut result);
                self.finish_plan(plan, &mut result);
                return result;
            }
        }
        self.batched_resolve_validate(scratch, &view, &mut result);
        self.finish_plan(plan, &mut result);
        result
    }

    /// One predicate through the batched pipeline (legacy surface, index
    /// paths only), reusing `scratch`.
    fn lookup_one(
        &self,
        pred: RangePredicate,
        extra: Option<RangePredicate>,
        scratch: &mut BatchScratch,
    ) -> QueryResult {
        let mut result = QueryResult::default();
        scratch.candidates.clear();
        scratch.recheck.clear();
        match self.index(pred.column) {
            Some(SecondaryIndex::Hermit { trs, host }) => {
                scratch.recheck.push(pred);
                scratch.recheck.extend(extra);
                if !self.gather_hermit(trs, *host, pred, scratch, &mut result) {
                    return result;
                }
            }
            Some(SecondaryIndex::Baseline(tree)) => {
                scratch.recheck.extend(extra);
                self.gather_baseline(&tree.read(), pred, scratch, &mut result);
            }
            None => return result,
        }
        self.batched_resolve_validate(scratch, &ReadView::unfiltered(), &mut result);
        result
    }

    /// Phases 1–2 of the Hermit route into `scratch.candidates`. Returns
    /// `false` when the host index has dropped out from under the TRS-Tree.
    // hermit-lint: hot-path
    fn gather_hermit(
        &self,
        trs: &hermit_trs::ConcurrentTrsTree,
        host: hermit_storage::ColumnId,
        pred: RangePredicate,
        scratch: &mut BatchScratch,
        result: &mut QueryResult,
    ) -> bool {
        // Phase 1: TRS-Tree search into reused buffers (read latch).
        let t0 = Instant::now();
        trs.lookup_into(pred.lb, pred.ub, &mut scratch.trs, &mut scratch.approx);
        result.breakdown.trs_tree += t0.elapsed();

        // Phase 2: host-index probes over the translated ranges, unioned
        // with the outlier tids (which bypass the host index entirely,
        // §4.3).
        let t1 = Instant::now();
        let Some(SecondaryIndex::Baseline(host_tree)) = self.index(host) else {
            return false;
        };
        let host_tree = host_tree.read();
        let candidates = &mut scratch.candidates;
        candidates.extend_from_slice(&scratch.approx.tids);
        let had_outliers = !candidates.is_empty();
        for &(lo, hi) in &scratch.approx.ranges {
            if lo == hi {
                host_tree.for_each_eq(&F64Key(lo), |tid| candidates.push(*tid));
            } else {
                host_tree
                    .for_each_in_range(&F64Key(lo), &F64Key(hi), |_, tid| candidates.push(*tid));
            }
        }
        drop(host_tree); // release before resolution/validation, like the scalar path
                         // The unioned ranges are disjoint, so duplicates only arise between
                         // outlier tids and range results.
        if had_outliers {
            candidates.sort_unstable();
            candidates.dedup();
        }
        result.breakdown.host_index += t1.elapsed();
        true
    }

    /// Phase 2 of the baseline path into `scratch.candidates`; point
    /// predicates take the allocation-free equality probe.
    // hermit-lint: hot-path
    fn gather_baseline(
        &self,
        tree: &hermit_btree::BPlusTree<F64Key, Tid>,
        pred: RangePredicate,
        scratch: &mut BatchScratch,
        result: &mut QueryResult,
    ) {
        let t0 = Instant::now();
        let candidates = &mut scratch.candidates;
        if pred.lb == pred.ub {
            tree.for_each_eq(&F64Key(pred.lb), |tid| candidates.push(*tid));
        } else {
            tree.for_each_in_range(&F64Key(pred.lb), &F64Key(pred.ub), |_, tid| {
                candidates.push(*tid)
            });
        }
        result.breakdown.host_index += t0.elapsed();
    }

    /// Phases 3–4 of the batched pipeline: primary-index resolution into
    /// `scratch.locs`, then page-ordered base-table validation of every
    /// `scratch.recheck` conjunct. Rows invisible to the snapshot `view`
    /// are skipped silently — neither matches nor false positives — same
    /// as the scalar snapshot tail.
    // hermit-lint: hot-path
    fn batched_resolve_validate(
        &self,
        scratch: &mut BatchScratch,
        view: &ReadView,
        result: &mut QueryResult,
    ) {
        // Phase 3: primary-index resolution (logical scheme only).
        scratch.locs.clear();
        match self.scheme() {
            TidScheme::Physical => {
                scratch.locs.extend(scratch.candidates.iter().map(|t| t.as_loc()))
            }
            TidScheme::Logical => {
                let t2 = Instant::now();
                let primary = self.primary();
                for tid in &scratch.candidates {
                    match primary.get(tid.as_pk()) {
                        Some(loc) => scratch.locs.push(loc),
                        None => result.unresolved += 1,
                    }
                }
                result.breakdown.primary_index += t2.elapsed();
            }
        }

        // Phase 4: page-ordered base-table validation. Each heap page is
        // pinned once; all of its candidates are validated under that one
        // access, with every recheck column read from the same row view.
        let t3 = Instant::now();
        let locs = &scratch.locs;
        let recheck = &scratch.recheck;
        let filtering = view.is_filtering();
        let pk_col = self.pk_col();
        result.rows.reserve(locs.len());
        self.heap().for_each_row_batch(locs, &mut scratch.order, |i, row| match row {
            None => result.unresolved += 1,
            Some(row) => {
                if filtering && row.value(pk_col).as_i64().is_some_and(|pk| !view.visible_pk(pk)) {
                    // Invisible to this snapshot: skip silently.
                } else if recheck.iter().all(|p| p.matches(row.f64(p.column))) {
                    result.rows.push(locs[i]);
                } else {
                    result.false_positives += 1;
                }
            }
        });
        result.breakdown.base_table += t3.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_storage::{ColumnDef, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("host"),
            ColumnDef::float("target"),
            ColumnDef::float("other"),
        ])
    }

    fn hermit_db(scheme: TidScheme, n: usize, noise_every: usize) -> Database {
        let mut db = Database::new(schema(), 0, scheme);
        for i in 0..n {
            let m = i as f64;
            let host = if noise_every > 0 && i % noise_every == 0 { -5.0e6 } else { 2.0 * m };
            db.insert(&[
                Value::Int(i as i64),
                Value::Float(host),
                Value::Float(m),
                Value::Float(m * 10.0),
            ])
            .unwrap();
        }
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();
        db
    }

    fn sorted_rows(r: &QueryResult) -> Vec<RowLoc> {
        let mut rows = r.rows.clone();
        rows.sort_unstable();
        rows
    }

    fn assert_equivalent(scalar: &QueryResult, batched: &QueryResult, ctx: &str) {
        assert_eq!(sorted_rows(scalar), sorted_rows(batched), "{ctx}: rows");
        assert_eq!(scalar.false_positives, batched.false_positives, "{ctx}: false positives");
        assert_eq!(scalar.unresolved, batched.unresolved, "{ctx}: unresolved");
    }

    #[test]
    fn batch_matches_scalar_on_hermit_ranges() {
        for scheme in [TidScheme::Logical, TidScheme::Physical] {
            let db = hermit_db(scheme, 10_000, 97);
            let preds: Vec<RangePredicate> = [(0.0, 50.0), (500.5, 700.25), (9_990.0, 20_000.0)]
                .iter()
                .map(|&(lb, ub)| RangePredicate::range(2, lb, ub))
                .collect();
            let batched = db.lookup_batch(&preds);
            assert_eq!(batched.len(), preds.len());
            for (pred, b) in preds.iter().zip(&batched) {
                let s = db.lookup_range(*pred, None);
                assert_equivalent(&s, b, &format!("{scheme:?} [{}, {}]", pred.lb, pred.ub));
            }
        }
    }

    #[test]
    fn batch_point_probes_use_equality_path() {
        let db = hermit_db(TidScheme::Physical, 5_000, 50);
        let preds: Vec<RangePredicate> = [0.0, 50.0, 123.0, 4_950.0, 9_999.0]
            .iter()
            .map(|&v| RangePredicate::point(2, v))
            .collect();
        for (pred, b) in preds.iter().zip(db.lookup_batch(&preds)) {
            let s = db.lookup_range(*pred, None);
            assert_equivalent(&s, &b, &format!("point {}", pred.lb));
        }
    }

    #[test]
    fn parallel_batch_preserves_input_order() {
        let db = hermit_db(TidScheme::Logical, 8_000, 0);
        let preds: Vec<RangePredicate> = (0..64)
            .map(|i| RangePredicate::range(2, i as f64 * 100.0, i as f64 * 100.0 + 49.0))
            .collect();
        let sequential = db.lookup_batch(&preds);
        let parallel = db.lookup_batch_with(&preds, None, &BatchOptions::with_threads(4));
        assert_eq!(sequential.len(), parallel.len());
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert_equivalent(s, p, &format!("pred {i}"));
        }
    }

    #[test]
    fn batch_on_unindexed_column_is_empty() {
        let db = Database::new(schema(), 0, TidScheme::Physical);
        let results = db.lookup_batch(&[RangePredicate::range(3, 0.0, 10.0)]);
        assert_eq!(results.len(), 1);
        assert!(results[0].rows.is_empty());
    }

    #[test]
    fn empty_batch_is_empty() {
        let db = hermit_db(TidScheme::Physical, 100, 0);
        assert!(db.lookup_batch(&[]).is_empty());
        assert!(db.lookup_batch_with(&[], None, &BatchOptions::with_threads(8)).is_empty());
    }

    #[test]
    fn batch_with_extra_conjunct() {
        let db = hermit_db(TidScheme::Physical, 10_000, 0);
        // other = 10 * target; constrain other ∈ [1500, 1590] → target ∈ [150, 159].
        let preds = [RangePredicate::range(2, 100.0, 199.0)];
        let extra = Some(RangePredicate::range(3, 1_500.0, 1_590.0));
        let b = &db.lookup_batch_with(&preds, extra, &BatchOptions::default())[0];
        let s = db.lookup_range(preds[0], extra);
        assert_equivalent(&s, b, "extra conjunct");
        assert!(b.false_positives >= 90);
    }
}
