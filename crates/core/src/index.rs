//! Secondary-index kinds managed by a [`crate::Database`].

use hermit_btree::BPlusTree;
use hermit_storage::{ColumnId, F64Key, Tid};
use hermit_trs::TrsTree;

/// A secondary index on one column: either a complete baseline B+-tree or a
/// succinct Hermit TRS-Tree routed through a host column.
#[derive(Debug, Clone)]
pub enum SecondaryIndex {
    /// Conventional complete index: target value → tid.
    Baseline(BPlusTree<F64Key, Tid>),
    /// Hermit index: a TRS-Tree modeling the target→host correlation, plus
    /// the host column whose baseline index serves the second hop.
    Hermit {
        /// The succinct correlation structure.
        trs: TrsTree,
        /// Column whose complete index answers the translated ranges.
        host: ColumnId,
    },
}

impl SecondaryIndex {
    /// True for the Hermit variant.
    pub fn is_hermit(&self) -> bool {
        matches!(self, SecondaryIndex::Hermit { .. })
    }

    /// Host column id for Hermit indexes.
    pub fn host_column(&self) -> Option<ColumnId> {
        match self {
            SecondaryIndex::Hermit { host, .. } => Some(*host),
            SecondaryIndex::Baseline(_) => None,
        }
    }

    /// Heap bytes held by the index structure.
    pub fn memory_bytes(&self) -> usize {
        match self {
            SecondaryIndex::Baseline(tree) => tree.memory_bytes(),
            SecondaryIndex::Hermit { trs, .. } => trs.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_trs::TrsParams;

    #[test]
    fn kind_accessors() {
        let baseline = SecondaryIndex::Baseline(BPlusTree::new());
        assert!(!baseline.is_hermit());
        assert_eq!(baseline.host_column(), None);

        let trs = TrsTree::build(TrsParams::default(), (0.0, 1.0), vec![]);
        let hermit = SecondaryIndex::Hermit { trs, host: 3 };
        assert!(hermit.is_hermit());
        assert_eq!(hermit.host_column(), Some(3));
        assert!(hermit.memory_bytes() > 0);
    }
}
