//! Secondary-index kinds managed by a [`crate::Database`].
//!
//! Both kinds are shareable across threads (the concurrent serving layer of
//! [`crate::shared`]): a baseline B+-tree sits behind a coarse
//! `parking_lot::RwLock` — point/range maintenance takes the write side
//! briefly, probes take the read side — while a Hermit index uses
//! [`ConcurrentTrsTree`], the Appendix-B wrapper whose writers divert to a
//! side buffer during background reorganization.

use crate::latches::{self, LatchedRwLock};
use hermit_btree::BPlusTree;
use hermit_storage::{ColumnId, F64Key, Tid};
use hermit_trs::ConcurrentTrsTree;

/// A secondary index on one column: either a complete baseline B+-tree or a
/// succinct Hermit TRS-Tree routed through a host column.
pub enum SecondaryIndex {
    /// Conventional complete index: target value → tid, behind a coarse
    /// reader-writer latch.
    Baseline(LatchedRwLock<BPlusTree<F64Key, Tid>>),
    /// Hermit index: a TRS-Tree modeling the target→host correlation, plus
    /// the host column whose baseline index serves the second hop. The tree
    /// carries its own Appendix-B latch + side buffer.
    Hermit {
        /// The succinct correlation structure.
        trs: ConcurrentTrsTree,
        /// Column whose complete index answers the translated ranges.
        host: ColumnId,
    },
}

impl SecondaryIndex {
    /// Wrap a built baseline tree.
    pub fn baseline(tree: BPlusTree<F64Key, Tid>) -> Self {
        SecondaryIndex::Baseline(LatchedRwLock::new(latches::level(40), tree))
    }

    /// True for the Hermit variant.
    pub fn is_hermit(&self) -> bool {
        matches!(self, SecondaryIndex::Hermit { .. })
    }

    /// Host column id for Hermit indexes.
    pub fn host_column(&self) -> Option<ColumnId> {
        match self {
            SecondaryIndex::Hermit { host, .. } => Some(*host),
            SecondaryIndex::Baseline(_) => None,
        }
    }

    /// Heap bytes held by the index structure (takes the read latch).
    pub fn memory_bytes(&self) -> usize {
        match self {
            SecondaryIndex::Baseline(tree) => tree.read().memory_bytes(),
            SecondaryIndex::Hermit { trs, .. } => trs.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_trs::{TrsParams, TrsTree};

    #[test]
    fn kind_accessors() {
        let baseline = SecondaryIndex::baseline(BPlusTree::new());
        assert!(!baseline.is_hermit());
        assert_eq!(baseline.host_column(), None);

        let trs = TrsTree::build(TrsParams::default(), (0.0, 1.0), vec![]);
        let hermit = SecondaryIndex::Hermit { trs: ConcurrentTrsTree::new(trs), host: 3 };
        assert!(hermit.is_hermit());
        assert_eq!(hermit.host_column(), Some(3));
        assert!(hermit.memory_bytes() > 0);
    }
}
