//! The concurrent serving layer: share one [`Database`] across readers,
//! writers, and a background maintenance worker.
//!
//! This is the paper's deployment story made concrete. Hermit is designed
//! for an RDBMS that serves mixed traffic: queries run constantly,
//! insert/delete churn never stops, and §4.4's *structure reorganization*
//! happens on a background thread so the foreground never pays for it.
//! Appendix B specifies the protocol — a coarse per-tree latch, writers
//! diverting to a temporal side buffer while a rebuild scan is in flight —
//! and [`hermit_trs::ConcurrentTrsTree`] implements it. This module wires
//! all of that into the database:
//!
//! * [`SharedDatabase`] is a cheap cloneable handle (an `Arc` around
//!   [`Database`]) whose entire query surface — planner-driven
//!   [`Database::execute`] / [`Database::execute_batch`], all plan kinds —
//!   plus [`Database::insert`] / [`Database::delete_by_pk`] take `&self`.
//!   Every underlying structure is individually latched (see
//!   [`crate::database`] module docs for the latch map).
//! * [`MaintenanceWorker`] is the §4.4 background thread: it periodically
//!   drains each Hermit index's reorganization queue via
//!   [`hermit_trs::ConcurrentTrsTree::reorganize_pass`], re-scanning the base table
//!   through [`TablePairSource`], so Algorithm-3 insert/delete triggers
//!   actually produce splits/merges under sustained churn instead of
//!   letting outlier buffers grow without bound. Composite Hermit indexes
//!   are reorganized too (under the registry latch).
//!
//! # Mapping to Appendix B
//!
//! | paper                                   | here                                          |
//! |-----------------------------------------|-----------------------------------------------|
//! | coarse tree latch                       | `RwLock<TrsTree>` inside `ConcurrentTrsTree`  |
//! | *reorganizing* flag                     | `AtomicBool` raised by `reorganize_pass`      |
//! | temporal side buffer                    | `Mutex<Vec<SideOp>>`, replayed at install     |
//! | background reorganization thread (§4.4) | [`MaintenanceWorker`]                         |
//! | base-table rebuild scan                 | [`TablePairSource`] over the shared heap      |
//!
//! Writers insert into the base table *first* and the indexes second (see
//! [`Database::insert_timed`]), so a rebuild scan always observes at least
//! the tuples the index knows about — the no-false-negative contract
//! survives the race between a writer and the worker.
//!
//! # Example
//!
//! ```
//! use hermit_core::shared::{MaintenanceConfig, MaintenanceWorker, SharedDatabase};
//! use hermit_core::Query;
//! use hermit_storage::{ColumnDef, Schema, TidScheme, Value};
//!
//! let mut db = hermit_core::Database::new(
//!     Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("host"), ColumnDef::float("target")]),
//!     0,
//!     TidScheme::Physical,
//! );
//! for i in 0..10_000 {
//!     db.insert(&[Value::Int(i), Value::Float(2.0 * i as f64), Value::Float(i as f64)]).unwrap();
//! }
//! db.create_baseline_index(1, true).unwrap();
//! db.create_hermit_index(2, 1).unwrap();
//!
//! let shared = SharedDatabase::new(db);
//! let worker = MaintenanceWorker::start(shared.clone(), MaintenanceConfig::default());
//! // Any number of threads may now clone `shared` and call
//! // `execute` / `insert` / `delete_by_pk` concurrently.
//! let r = shared.execute(&Query::new().range(2, 100.0, 199.0));
//! assert_eq!(r.rows.len(), 100);
//! worker.stop();
//! ```

use crate::composite::CompositeIndex;
use crate::database::{Database, TablePairSource};
use crate::index::SecondaryIndex;
use crate::query::Query;
use crate::{BatchOptions, QueryResult};
use hermit_storage::{Tid, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

// The serving layer exists because these hold; break either and
// `SharedDatabase` must not compile.
fn _assert_database_is_shareable() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<Database>();
}

/// A cheap cloneable handle serving one [`Database`] from many threads.
///
/// All methods take `&self`; clones share the same database. The handle
/// exposes the write path and maintenance hooks directly and everything
/// else through [`db`](Self::db) — the full `&self` query surface of
/// [`Database`] (`execute`, `execute_batch`, `plan`, `lookup_range`, …) is
/// available on the shared reference.
///
/// Structural DDL (`create_*_index`) takes `&mut Database`, so build the
/// schema and indexes *before* wrapping; [`into_inner`](Self::into_inner)
/// hands the database back once every clone is dropped.
pub struct SharedDatabase {
    inner: Arc<Database>,
}

impl Clone for SharedDatabase {
    fn clone(&self) -> Self {
        SharedDatabase { inner: Arc::clone(&self.inner) }
    }
}

impl SharedDatabase {
    /// Wrap a fully-built database for concurrent serving.
    pub fn new(db: Database) -> Self {
        SharedDatabase { inner: Arc::new(db) }
    }

    /// The shared database; every `&self` method (the whole query surface)
    /// is safe to call from any thread.
    pub fn db(&self) -> &Database {
        &self.inner
    }

    /// Plan and execute a query through the scalar pipeline.
    pub fn execute(&self, query: &Query) -> QueryResult {
        self.inner.execute(query)
    }

    /// Plan and execute a batch of queries through the vectorized pipeline.
    pub fn execute_batch(&self, queries: &[Query], opts: &BatchOptions) -> Vec<QueryResult> {
        self.inner.execute_batch(queries, opts)
    }

    /// Insert a row, maintaining every index (concurrent-writer safe).
    pub fn insert(&self, row: &[Value]) -> hermit_storage::Result<Tid> {
        self.inner.insert(row)
    }

    /// Delete a row by primary key, maintaining every index.
    pub fn delete_by_pk(&self, pk: i64) -> hermit_storage::Result<()> {
        self.inner.delete_by_pk(pk)
    }

    /// Open a multi-statement transaction (see [`crate::txn`]). The id is
    /// valid on any clone of this handle until committed or rolled back.
    pub fn begin(&self) -> Result<u64, crate::CoreError> {
        self.inner.begin()
    }

    /// Commit an open transaction: apply its deferred deletes, make its
    /// writes visible to snapshot readers, and force the WAL commit record
    /// durable (on durable databases).
    pub fn commit(&self, txn: u64) -> Result<(), crate::CoreError> {
        self.inner.commit_txn(txn)
    }

    /// Roll back an open transaction, restoring the exact pre-transaction
    /// state across the heap and every index.
    pub fn rollback(&self, txn: u64) -> Result<(), crate::CoreError> {
        self.inner.rollback_txn(txn)
    }

    /// Insert a row inside an open transaction (invisible to other readers
    /// until commit).
    pub fn insert_txn(&self, txn: u64, row: &[Value]) -> Result<Tid, crate::CoreError> {
        self.inner.insert_txn(txn, row)
    }

    /// Delete a row by primary key inside an open transaction (other
    /// readers keep seeing the row until commit).
    pub fn delete_by_pk_txn(&self, txn: u64, pk: i64) -> Result<(), crate::CoreError> {
        self.inner.delete_by_pk_txn(txn, pk)
    }

    /// Plan and execute a query reading *as* an open transaction: its own
    /// uncommitted writes are visible, its pending deletes are not.
    pub fn execute_for_txn(&self, query: &Query, txn: u64) -> QueryResult {
        self.inner.execute_for_txn(query, txn)
    }

    /// Cumulative transaction counters (begins/commits/aborts/conflicts)
    /// plus the active-transaction gauge, for the stats exporter.
    pub fn txn_counters(&self) -> hermit_txn::TxnCounters {
        self.inner.txn_counters()
    }

    /// Number of currently open transactions.
    pub fn txn_active(&self) -> usize {
        self.inner.txn_active()
    }

    /// Unwrap the handle, returning the database once this is the last
    /// clone (e.g. to run DDL); otherwise gives the handle back.
    pub fn into_inner(self) -> Result<Database, SharedDatabase> {
        Arc::try_unwrap(self.inner).map_err(|inner| SharedDatabase { inner })
    }

    /// Take a live checkpoint of a durable database (see
    /// [`crate::recovery`]): writers are quiesced for the duration via the
    /// durability latch — concurrent `insert`/`delete_by_pk` calls block
    /// briefly, readers and the background maintenance worker keep running.
    /// Typed [`crate::CoreError::NotDurable`] when the database was not
    /// opened/created through the durability API.
    pub fn checkpoint(&self) -> Result<(), crate::CoreError> {
        let dir = self
            .inner
            .durability_dir()
            .ok_or(crate::CoreError::NotDurable {
                reason: "database has no attached durability directory",
            })?
            .to_path_buf();
        self.inner.checkpoint(&dir)
    }

    /// Force the WAL commit boundary: every statement executed so far
    /// survives a crash. No-op for non-durable databases.
    pub fn wal_commit(&self) -> hermit_storage::Result<()> {
        self.inner.wal_commit()
    }

    /// Run one synchronous maintenance sweep: for every Hermit index whose
    /// reorganization queue is non-empty, execute one Appendix-B
    /// [`hermit_trs::ConcurrentTrsTree::reorganize_pass`] over up to `limit` queued
    /// candidates, re-scanning the base table through [`TablePairSource`];
    /// then reorganize queued candidates of composite Hermit indexes under
    /// the registry latch. Returns the number of candidates processed.
    ///
    /// [`MaintenanceWorker`] calls this in a loop; tests call it directly
    /// for deterministic reorganization.
    pub fn maintenance_pass(&self, limit: usize) -> usize {
        let db = &*self.inner;
        let mut processed = 0;

        // Single-column Hermit indexes: the Appendix-B pass proper.
        for col in db.indexed_columns() {
            let Some(SecondaryIndex::Hermit { trs, host }) = db.index(col) else { continue };
            if trs.reorg_queue_len() == 0 {
                continue;
            }
            let source = TablePairSource { db, target: col, host: *host };
            processed += trs.reorganize_pass(&source, limit);
        }

        // Composite Hermit indexes share the registry latch, so their
        // rebuild runs entirely under it — including the base-table scan.
        // Coarser than the single-column path, but necessary: scanning
        // outside the latch would let a racing insert land in both the heap
        // and the composite tree *between* snapshot and rebuild, and the
        // rebuild would then erase it from the rebuilt leaf (a false
        // negative). Composite reorganization is as rare as any other §4.4
        // trigger. Targets are collected under the read latch first to skip
        // the write latch entirely when nothing is queued.
        let targets: Vec<(usize, usize, usize)> = {
            let composites = db.composites();
            (0..composites.len())
                .filter_map(|i| match composites.get(i) {
                    Some(CompositeIndex::Hermit { trs, target, host, .. })
                        if trs.reorg_queue_len() > 0 =>
                    {
                        Some((i, *target, *host))
                    }
                    _ => None,
                })
                .collect()
        };
        for (i, target, host) in targets {
            let source = TablePairSource { db, target, host };
            let mut composites = self.inner.composites_mut();
            if let Some(CompositeIndex::Hermit { trs, .. }) = composites.get_mut_for_maintenance(i)
            {
                let report = trs.reorganize_batch(&source, limit);
                processed += report.splits + report.merges;
            }
        }
        processed
    }

    /// Total completed background reorganization passes across all
    /// single-column Hermit indexes (the §4.4 observability counter).
    pub fn reorg_passes(&self) -> u64 {
        let db = &*self.inner;
        db.indexed_columns()
            .into_iter()
            .filter_map(|col| match db.index(col) {
                Some(SecondaryIndex::Hermit { trs, .. }) => Some(trs.reorg_passes()),
                _ => None,
            })
            .sum()
    }

    /// Queued-but-undrained reorganization candidates across all
    /// single-column Hermit indexes.
    pub fn reorg_queue_len(&self) -> usize {
        let db = &*self.inner;
        db.indexed_columns()
            .into_iter()
            .filter_map(|col| match db.index(col) {
                Some(SecondaryIndex::Hermit { trs, .. }) => Some(trs.reorg_queue_len()),
                _ => None,
            })
            .sum()
    }

    /// Share of outlier-buffered tuples in a Hermit index on `col`
    /// (buffered / (buffered + modeled)); `None` when `col` carries no
    /// Hermit index. The churn metric the maintenance worker drives down.
    ///
    /// Both terms come from the tree itself: the denominator is the sum of
    /// the leaves' `covered` counters (model-covered *plus* buffered
    /// tuples), **not** the table's row count — rows with a NULL in the
    /// target or host column never enter the index, and the heap can hold
    /// multiple rows per key, so the two denominators diverge under churn.
    pub fn outlier_share(&self, col: hermit_storage::ColumnId) -> Option<f64> {
        match self.inner.index(col)? {
            SecondaryIndex::Hermit { trs, .. } => {
                let stats = trs.stats();
                Some(stats.outliers as f64 / stats.covered.max(1) as f64)
            }
            SecondaryIndex::Baseline(_) => None,
        }
    }

    /// Buffer-pool `(hits, misses, evictions)` of the paged substrate;
    /// `None` on the in-memory heap. See [`Database::pool_counters`].
    pub fn pool_counters(&self) -> Option<(u64, u64, u64)> {
        self.inner.pool_counters()
    }

    /// Not-yet-durable WAL tail depth; `None` for non-durable databases.
    /// See [`Database::wal_depth`].
    pub fn wal_depth(&self) -> Option<usize> {
        self.inner.wal_depth()
    }
}

/// Knobs for the background maintenance worker.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// Sleep between sweeps when the queues were empty.
    pub idle_sleep: Duration,
    /// Maximum queued candidates drained per Hermit index per sweep (the
    /// paper's "several candidate nodes in one scan").
    pub pass_limit: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig { idle_sleep: Duration::from_millis(2), pass_limit: 8 }
    }
}

/// Cumulative counters published by a [`MaintenanceWorker`].
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Sweeps executed (including empty ones).
    pub sweeps: AtomicU64,
    /// Reorganization candidates processed across all sweeps.
    pub candidates: AtomicU64,
}

/// The §4.4 background reorganization thread.
///
/// Runs [`SharedDatabase::maintenance_pass`] in a loop until
/// [`stop`](Self::stop) is called (or the worker is dropped). Foreground
/// writers racing a pass follow the Appendix-B side-buffer protocol inside
/// [`hermit_trs::ConcurrentTrsTree`]; readers only block for the brief install step.
pub struct MaintenanceWorker {
    stop: Arc<AtomicBool>,
    stats: Arc<WorkerStats>,
    handle: Option<JoinHandle<()>>,
}

impl MaintenanceWorker {
    /// Spawn the worker thread over a shared handle.
    pub fn start(db: SharedDatabase, config: MaintenanceConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(WorkerStats::default());
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("hermit-maintenance".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    let processed = db.maintenance_pass(config.pass_limit);
                    thread_stats.sweeps.fetch_add(1, Ordering::Relaxed);
                    thread_stats.candidates.fetch_add(processed as u64, Ordering::Relaxed);
                    if processed == 0 {
                        std::thread::sleep(config.idle_sleep);
                    }
                }
            })
            .expect("spawn maintenance worker");
        MaintenanceWorker { stop, stats, handle: Some(handle) }
    }

    /// Cumulative worker counters (shared with the running thread).
    pub fn stats(&self) -> &WorkerStats {
        &self.stats
    }

    /// Signal the thread and join it, returning the final counters as
    /// `(sweeps, candidates)`.
    pub fn stop(mut self) -> (u64, u64) {
        self.shutdown();
        (self.stats.sweeps.load(Ordering::Relaxed), self.stats.candidates.load(Ordering::Relaxed))
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MaintenanceWorker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::RangePredicate;
    use hermit_storage::{ColumnDef, Schema, TidScheme};

    fn shared_db(n: usize) -> SharedDatabase {
        let schema = Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("host"),
            ColumnDef::float("target"),
        ]);
        let mut db = Database::new(schema, 0, TidScheme::Physical);
        for i in 0..n {
            let m = i as f64;
            db.insert(&[Value::Int(i as i64), Value::Float(2.0 * m), Value::Float(m)]).unwrap();
        }
        db.create_baseline_index(1, true).unwrap();
        db.create_hermit_index(2, 1).unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn handle_serves_reads_and_writes() {
        let shared = shared_db(5_000);
        let r = shared.execute(&Query::new().range(2, 10.0, 19.0));
        assert_eq!(r.rows.len(), 10);
        shared.insert(&[Value::Int(9_999_999), Value::Float(1.0e7), Value::Float(10.5)]).unwrap();
        let r = shared.execute(&Query::new().range(2, 10.0, 19.0));
        assert_eq!(r.rows.len(), 11, "outlier insert visible through the handle");
        shared.delete_by_pk(15).unwrap();
        let r = shared.execute(&Query::new().range(2, 10.0, 19.0));
        assert_eq!(r.rows.len(), 10);
    }

    #[test]
    fn maintenance_pass_drains_queue() {
        let shared = shared_db(5_000);
        // Regime change in [2000, 3000]: the old rows leave, replacements
        // follow a different (but locally linear, hence modelable)
        // correlation. The inserts are outliers under the stale model and
        // trip the split trigger; a reorganization refits the region.
        for pk in 2_000..3_000i64 {
            shared.delete_by_pk(pk).unwrap();
        }
        for i in 0..4_000u64 {
            let m = 2_000.0 + i as f64 * 0.25;
            shared
                .insert(&[
                    Value::Int(1_000_000 + i as i64),
                    Value::Float(9.0 * m + 77.0),
                    Value::Float(m),
                ])
                .unwrap();
        }
        assert!(shared.reorg_queue_len() > 0, "regime shift must queue candidates");
        let before = shared.outlier_share(2).unwrap();
        assert!(before > 0.2, "the new regime should be buffered as outliers, got {before}");
        let processed = shared.maintenance_pass(16);
        assert!(processed > 0, "pass must process queued candidates");
        assert!(shared.reorg_passes() > 0);
        let after = shared.outlier_share(2).unwrap();
        assert!(after < before / 2.0, "reorg must shrink outlier share: {before} -> {after}");
        // New-regime tuples must remain findable (no false negatives).
        let r = shared.execute(&Query::filter(RangePredicate::range(2, 2_100.0, 2_110.0)));
        assert_eq!(r.rows.len(), 41, "rows in the refitted region lost");
    }

    #[test]
    fn worker_runs_and_stops() {
        let shared = shared_db(2_000);
        let worker = MaintenanceWorker::start(
            shared.clone(),
            MaintenanceConfig { idle_sleep: Duration::from_micros(100), pass_limit: 4 },
        );
        for i in 0..3_000u64 {
            shared
                .insert(&[Value::Int(500_000 + i as i64), Value::Float(9.0e9), Value::Float(777.0)])
                .unwrap();
        }
        // Give the worker a moment to drain, then stop it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while shared.reorg_queue_len() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let (sweeps, _candidates) = worker.stop();
        assert!(sweeps > 0);
        assert_eq!(shared.reorg_queue_len(), 0, "worker must drain the queue");
        assert!(shared.reorg_passes() > 0);
    }

    #[test]
    fn into_inner_round_trips() {
        let shared = shared_db(100);
        let clone = shared.clone();
        let back = shared.into_inner();
        assert!(back.is_err(), "outstanding clone must block unwrap");
        let shared = back.err().unwrap();
        drop(clone);
        let db = shared.into_inner().ok().expect("last handle unwraps");
        assert_eq!(db.len(), 100);
    }
}
