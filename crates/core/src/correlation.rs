//! Correlation discovery (Appendix D.1 of the paper).
//!
//! Hermit relies on the RDBMS (or the DBA) to surface candidate column
//! correlations. This module implements the screening workflow the paper
//! describes: for a target column and each candidate host column, compute
//! Pearson (linear) and Spearman (monotone) coefficients over a random
//! sample; a candidate qualifies when either coefficient's magnitude
//! reaches the threshold. Monotone-but-nonlinear correlations (sigmoid)
//! pass via Spearman; non-monotone ones (sin) fail both — exactly the
//! Fig. 25 taxonomy.

use hermit_stats::{pearson, sampling, spearman};
use hermit_storage::{ColumnId, Table};

/// Configuration for correlation discovery.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Minimum |coefficient| (Pearson or Spearman) to qualify.
    pub threshold: f64,
    /// Sample size drawn from the table (discovery must not scan 20M rows).
    pub sample_size: usize,
    /// RNG seed for reproducible sampling.
    pub seed: u64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig { threshold: 0.8, sample_size: 10_000, seed: 0xD15C0u64 }
    }
}

/// Outcome of screening one (target, host) column pair.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationReport {
    /// Candidate host column.
    pub host: ColumnId,
    /// Pearson coefficient over the sample.
    pub pearson: f64,
    /// Spearman coefficient over the sample.
    pub spearman: f64,
}

impl CorrelationReport {
    /// The larger coefficient magnitude — the score used for ranking.
    pub fn score(&self) -> f64 {
        self.pearson.abs().max(self.spearman.abs())
    }
}

/// Screen `target` against every column in `hosts`, returning qualifying
/// candidates sorted best-first.
///
/// Rows where either side is NULL are skipped (the Stock table's missing
/// readings must not poison the coefficients).
pub fn discover_correlations(
    table: &Table,
    target: ColumnId,
    hosts: &[ColumnId],
    config: &DiscoveryConfig,
) -> Vec<CorrelationReport> {
    let mut rng = sampling::seeded_rng(config.seed);
    let total = table.total_rows();
    let sample = sampling::sample_indices(&mut rng, total, config.sample_size);

    let target_col = match table.column(target) {
        Ok(c) => c,
        Err(_) => return Vec::new(),
    };

    let mut reports: Vec<CorrelationReport> = hosts
        .iter()
        .filter(|&&h| h != target)
        .filter_map(|&host| {
            let host_col = table.column(host).ok()?;
            let mut xs = Vec::with_capacity(sample.len());
            let mut ys = Vec::with_capacity(sample.len());
            for &i in &sample {
                if let (Some(x), Some(y)) = (target_col.get_f64(i), host_col.get_f64(i)) {
                    xs.push(x);
                    ys.push(y);
                }
            }
            if xs.len() < 2 {
                return None;
            }
            let report = CorrelationReport {
                host,
                pearson: pearson(&xs, &ys),
                spearman: spearman(&xs, &ys),
            };
            (report.score() >= config.threshold).then_some(report)
        })
        .collect();
    reports.sort_by(|a, b| b.score().total_cmp(&a.score()));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_storage::{ColumnDef, Schema, Value};

    /// Table with: pk | linear(host) | sigmoid(host) | sin(noise) | target
    fn test_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("linear"),
            ColumnDef::float("sigmoid"),
            ColumnDef::float("sin"),
            ColumnDef::float("target"),
        ]);
        let mut t = Table::new(schema);
        for i in 0..n {
            let m = i as f64 / n as f64 * 20.0 - 10.0;
            t.insert(&[
                Value::Int(i as i64),
                Value::Float(3.0 * m + 1.0),
                Value::Float(1.0 / (1.0 + (-m).exp())),
                Value::Float((m * 50.0).sin()),
                Value::Float(m),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn discovers_linear_and_monotone_but_not_sin() {
        let t = test_table(20_000);
        let reports = discover_correlations(&t, 4, &[1, 2, 3], &DiscoveryConfig::default());
        let hosts: Vec<ColumnId> = reports.iter().map(|r| r.host).collect();
        assert!(hosts.contains(&1), "linear host must qualify");
        assert!(hosts.contains(&2), "sigmoid host must qualify via Spearman");
        assert!(!hosts.contains(&3), "sin must not qualify");
        // Linear should rank at (or tied with) the top.
        assert!(reports[0].score() > 0.99);
    }

    #[test]
    fn sigmoid_needs_spearman() {
        let t = test_table(20_000);
        let reports = discover_correlations(&t, 4, &[2], &DiscoveryConfig::default());
        assert_eq!(reports.len(), 1);
        let r = reports[0];
        assert!(
            r.spearman.abs() > r.pearson.abs(),
            "sigmoid is monotone, not linear: spearman {} vs pearson {}",
            r.spearman,
            r.pearson
        );
    }

    #[test]
    fn target_excluded_from_candidates() {
        let t = test_table(5_000);
        let reports = discover_correlations(&t, 4, &[4], &DiscoveryConfig::default());
        assert!(reports.is_empty());
    }

    #[test]
    fn nulls_are_skipped() {
        let schema = Schema::new(vec![ColumnDef::float("a"), ColumnDef::float_null("b")]);
        let mut t = Table::new(schema);
        for i in 0..1_000 {
            let b = if i % 3 == 0 { Value::Null } else { Value::Float(2.0 * i as f64) };
            t.insert(&[Value::Float(i as f64), b]).unwrap();
        }
        let reports = discover_correlations(&t, 0, &[1], &DiscoveryConfig::default());
        assert_eq!(reports.len(), 1);
        assert!(reports[0].pearson > 0.99);
    }

    #[test]
    fn high_threshold_filters_everything() {
        let t = test_table(5_000);
        let config = DiscoveryConfig { threshold: 1.1, ..Default::default() };
        assert!(discover_correlations(&t, 4, &[1, 2, 3], &config).is_empty());
    }

    #[test]
    fn bad_column_ids_are_safe() {
        let t = test_table(100);
        assert!(discover_correlations(&t, 99, &[1], &DiscoveryConfig::default()).is_empty());
        assert!(discover_correlations(&t, 4, &[99], &DiscoveryConfig::default()).is_empty());
    }
}
