//! The cost-based planner: turn a declarative [`Query`] into an
//! inspectable [`QueryPlan`].
//!
//! This is the seam the paper's §3 architecture diagram puts *in front of*
//! Hermit: "the query optimizer decides, at plan time, whether a predicate
//! is served by a complete index or routed through a TRS-Tree". The
//! planner enumerates every access path the database's indexes support for
//! the query's conjuncts —
//!
//! * **Hermit route** — the conjunct's column carries a TRS-Tree whose
//!   host column has a baseline B+-tree (Fig. 3 phases 1–2);
//! * **index range scan** — the conjunct's column carries a complete
//!   baseline B+-tree;
//! * **composite box scan** — two conjuncts match a composite
//!   `(leading, value)` index (§3's multi-column case), baseline or
//!   Hermit-routed;
//! * **seq scan** — the always-available fallback: stream the heap and
//!   validate every conjunct (this is what makes queries over unindexed
//!   columns return rows instead of silently nothing);
//!
//! — estimates each path's cost from the table's incrementally-maintained
//! [`ColumnStats`] (value ranges → uniform-assumption selectivities, the
//! same "optimizer statistics" Algorithm 1 reads) plus per-structure
//! constants, and picks the cheapest. All conjuncts not answered exactly
//! by the chosen path are pushed into phase-4 base-table validation
//! ([`QueryPlan::recheck`]), generalizing the old single `extra`
//! predicate.
//!
//! [`QueryPlan`]'s `Display` is the stable EXPLAIN format asserted in the
//! test suite and shown by `examples/query_plans.rs`.

use crate::composite::CompositeIndex;
use crate::database::Database;
use crate::executor::RangePredicate;
use crate::index::SecondaryIndex;
use crate::query::Query;
use hermit_storage::{ColumnId, ColumnStats, TidScheme};
use std::fmt;

/// Cost of streaming one heap row in a sequential scan.
const COST_SEQ_ROW: f64 = 1.0;
/// Cost of one B+-tree descent.
const COST_PROBE: f64 = 12.0;
/// Cost per index entry walked during a range scan.
const COST_ENTRY: f64 = 0.5;
/// Cost per candidate resolved + fetched + validated (phases 3–4); the
/// dominant term on the paged substrate, where it is a buffer-pool access.
const COST_CANDIDATE: f64 = 4.0;
/// Cost of one TRS-Tree traversal (phase 1).
const COST_TRS: f64 = 8.0;

/// The structure that drives phases 1–2 of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Hermit route: TRS-Tree on the predicate's column translates it into
    /// ranges on `host`, whose baseline B+-tree serves the probes.
    Hermit {
        /// The driving conjunct (answered approximately).
        pred: RangePredicate,
        /// Host column whose complete index is probed.
        host: ColumnId,
    },
    /// Complete baseline B+-tree range scan on the predicate's column.
    Baseline {
        /// The driving conjunct (answered exactly).
        pred: RangePredicate,
    },
    /// Box scan on a composite `(leading, value)` baseline B+-tree.
    CompositeBaseline {
        /// Registry position of the composite index.
        index: usize,
        /// Conjunct on the leading column.
        leading: RangePredicate,
        /// Conjunct on the value column.
        value: RangePredicate,
    },
    /// Composite Hermit route: the value conjunct is translated through a
    /// TRS-Tree into host ranges, box-scanned on the companion
    /// `(leading, host)` composite baseline.
    CompositeHermit {
        /// Registry position of the composite Hermit index.
        index: usize,
        /// Conjunct on the leading column.
        leading: RangePredicate,
        /// Conjunct on the target (value) column.
        value: RangePredicate,
        /// Host column of the TRS-Tree.
        host: ColumnId,
    },
    /// Full heap scan; every conjunct is validated in-scan.
    SeqScan,
}

/// Coarse plan classification, used by the bench-smoke plan counters and
/// regression guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// TRS-Tree route (single-column or composite).
    Hermit,
    /// Complete single-column baseline index.
    Baseline,
    /// Composite `(leading, value)` box scan.
    Composite,
    /// Full heap scan.
    Scan,
}

impl PlanKind {
    /// Stable lowercase label (EXPLAIN header).
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::Hermit => "hermit route",
            PlanKind::Baseline => "index range scan",
            PlanKind::Composite => "composite box scan",
            PlanKind::Scan => "seq scan",
        }
    }

    /// One-word stable key (JSON counters).
    pub fn key(&self) -> &'static str {
        match self {
            PlanKind::Hermit => "hermit",
            PlanKind::Baseline => "baseline",
            PlanKind::Composite => "composite",
            PlanKind::Scan => "scan",
        }
    }

    /// All kinds, in counter-emission order.
    pub const ALL: [PlanKind; 4] =
        [PlanKind::Hermit, PlanKind::Baseline, PlanKind::Composite, PlanKind::Scan];
}

/// An executable, inspectable query plan.
///
/// Produced by [`Database::plan`]; executed by [`Database::execute_plan`]
/// (scalar) or [`Database::execute_plans`] (vectorized). The `Display`
/// impl renders the stable EXPLAIN format.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The chosen driving access path.
    pub access: AccessPath,
    /// Conjuncts re-checked at the base table in phase 4: the driving
    /// conjunct too when the path is approximate (Hermit), residual-only
    /// when it is exact (baseline).
    pub recheck: Vec<RangePredicate>,
    /// Row limit carried over from the query.
    pub limit: Option<usize>,
    /// Projection carried over from the query.
    pub projection: Option<Vec<ColumnId>>,
    /// Estimated total cost (abstract units).
    pub est_cost: f64,
    /// Estimated candidates fetched in phases 3–4.
    pub est_candidates: f64,
    /// Estimated qualifying rows.
    pub est_rows: f64,
    /// Live heap rows at plan time.
    pub heap_rows: usize,
    /// Tid scheme in force (shapes phase 3).
    pub scheme: TidScheme,
    /// `(column, name)` labels for every column the plan mentions.
    labels: Vec<(ColumnId, String)>,
}

impl QueryPlan {
    /// Coarse classification of the access path.
    pub fn kind(&self) -> PlanKind {
        match self.access {
            AccessPath::Hermit { .. } => PlanKind::Hermit,
            AccessPath::Baseline { .. } => PlanKind::Baseline,
            AccessPath::CompositeBaseline { .. } | AccessPath::CompositeHermit { .. } => {
                PlanKind::Composite
            }
            AccessPath::SeqScan => PlanKind::Scan,
        }
    }

    fn col_str(&self, cid: ColumnId) -> String {
        match self.labels.iter().find(|(c, _)| *c == cid) {
            Some((_, name)) => format!("{name}#{cid}"),
            None => format!("col#{cid}"),
        }
    }

    fn pred_str(&self, p: &RangePredicate) -> String {
        if p.lb == p.ub {
            format!("{} = {}", self.col_str(p.column), p.lb)
        } else {
            format!("{} in [{}, {}]", self.col_str(p.column), p.lb, p.ub)
        }
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Query Plan [{}] (cost={:.1}, candidates~{:.0}, rows~{:.0}, heap_rows={})",
            self.kind().label(),
            self.est_cost,
            self.est_candidates,
            self.est_rows,
            self.heap_rows
        )?;
        match &self.access {
            AccessPath::Hermit { pred, host } => {
                writeln!(
                    f,
                    "  phase 1: TRS-Tree translate {} -> ranges on {}",
                    self.pred_str(pred),
                    self.col_str(*host)
                )?;
                writeln!(f, "  phase 2: probe baseline B+-tree on {}", self.col_str(*host))?;
            }
            AccessPath::Baseline { pred } => {
                writeln!(
                    f,
                    "  phase 2: range scan baseline B+-tree on {} (exact)",
                    self.pred_str(pred)
                )?;
            }
            AccessPath::CompositeBaseline { index, leading, value } => {
                writeln!(
                    f,
                    "  phase 2: box scan composite B+-tree #{index} on ({}, {})",
                    self.pred_str(leading),
                    self.pred_str(value)
                )?;
            }
            AccessPath::CompositeHermit { index, leading, value, host } => {
                writeln!(
                    f,
                    "  phase 1: TRS-Tree translate {} -> ranges on {}",
                    self.pred_str(value),
                    self.col_str(*host)
                )?;
                writeln!(
                    f,
                    "  phase 2: box scan composite B+-tree #{index} on ({}, {} ranges)",
                    self.pred_str(leading),
                    self.col_str(*host)
                )?;
            }
            AccessPath::SeqScan => {
                writeln!(f, "  phase 2: seq scan heap ({} rows)", self.heap_rows)?;
            }
        }
        if !matches!(self.access, AccessPath::SeqScan) {
            let hop = match self.scheme {
                TidScheme::Physical => "physical tids: direct",
                TidScheme::Logical => "logical tids: primary-index hop",
            };
            writeln!(f, "  phase 3: resolve tids ({hop})")?;
        }
        if self.recheck.is_empty() {
            writeln!(f, "  phase 4: validate (exact index hits; nothing to re-check)")?;
        } else {
            let checks: Vec<String> = self.recheck.iter().map(|p| self.pred_str(p)).collect();
            writeln!(f, "  phase 4: validate {}", checks.join(" AND "))?;
        }
        if let Some(n) = self.limit {
            writeln!(f, "  limit: {n}")?;
        }
        if let Some(cols) = &self.projection {
            let cols: Vec<String> = cols.iter().map(|&c| self.col_str(c)).collect();
            writeln!(f, "  project: [{}]", cols.join(", "))?;
        }
        Ok(())
    }
}

/// Estimated fraction of rows matching `pred`, from the column's
/// incrementally-maintained min/max range under a uniformity assumption.
///
/// The range stats are append-only, so every live value lies inside the
/// recorded range: a predicate entirely outside it genuinely matches
/// nothing, and an inverted predicate matches nothing by definition.
/// *Counts*, by contrast, are live (deletes decrement them): a column whose
/// non-null values were all deleted matches nothing even though its stale
/// range still overlaps the predicate, and the point-predicate floor is
/// `1/live_non_null`, not `1/observed` — after heavy deletion the old
/// append-only counts would overestimate table cardinality and make index
/// paths win when a scan of the shrunken heap is cheaper. Table cardinality
/// itself (`n_rows`, the scan cost and candidate scale) is always the live
/// `heap.len()`.
fn selectivity(pred: &RangePredicate, stats: Option<&ColumnStats>, n_rows: usize) -> f64 {
    if pred.lb > pred.ub {
        return 0.0;
    }
    let Some(stats) = stats else {
        return 0.0;
    };
    let Some((min, max)) = stats.range() else {
        return 0.0;
    };
    let live = stats.non_null_count().min(n_rows as u64);
    if live == 0 {
        return 0.0;
    }
    if pred.ub < min || pred.lb > max {
        return 0.0;
    }
    let width = max - min;
    let floor = 1.0 / live as f64;
    if width <= 0.0 {
        return 1.0;
    }
    let overlap = (pred.ub.min(max) - pred.lb.max(min)).max(0.0) / width;
    overlap.max(floor).min(1.0)
}

/// One enumerated access-path candidate during planning.
struct Candidate {
    access: AccessPath,
    recheck: Vec<RangePredicate>,
    cost: f64,
    candidates: f64,
}

impl Database {
    /// Plan a [`Query`]: enumerate the access paths the current indexes
    /// support, cost them from column statistics, and return the cheapest
    /// as an executable [`QueryPlan`].
    pub fn plan(&self, query: &Query) -> QueryPlan {
        let n = self.len();
        let nf = n as f64;
        let conjuncts = query.conjuncts();
        let stats_of = |cid: ColumnId| self.heap().stats(cid).ok();

        // Per-conjunct selectivities, fetched once up front: `heap.stats`
        // locks + clones on the paged substrate, and the composite loop
        // below is O(conjuncts² × composites) — it indexes into this table
        // instead of re-fetching.
        let sels: Vec<f64> =
            conjuncts.iter().map(|p| selectivity(p, stats_of(p.column).as_ref(), n)).collect();

        // Estimated qualifying rows: independence assumption across
        // conjuncts (textbook, and as wrong as it is everywhere else).
        let est_rows = sels.iter().product::<f64>() * nf;

        // Fraction of extra host-range width a TRS-Tree's error bound adds
        // on `host`, relative to the host column's full value range; host
        // widths are memoized per column.
        let mut host_widths: Vec<(ColumnId, Option<f64>)> = Vec::new();
        let mut trs_inflation = |error_bound: f64, host: ColumnId| -> f64 {
            let width = match host_widths.iter().find(|(c, _)| *c == host) {
                Some(&(_, w)) => w,
                None => {
                    let w = stats_of(host)
                        .and_then(|s| s.range())
                        .and_then(|(lo, hi)| (hi > lo).then_some(hi - lo));
                    host_widths.push((host, w));
                    w
                }
            };
            width.map_or(0.0, |w| 2.0 * error_bound / w)
        };

        let residual = |skip: &[usize]| -> Vec<RangePredicate> {
            conjuncts
                .iter()
                .enumerate()
                .filter(|(i, _)| !skip.contains(i))
                .map(|(_, p)| *p)
                .collect()
        };

        let mut paths: Vec<Candidate> = Vec::new();

        // Single-column index paths, one per conjunct whose column is
        // indexed.
        for (i, pred) in conjuncts.iter().enumerate() {
            match self.index(pred.column) {
                Some(SecondaryIndex::Baseline(_)) => {
                    let cand = sels[i] * nf;
                    paths.push(Candidate {
                        access: AccessPath::Baseline { pred: *pred },
                        recheck: residual(&[i]),
                        cost: COST_PROBE + cand * (COST_ENTRY + COST_CANDIDATE),
                        candidates: cand,
                    });
                }
                Some(SecondaryIndex::Hermit { trs, host }) => {
                    // Routable only while the host's complete index exists.
                    if matches!(self.index(*host), Some(SecondaryIndex::Baseline(_))) {
                        let sel =
                            (sels[i] + trs_inflation(trs.params().error_bound, *host)).min(1.0);
                        let cand = sel * nf;
                        let mut recheck = vec![*pred];
                        recheck.extend(residual(&[i]));
                        paths.push(Candidate {
                            access: AccessPath::Hermit { pred: *pred, host: *host },
                            recheck,
                            cost: COST_TRS + COST_PROBE + cand * (COST_ENTRY + COST_CANDIDATE),
                            candidates: cand,
                        });
                    }
                }
                None => {}
            }
        }

        // Composite box paths: ordered conjunct pairs matching a registered
        // (leading, value) composite index. One read-latch acquisition
        // covers the whole enumeration.
        let composites = self.composites();
        for (i, lead) in conjuncts.iter().enumerate() {
            for (j, val) in conjuncts.iter().enumerate() {
                if i == j {
                    continue;
                }
                for idx in 0..composites.len() {
                    let Some(ci) = composites.get(idx) else { continue };
                    let lead_sel = sels[i];
                    match ci {
                        CompositeIndex::Baseline { leading, value, .. }
                            if *leading == lead.column && *value == val.column =>
                        {
                            let cand = lead_sel * sels[j] * nf;
                            paths.push(Candidate {
                                access: AccessPath::CompositeBaseline {
                                    index: idx,
                                    leading: *lead,
                                    value: *val,
                                },
                                // The box scan filters both keys exactly
                                // in-index, so only the residual conjuncts
                                // need phase-4 validation.
                                recheck: residual(&[i, j]),
                                cost: COST_PROBE
                                    + lead_sel * nf * COST_ENTRY
                                    + cand * COST_CANDIDATE,
                                candidates: cand,
                            });
                        }
                        CompositeIndex::Hermit { trs, leading, target, host }
                            if *leading == lead.column
                                && *target == val.column
                                && composites.companion_baseline(*leading, *host).is_some() =>
                        {
                            let vsel =
                                (sels[j] + trs_inflation(trs.params().error_bound, *host)).min(1.0);
                            let cand = lead_sel * vsel * nf;
                            // Both box conjuncts must be re-checked: the
                            // value conjunct was translated approximately,
                            // and the TRS-Tree's outlier tids join the
                            // candidate set *without* passing through the
                            // box scan, so even the leading conjunct can be
                            // violated by an outlier row.
                            let mut recheck = vec![*lead, *val];
                            recheck.extend(residual(&[i, j]));
                            paths.push(Candidate {
                                access: AccessPath::CompositeHermit {
                                    index: idx,
                                    leading: *lead,
                                    value: *val,
                                    host: *host,
                                },
                                recheck,
                                cost: COST_TRS
                                    + COST_PROBE
                                    + lead_sel * nf * COST_ENTRY
                                    + cand * COST_CANDIDATE,
                                candidates: cand,
                            });
                        }
                        _ => {}
                    }
                }
            }
        }

        // The fallback that is always available: scan the heap, validate
        // everything in-scan.
        paths.push(Candidate {
            access: AccessPath::SeqScan,
            recheck: conjuncts.to_vec(),
            cost: nf * COST_SEQ_ROW,
            candidates: nf,
        });

        // Cheapest wins; earlier enumeration order breaks ties (indexes
        // before composites before the scan).
        let best = paths
            .into_iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| a.cost.total_cmp(&b.cost).then(ia.cmp(ib)))
            .map(|(_, c)| c)
            .expect("seq scan is always a candidate");

        // Column labels for EXPLAIN: every column the plan mentions.
        let mut mentioned: Vec<ColumnId> = conjuncts.iter().map(|p| p.column).collect();
        match &best.access {
            AccessPath::Hermit { host, .. } | AccessPath::CompositeHermit { host, .. } => {
                mentioned.push(*host)
            }
            _ => {}
        }
        if let Some(cols) = query.projection() {
            mentioned.extend_from_slice(cols);
        }
        mentioned.sort_unstable();
        mentioned.dedup();
        let labels = mentioned
            .into_iter()
            .filter_map(|cid| {
                self.heap().schema().column(cid).ok().map(|def| (cid, def.name.clone()))
            })
            .collect();

        QueryPlan {
            access: best.access,
            recheck: best.recheck,
            limit: query.limit_rows(),
            projection: query.projection().map(<[ColumnId]>::to_vec),
            est_cost: best.cost,
            est_candidates: best.candidates,
            est_rows,
            heap_rows: n,
            scheme: self.scheme(),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermit_storage::Value;

    #[test]
    fn selectivity_uniform_and_edges() {
        let mut s = ColumnStats::default();
        for i in 0..=100 {
            s.observe(&Value::Float(i as f64));
        }
        let n = 101;
        let sel = |lb, ub| selectivity(&RangePredicate::range(0, lb, ub), Some(&s), n);
        assert!((sel(0.0, 100.0) - 1.0).abs() < 1e-12);
        assert!((sel(0.0, 49.0) - 0.49).abs() < 1e-12);
        assert_eq!(sel(200.0, 300.0), 0.0, "outside the observed range");
        assert_eq!(sel(60.0, 40.0), 0.0, "inverted");
        // Point predicate floors at 1/n.
        assert!((sel(50.0, 50.0) - 1.0 / n as f64).abs() < 1e-12);
        // No stats at all.
        assert_eq!(selectivity(&RangePredicate::point(0, 1.0), None, n), 0.0);
    }

    #[test]
    fn selectivity_degenerate_width() {
        let mut s = ColumnStats::default();
        s.observe(&Value::Float(7.0));
        assert_eq!(selectivity(&RangePredicate::range(0, 0.0, 10.0), Some(&s), 1), 1.0);
        assert_eq!(selectivity(&RangePredicate::range(0, 8.0, 10.0), Some(&s), 1), 0.0);
    }
}
