//! TRS-Tree construction — Algorithm 1 of the paper.
//!
//! Construction is top-down over a FIFO queue of `(node, temporary table)`
//! pairs. For each node we fit an OLS model over the node's `(m, n)` pairs,
//! derive ε from `error_bound` (§4.5), and validate: pairs outside the
//! ε-band are outliers, and when they exceed `outlier_ratio` of the node's
//! tuples the node is split into `node_fanout` equal-width children (until
//! `max_height`). Two optimizations from Appendix D.2 are included:
//!
//! * **Sampling-based outlier estimation** — fit on a random 5% sample
//!   first and split immediately if the sample already fails validation.
//! * **Multi-threaded construction** — the top-down scheme has no cross-node
//!   dependencies, so sub-problems fan out to worker threads; see
//!   [`build_parallel`].

use crate::node::{LeafData, Node, NodeId, NodeKind, TrsTree, ValueRange};
use crate::params::TrsParams;
use hermit_stats::sampling;
use hermit_stats::LinearModel;
use hermit_storage::Tid;
use rand::Rng;
use std::collections::VecDeque;

/// One `(target, host, tid)` tuple, the unit of TRS-Tree construction.
type Pair = (f64, f64, Tid);

/// Smallest ε a leaf may carry. A strictly positive floor keeps exact
/// functional dependencies (ε would be 0) from classifying every point that
/// suffers floating-point rounding as an outlier.
const MIN_EPS: f64 = 1e-9;

/// Derive the confidence interval ε from `error_bound` for a node covering
/// `n` tuples over target range `r` with fitted slope β (§4.5):
///
/// `error_bound ≈ 2ε / (β (ub − lb)) · n  ⇒  ε ≈ β (ub − lb) error_bound / 2n`
///
/// Degenerate cases (flat slope, zero-width range, empty node) fall back to
/// the ε floor — the model predicts a constant, so any real spread will
/// surface as outliers and trigger a split instead.
pub fn derive_eps(params: &TrsParams, beta: f64, range: &ValueRange, n: usize) -> f64 {
    if n == 0 {
        return MIN_EPS;
    }
    let eps = beta.abs() * range.width() * params.error_bound / (2.0 * n as f64);
    eps.max(MIN_EPS)
}

/// Fit a node's model and partition its pairs into covered / outliers.
/// Returns `(model, eps, outlier_count)`.
///
/// Plain OLS is fragile against extreme outliers: a single wild host value
/// drags the fit (or, on tiny leaves, explodes β and therefore ε until the
/// outlier itself is "covered"). We therefore run one *trimmed refit*
/// round: fit on everything, rank residuals, refit on the best
/// `1 − outlier_ratio` fraction, and keep whichever model classifies fewer
/// pairs as outliers. Perfectly-correlated data is untouched (zero
/// outliers short-circuits).
fn compute_and_validate(
    params: &TrsParams,
    range: &ValueRange,
    pairs: &[Pair],
) -> (LinearModel, f64, usize) {
    let model = LinearModel::fit_iter(pairs.iter().map(|(m, n, _)| (*m, *n)));
    let eps = derive_eps(params, model.beta, range, pairs.len());
    let outliers = pairs.iter().filter(|(m, n, _)| model.residual(*m, *n) > eps).count();
    if outliers == 0 || pairs.len() < 4 {
        return (model, eps, outliers);
    }

    // Trimmed refit: order by residual under the first model, keep the
    // best (1 − outlier_ratio) share, refit on those inliers.
    let keep =
        ((pairs.len() as f64 * (1.0 - params.outlier_ratio)).ceil() as usize).clamp(2, pairs.len());
    let mut by_residual: Vec<&Pair> = pairs.iter().collect();
    by_residual.sort_by(|a, b| model.residual(a.0, a.1).total_cmp(&model.residual(b.0, b.1)));
    let refit = LinearModel::fit_iter(by_residual[..keep].iter().map(|p| (p.0, p.1)));
    let refit_eps = derive_eps(params, refit.beta, range, pairs.len());
    let refit_outliers =
        pairs.iter().filter(|(m, n, _)| refit.residual(*m, *n) > refit_eps).count();

    if refit_outliers < outliers {
        (refit, refit_eps, refit_outliers)
    } else {
        (model, eps, outliers)
    }
}

/// Appendix D.2 pre-check: fit on a sample; `true` means "already failing —
/// split without the full regression".
fn sample_says_split(
    params: &TrsParams,
    rng: &mut impl Rng,
    range: &ValueRange,
    pairs: &[Pair],
    fraction: f64,
) -> bool {
    // Tiny nodes are cheaper to fit exactly than to sample.
    if pairs.len() < 200 {
        return false;
    }
    let sample = sampling::sample_fraction(rng, pairs, fraction, 100);
    let model = LinearModel::fit_iter(sample.iter().map(|p| (p.0, p.1)));
    let eps = derive_eps(params, model.beta, range, sample.len());
    let outliers = sample.iter().filter(|(m, n, _)| model.residual(*m, *n) > eps).count();
    outliers as f64 > params.outlier_ratio * sample.len() as f64
}

/// Build a leaf: fit, validate, stash outliers in the buffer.
///
/// A leaf only exists here because either validation passed or the node
/// can split no further (depth cap / too few tuples). In the latter case a
/// tight ε would classify nearly every tuple as an outlier — e.g. sensor
/// data whose measurement noise no amount of range splitting removes —
/// and the "succinct" index would degenerate into a hash copy of the
/// column. We preserve the paper's invariant that a leaf buffers at most
/// `outlier_ratio` of its tuples by widening ε to the
/// `(1 − outlier_ratio)` residual quantile when the derived ε would
/// overflow the buffer; correctness is unaffected (wider bands mean more
/// false positives, which base-table validation removes).
fn make_leaf(
    params: &TrsParams,
    kind: crate::OutlierBufferKind,
    range: ValueRange,
    pairs: &[Pair],
) -> Node {
    let (model, mut eps, outliers) = compute_and_validate(params, &range, pairs);
    if !pairs.is_empty() && outliers as f64 > params.outlier_ratio * pairs.len() as f64 {
        let mut residuals: Vec<f64> =
            pairs.iter().map(|(m, n, _)| model.residual(*m, *n)).collect();
        residuals.sort_by(f64::total_cmp);
        let keep = (((1.0 - params.outlier_ratio) * pairs.len() as f64).ceil() as usize)
            .clamp(1, pairs.len());
        // 1.5× slack over the bulk spread covers the tail of well-behaved
        // measurement noise (≈98.6% of a Gaussian) while points beyond it —
        // genuine outliers — still land in the buffer.
        eps = eps.max(residuals[keep - 1] * 1.5);
    }
    let mut leaf = LeafData::new(model, eps, pairs.len(), kind);
    for (m, n, tid) in pairs {
        if !leaf.covers(*m, *n) {
            leaf.outliers.add(*m, *tid);
        }
    }
    Node { range, kind: NodeKind::Leaf(leaf) }
}

/// A split must shrink the (weighted) median absolute residual of the
/// children below this fraction of the parent's to proceed. Pure
/// measurement noise is range-invariant — children fit no better than the
/// parent — so without this lookahead the tree would split all the way to
/// `max_height` chasing noise it can never model (and the "succinct" index
/// would balloon into thousands of useless leaves). Genuine non-linearity
/// improves quadratically with range width (curvature ∝ w²) and sails past
/// this bar.
const SPLIT_IMPROVEMENT_FACTOR: f64 = 0.75;

/// Median absolute residual of `pairs` under `model` (0.0 for empty input).
/// The median is robust to the extreme outliers that motivate Hermit in
/// the first place.
fn median_abs_residual(model: &LinearModel, pairs: &[Pair]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mut residuals: Vec<f64> = pairs.iter().map(|(m, n, _)| model.residual(*m, *n)).collect();
    residuals.sort_by(f64::total_cmp);
    residuals[residuals.len() / 2]
}

/// Decide whether a node over `range` with `pairs` should split.
fn should_split(
    params: &TrsParams,
    rng: &mut impl Rng,
    depth: usize,
    range: &ValueRange,
    pairs: &[Pair],
) -> bool {
    if depth >= params.max_height || range.width() <= 0.0 {
        return false;
    }
    // A node with fewer pairs than fanout cannot meaningfully split.
    if pairs.len() <= params.node_fanout {
        return false;
    }
    if let Some(fraction) = params.sampling_fraction {
        // Appendix D.2 fast path: if even the sample validates, skip the
        // full fit and keep the node whole.
        if !sample_says_split(params, rng, range, pairs, fraction) && pairs.len() >= 200 {
            return false;
        }
    }
    let (model, _, outliers) = compute_and_validate(params, range, pairs);
    if outliers as f64 <= params.outlier_ratio * pairs.len() as f64 {
        return false;
    }
    // One-level lookahead: fit the would-be children and require a real
    // residual improvement before paying for the split (see
    // SPLIT_IMPROVEMENT_FACTOR).
    let parent_cost = median_abs_residual(&model, pairs);
    if parent_cost <= 0.0 {
        return false;
    }
    let subs = range.split(params.node_fanout);
    let buckets = split_table(&subs, range, pairs.to_vec());
    let mut weighted_child_cost = 0.0;
    for (sub, bucket) in subs.iter().zip(&buckets) {
        if bucket.is_empty() {
            continue;
        }
        // Children must be fitted with the same trimmed-robust procedure
        // as real nodes: with raw OLS, a couple of wild outliers in a
        // small bucket drag the child fit so badly that the lookahead
        // wrongly concludes splitting cannot help.
        let (child_model, _, _) = compute_and_validate(params, sub, bucket);
        weighted_child_cost += median_abs_residual(&child_model, bucket) * bucket.len() as f64;
    }
    weighted_child_cost / (pairs.len() as f64) < parent_cost * SPLIT_IMPROVEMENT_FACTOR
}

/// Partition `pairs` into per-child buckets for `subs` (equal-width ranges).
fn split_table(subs: &[ValueRange], parent: &ValueRange, pairs: Vec<Pair>) -> Vec<Vec<Pair>> {
    let k = subs.len();
    let w = parent.width();
    let mut buckets: Vec<Vec<Pair>> = (0..k).map(|_| Vec::new()).collect();
    for p in pairs {
        let idx = (((p.0 - parent.lb) / w * k as f64) as isize).clamp(0, k as isize - 1) as usize;
        buckets[idx].push(p);
    }
    buckets
}

impl TrsTree {
    /// Build a TRS-Tree over `(target, host, tid)` pairs covering `range`
    /// (Algorithm 1). `range` normally comes from optimizer statistics
    /// ([`hermit_storage::ColumnStats::range`]).
    pub fn build(params: TrsParams, range: (f64, f64), pairs: Vec<Pair>) -> Self {
        Self::build_with_buffer(params, crate::OutlierBufferKind::default(), range, pairs)
    }

    /// [`TrsTree::build`] with an explicit outlier-buffer layout.
    pub fn build_with_buffer(
        params: TrsParams,
        buffer_kind: crate::OutlierBufferKind,
        range: (f64, f64),
        pairs: Vec<Pair>,
    ) -> Self {
        params.validate().expect("invalid TrsParams");
        let root_range = ValueRange::new(range.0, range.1);
        let mut tree = TrsTree {
            arena: Vec::new(),
            root: 0,
            params,
            buffer_kind,
            reorg_queue: VecDeque::new(),
        };
        let mut rng = sampling::seeded_rng(params.seed);

        // FIFO work list of (node slot, depth, pairs). Node slots are
        // pre-allocated so parents can reference children by id before the
        // children are finalized.
        tree.arena.push(Node {
            range: root_range,
            kind: NodeKind::Leaf(LeafData::new(
                LinearModel::constant(0.0),
                MIN_EPS,
                0,
                buffer_kind,
            )),
        });
        let mut queue: VecDeque<(NodeId, usize, Vec<Pair>)> = VecDeque::new();
        queue.push_back((0, 1, pairs));

        while let Some((slot, depth, node_pairs)) = queue.pop_front() {
            let range = tree.arena[slot as usize].range;
            if should_split(&tree.params, &mut rng, depth, &range, &node_pairs) {
                let subs = range.split(tree.params.node_fanout);
                let buckets = split_table(&subs, &range, node_pairs);
                let mut children = Vec::with_capacity(subs.len());
                for (sub, bucket) in subs.into_iter().zip(buckets) {
                    let child = tree.alloc(Node {
                        range: sub,
                        kind: NodeKind::Leaf(LeafData::new(
                            LinearModel::constant(0.0),
                            MIN_EPS,
                            0,
                            buffer_kind,
                        )),
                    });
                    queue.push_back((child, depth + 1, bucket));
                    children.push(child);
                }
                tree.arena[slot as usize].kind = NodeKind::Internal { children };
            } else {
                tree.arena[slot as usize] =
                    make_leaf(&tree.params, buffer_kind, range, &node_pairs);
            }
        }
        tree
    }
}

/// Multi-threaded construction (Appendix D.2).
///
/// The root split is computed on the calling thread; each first-level
/// subtree then builds independently on a worker (no synchronization points,
/// as the appendix observes), and the results are stitched into one arena.
/// With `threads == 1` this is exactly [`TrsTree::build`].
pub fn build_parallel(
    params: TrsParams,
    range: (f64, f64),
    pairs: Vec<Pair>,
    threads: usize,
) -> TrsTree {
    params.validate().expect("invalid TrsParams");
    if threads <= 1 {
        return TrsTree::build(params, range, pairs);
    }
    let root_range = ValueRange::new(range.0, range.1);
    let mut rng = sampling::seeded_rng(params.seed);

    // The root split decision is the only serial fit in the parallel path;
    // running it over all N pairs would dominate wall-clock (Amdahl) for
    // exactly the large inputs threading targets. Decide on a 2% sample —
    // the workers re-fit their subtrees exactly anyway.
    let root_wants_split = {
        let sample: Vec<Pair> =
            sampling::sample_fraction(&mut rng, &pairs, 0.02, 2_000).into_iter().copied().collect();
        should_split(&params, &mut rng, 1, &root_range, &sample)
    };
    // If the root doesn't split, there is nothing to parallelize.
    if !root_wants_split {
        return TrsTree::build(params, range, pairs);
    }

    let subs = root_range.split(params.node_fanout);
    let buckets = split_table(&subs, &root_range, pairs);

    // Build each first-level subtree as its own TrsTree (depth budget is one
    // shallower), in parallel batches of `threads`.
    let mut sub_params = params;
    sub_params.max_height = params.max_height.saturating_sub(1).max(1);

    let mut jobs: Vec<Option<(ValueRange, Vec<Pair>)>> =
        subs.into_iter().zip(buckets).map(Some).collect();
    let mut subtrees: Vec<Option<TrsTree>> = (0..jobs.len()).map(|_| None).collect();

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut pending: Vec<usize> = (0..jobs.len()).collect();
        while !pending.is_empty() {
            let batch: Vec<usize> = pending.drain(..pending.len().min(threads)).collect();
            for idx in batch {
                let (sub, bucket) = jobs[idx].take().expect("job taken once");
                handles.push((
                    idx,
                    scope.spawn(move |_| TrsTree::build(sub_params, (sub.lb, sub.ub), bucket)),
                ));
            }
            for (idx, h) in handles.drain(..) {
                subtrees[idx] = Some(h.join().expect("subtree build panicked"));
            }
        }
    })
    .expect("thread scope");

    // Stitch: new arena with root internal node, then graft each subtree by
    // offsetting its node ids.
    let mut tree = TrsTree {
        arena: Vec::new(),
        root: 0,
        params,
        buffer_kind: crate::OutlierBufferKind::default(),
        reorg_queue: VecDeque::new(),
    };
    tree.arena.push(Node { range: root_range, kind: NodeKind::Internal { children: Vec::new() } });
    let mut children = Vec::new();
    for sub in subtrees.into_iter().map(|s| s.expect("built")) {
        let offset = tree.arena.len() as NodeId;
        let sub_root = sub.root;
        for mut node in sub.arena {
            if let NodeKind::Internal { children } = &mut node.kind {
                for c in children.iter_mut() {
                    *c += offset;
                }
            }
            tree.arena.push(node);
        }
        children.push(offset + sub_root);
    }
    let NodeKind::Internal { children: root_children } = &mut tree.arena[0].kind else {
        unreachable!()
    };
    *root_children = children;
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_pairs(n: usize) -> Vec<Pair> {
        (0..n)
            .map(|i| {
                let m = i as f64;
                (m, 3.0 * m + 5.0, Tid(i as u64))
            })
            .collect()
    }

    fn sigmoid_pairs(n: usize) -> Vec<Pair> {
        (0..n)
            .map(|i| {
                let m = i as f64 / n as f64 * 20.0 - 10.0;
                (m, 1000.0 / (1.0 + (-m).exp()), Tid(i as u64))
            })
            .collect()
    }

    #[test]
    fn perfect_linear_correlation_yields_single_leaf() {
        let pairs = linear_pairs(10_000);
        let tree = TrsTree::build(TrsParams::default(), (0.0, 9_999.0), pairs);
        let stats = tree.stats();
        // §7.3: "TRS-Tree only needs to use a single leaf node to model the
        // [linear] correlation function".
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.internals, 0);
        assert_eq!(stats.outliers, 0);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn sigmoid_splits_into_multiple_leaves() {
        let pairs = sigmoid_pairs(50_000);
        let tree = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs);
        let stats = tree.stats();
        assert!(stats.leaves > 1, "sigmoid needs tiered fitting, got {stats:?}");
        assert!(stats.height > 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn max_height_one_never_splits() {
        let pairs = sigmoid_pairs(20_000);
        let params = TrsParams { max_height: 1, ..Default::default() };
        let tree = TrsTree::build(params, (-10.0, 10.0), pairs);
        let stats = tree.stats();
        assert_eq!(stats.leaves, 1, "§6: max_height=1 is a single-node structure");
        assert_eq!(stats.height, 1);
    }

    #[test]
    fn noisy_data_lands_in_outlier_buffers() {
        let mut pairs = linear_pairs(10_000);
        // 2% of tuples get wildly wrong host values.
        for i in (0..pairs.len()).step_by(50) {
            pairs[i].1 += 1.0e6;
        }
        let tree = TrsTree::build(TrsParams::default(), (0.0, 9_999.0), pairs);
        let stats = tree.stats();
        assert!(
            stats.outliers >= 150,
            "noise should be buffered as outliers, got {}",
            stats.outliers
        );
        tree.check_invariants().unwrap();
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let tree = TrsTree::build(TrsParams::default(), (0.0, 100.0), vec![]);
        assert_eq!(tree.stats().leaves, 1);
        let tree = TrsTree::build(
            TrsParams::default(),
            (0.0, 100.0),
            vec![(1.0, 2.0, Tid(0)), (2.0, 4.0, Tid(1))],
        );
        assert_eq!(tree.stats().leaves, 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn degenerate_single_value_range() {
        let pairs: Vec<_> = (0..100).map(|i| (5.0, 10.0, Tid(i))).collect();
        let tree = TrsTree::build(TrsParams::default(), (5.0, 5.0), pairs);
        assert_eq!(tree.stats().leaves, 1);
        // The constant model should cover everything: no outliers.
        assert_eq!(tree.stats().outliers, 0);
    }

    #[test]
    fn eps_formula_matches_section_4_5() {
        let params = TrsParams::with_error_bound(2.0);
        let range = ValueRange::new(0.0, 100.0);
        // β = 2, n = 1000: ε = 2·100·2 / (2·1000) = 0.2
        let eps = derive_eps(&params, 2.0, &range, 1000);
        assert!((eps - 0.2).abs() < 1e-12, "eps = {eps}");
        // error_bound = 0 collapses to the floor.
        let p0 = TrsParams::with_error_bound(0.0);
        assert_eq!(derive_eps(&p0, 2.0, &range, 1000), MIN_EPS);
    }

    #[test]
    fn larger_error_bound_means_fewer_nodes() {
        let small =
            TrsTree::build(TrsParams::with_error_bound(1.0), (-10.0, 10.0), sigmoid_pairs(30_000));
        let large = TrsTree::build(
            TrsParams::with_error_bound(1000.0),
            (-10.0, 10.0),
            sigmoid_pairs(30_000),
        );
        assert!(
            large.stats().leaves <= small.stats().leaves,
            "Fig 18: larger error_bound covers more data with fewer nodes ({} vs {})",
            large.stats().leaves,
            small.stats().leaves
        );
    }

    #[test]
    fn sampling_precheck_produces_equivalent_quality() {
        let pairs = sigmoid_pairs(40_000);
        let plain = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs.clone());
        let sampled = TrsTree::build(TrsParams::default().with_sampling(), (-10.0, 10.0), pairs);
        // Both must model the curve; sampling may split slightly more
        // eagerly but the structures should be the same order of size.
        let (a, b) = (plain.stats(), sampled.stats());
        assert!(
            b.leaves >= a.leaves / 4 && b.leaves <= a.leaves * 4,
            "sampled build diverged: {a:?} vs {b:?}"
        );
        sampled.check_invariants().unwrap();
    }

    #[test]
    fn parallel_build_equivalent_to_serial() {
        let pairs = sigmoid_pairs(30_000);
        let serial = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs.clone());
        for threads in [2, 4, 8] {
            let par = build_parallel(TrsParams::default(), (-10.0, 10.0), pairs.clone(), threads);
            par.check_invariants().unwrap();
            // Same lookup behavior on a probe grid.
            for i in 0..40 {
                let m = -10.0 + i as f64 * 0.5;
                let s = serial.lookup_point(m);
                let p = par.lookup_point(m);
                assert_eq!(s.ranges.len(), p.ranges.len(), "probe {m} with {threads} threads");
                for (rs, rp) in s.ranges.iter().zip(&p.ranges) {
                    assert!((rs.0 - rp.0).abs() < 1e-6 && (rs.1 - rp.1).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn parallel_build_single_leaf_case() {
        // Root that never splits: parallel must fall back gracefully.
        let pairs = linear_pairs(5_000);
        let par = build_parallel(TrsParams::default(), (0.0, 4_999.0), pairs, 4);
        assert_eq!(par.stats().leaves, 1);
    }

    #[test]
    fn traverse_reaches_covering_leaf() {
        let tree = TrsTree::build(TrsParams::default(), (-10.0, 10.0), sigmoid_pairs(30_000));
        for i in 0..100 {
            let m = -10.0 + i as f64 * 0.2;
            let leaf = tree.node(tree.traverse(m));
            assert!(leaf.is_leaf());
            assert!(
                leaf.range.contains(m) || (m == leaf.range.ub) || (m == leaf.range.lb),
                "leaf range {:?} does not contain {m}",
                leaf.range
            );
        }
        // Out-of-range values clamp to edge leaves.
        assert!(tree.node(tree.traverse(-999.0)).is_leaf());
        assert!(tree.node(tree.traverse(999.0)).is_leaf());
    }
}
