//! Structure reorganization (§4.4 of the paper).
//!
//! Reorganization re-optimizes the tree against the *current* data: the
//! worker re-scans the affected target range from a [`PairSource`] (the
//! base table), rebuilds that subtree with the normal construction
//! algorithm, and installs the new nodes in place. Two flavors:
//!
//! * **Split** — a leaf whose outlier buffer grew past the trigger is
//!   rebuilt; construction will split it as deeply as the data demands.
//! * **Merge** — a subtree that suffered heavy deletion is rebuilt from its
//!   root; if the surviving data fits one model, the subtree collapses back
//!   to a single leaf.
//!
//! Batch reorganization processes several queued candidates in one pass
//! (the paper's background thread reorganizes "several candidate nodes in
//! one scan").

use crate::maintain::{ReorgCandidate, ReorgKind};
use crate::node::{NodeId, NodeKind, TrsTree};
use crate::PairSource;

/// Outcome counters for a reorganization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgReport {
    /// Leaf splits executed.
    pub splits: usize,
    /// Subtree merges executed.
    pub merges: usize,
    /// Candidates skipped (stale node ids, already-reorganized ranges).
    pub skipped: usize,
}

/// Everything an *offline* rebuild of one subtree needs, snapshotted under
/// a read latch: the node's range, the depth-adjusted parameters, and the
/// buffer layout. [`ReplacementSpec::build`] then scans and constructs the
/// replacement without any tree latch held, and
/// [`TrsTree::graft_subtree`] installs it under the coarse write latch —
/// the Appendix-B "build off-line, install briefly" split.
#[derive(Debug, Clone, Copy)]
pub struct ReplacementSpec {
    /// The arena slot the replacement will be grafted into.
    pub node: NodeId,
    range: crate::node::ValueRange,
    sub_params: crate::TrsParams,
    buffer_kind: crate::node::OutlierBufferKind,
    /// The node covers the tree's lower/upper domain boundary. An edge
    /// node is where `traverse` clamps out-of-domain keys, so its buffers
    /// may hold tuples *outside* `range` — the rebuild scan must look past
    /// the boundary or the graft silently drops them (permanent false
    /// negatives; every tuple inserted beyond the built domain would
    /// vanish from the index on the first reorganization of that edge).
    at_lower_edge: bool,
    at_upper_edge: bool,
}

impl ReplacementSpec {
    /// Scan the affected range from `source` and build the replacement
    /// subtree. No latch is required; this is the expensive part.
    ///
    /// For an edge node the scan is open-ended on the boundary side(s)
    /// and the replacement's range widens to hug the data actually found,
    /// so out-of-domain tuples become modeled (or properly buffered)
    /// members of the new subtree instead of being lost.
    pub fn build(&self, source: &dyn PairSource) -> TrsTree {
        let scan_lb = if self.at_lower_edge { f64::NEG_INFINITY } else { self.range.lb };
        let scan_ub = if self.at_upper_edge { f64::INFINITY } else { self.range.ub };
        let pairs = source.scan_range(scan_lb, scan_ub);
        let mut lb = self.range.lb;
        let mut ub = self.range.ub;
        for (m, _, _) in &pairs {
            lb = lb.min(*m);
            ub = ub.max(*m);
        }
        TrsTree::build_with_buffer(self.sub_params, self.buffer_kind, (lb, ub), pairs)
    }

    /// The range the replacement was built for (install-time validity
    /// check).
    pub fn range(&self) -> (f64, f64) {
        (self.range.lb, self.range.ub)
    }
}

impl TrsTree {
    /// Snapshot what an offline rebuild of `node` needs (cheap; call under
    /// a read latch).
    ///
    /// Depth budget for the rebuilt subtree: the node keeps its depth, so
    /// it may grow up to `max_height - depth + 1` levels below itself.
    pub fn replacement_spec(&self, node: NodeId) -> ReplacementSpec {
        let range = self.node(node).range;
        let root_range = self.node(self.root).range;
        let depth = self.depth_of(node);
        let mut sub_params = self.params;
        sub_params.max_height = (self.params.max_height + 1).saturating_sub(depth).max(1);
        ReplacementSpec {
            node,
            range,
            sub_params,
            buffer_kind: self.buffer_kind,
            at_lower_edge: range.lb <= root_range.lb,
            at_upper_edge: range.ub >= root_range.ub,
        }
    }

    /// Install a replacement subtree into `node`'s slot (the brief
    /// write-latched step). The node id is preserved, so parents need no
    /// update. Returns the number of leaves in the new subtree.
    ///
    /// Old subtree nodes become garbage in the arena; `compact` reclaims
    /// them.
    pub fn graft_subtree(&mut self, node: NodeId, sub: TrsTree) -> usize {
        let leaves = sub.stats().leaves;
        // Graft: copy the sub-arena in, fixing child ids, then overwrite
        // the old slot with the sub-root.
        let offset = self.arena.len() as NodeId;
        let sub_root_local = sub.root;
        for mut n in sub.arena {
            if let NodeKind::Internal { children } = &mut n.kind {
                for c in children.iter_mut() {
                    *c += offset;
                }
            }
            self.arena.push(n);
        }
        let sub_root = offset + sub_root_local;
        self.arena.swap(node as usize, sub_root as usize);
        // If the grafted root was internal, its children ids are still
        // valid after the swap (they point into the appended region).
        leaves
    }

    /// Rebuild the subtree rooted at `node` from fresh base-table data.
    ///
    /// This is the shared implementation of split and merge: construction
    /// itself decides the right shape for the new data
    /// ([`replacement_spec`](Self::replacement_spec) +
    /// [`graft_subtree`](Self::graft_subtree) in one exclusive step — the
    /// concurrent wrapper interleaves them to keep the scan latch-free).
    /// Returns the number of leaves in the new subtree.
    pub fn reorganize_node(&mut self, node: NodeId, source: &dyn PairSource) -> usize {
        let sub = self.replacement_spec(node).build(source);
        self.graft_subtree(node, sub)
    }

    fn depth_of(&self, node: NodeId) -> usize {
        // Walk from the root toward the node's range midpoint, counting
        // levels until we hit it. Falls back to 1 for stale ids.
        let target = self.node(node).range;
        let probe = (target.lb + target.ub) / 2.0;
        let mut id = self.root;
        let mut depth = 1;
        loop {
            if id == node {
                return depth;
            }
            match &self.node(id).kind {
                NodeKind::Leaf(_) => return depth,
                NodeKind::Internal { children } => {
                    let n = self.node(id);
                    let k = children.len();
                    let w = n.range.width();
                    let idx = if w <= 0.0 {
                        0
                    } else {
                        (((probe - n.range.lb) / w * k as f64) as isize).clamp(0, k as isize - 1)
                            as usize
                    };
                    id = children[idx];
                    depth += 1;
                }
            }
        }
    }

    /// Process up to `limit` queued candidates against `source`
    /// (batch reorganization, §4.4).
    pub fn reorganize_batch(&mut self, source: &dyn PairSource, limit: usize) -> ReorgReport {
        let mut report = ReorgReport::default();
        for _ in 0..limit {
            let Some(cand) = self.next_reorg_candidate() else { break };
            if !self.candidate_still_valid(&cand) {
                report.skipped += 1;
                continue;
            }
            self.reorganize_node(cand.node, source);
            match cand.kind {
                ReorgKind::Split => report.splits += 1,
                ReorgKind::Merge => report.merges += 1,
            }
        }
        report
    }

    /// A candidate is stale when the node id no longer matches its queued
    /// role (e.g. the leaf was already rebuilt into an internal node).
    fn candidate_still_valid(&self, cand: &ReorgCandidate) -> bool {
        if cand.node as usize >= self.arena.len() {
            return false;
        }
        match cand.kind {
            ReorgKind::Split => self.node(cand.node).is_leaf(),
            ReorgKind::Merge => !self.node(cand.node).is_leaf(),
        }
    }

    /// Rebuild the entire tree from fresh data — the "reorganize entire
    /// subtree at once" response to drastic workload change (§4.4 / §7.7
    /// reorganizes first-level subtrees; rebuilding from the root is the
    /// limit case and also compacts the arena).
    pub fn rebuild(&mut self, source: &dyn PairSource) {
        // The root is both domain edges at once, so the spec's open-ended
        // scan also re-domains the tree over whatever the table now holds.
        let fresh = self.replacement_spec(self.root).build(source);
        self.arena = fresh.arena;
        self.root = fresh.root;
        self.reorg_queue.clear();
    }

    /// Rebuild the `i`-th first-level subtree (used by the §7.7 trace,
    /// which reorganizes 1/4 of the structure every 5 seconds). Returns
    /// false if the root is a leaf (nothing to partially reorganize).
    pub fn reorganize_first_level_subtree(&mut self, i: usize, source: &dyn PairSource) -> bool {
        let child = {
            let NodeKind::Internal { children } = &self.node(self.root).kind else {
                return false;
            };
            if children.is_empty() {
                return false;
            }
            children[i % children.len()]
        };
        self.reorganize_node(child, source);
        true
    }

    /// Compact the arena after reorganizations left garbage nodes behind:
    /// rebuilds the arena containing only nodes reachable from the root.
    /// Memory accounting calls this implicitly via [`Self::compacted_memory_bytes`].
    ///
    /// Queued reorganization candidates are remapped to the compacted node
    /// ids; candidates whose node became garbage are dropped. (Without the
    /// remap a queued candidate would silently point at whichever node
    /// landed in its old arena slot.)
    pub fn compact(&mut self) {
        let mut new_arena = Vec::with_capacity(self.arena.len());
        let mut remap: Vec<Option<NodeId>> = vec![None; self.arena.len()];
        let root = self.root;
        let new_root = self.copy_reachable(root, &mut new_arena, &mut remap);
        self.arena = new_arena;
        self.root = new_root;
        self.reorg_queue = self
            .reorg_queue
            .drain(..)
            .filter_map(|cand| {
                let node = *remap.get(cand.node as usize)?;
                node.map(|node| ReorgCandidate { node, ..cand })
            })
            .collect();
    }

    fn copy_reachable(
        &self,
        id: NodeId,
        out: &mut Vec<crate::node::Node>,
        remap: &mut [Option<NodeId>],
    ) -> NodeId {
        let node = self.node(id).clone();
        let new_id = match node.kind {
            NodeKind::Leaf(_) => {
                out.push(node);
                (out.len() - 1) as NodeId
            }
            NodeKind::Internal { children } => {
                let new_children: Vec<NodeId> =
                    children.iter().map(|&c| self.copy_reachable(c, out, remap)).collect();
                out.push(crate::node::Node {
                    range: node.range,
                    kind: NodeKind::Internal { children: new_children },
                });
                (out.len() - 1) as NodeId
            }
        };
        remap[id as usize] = Some(new_id);
        new_id
    }

    /// Memory after compaction — what a long-running instance would report
    /// once garbage from past reorganizations is reclaimed.
    pub fn compacted_memory_bytes(&mut self) -> usize {
        self.compact();
        self.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrsParams;
    use crate::VecPairSource;
    use hermit_storage::Tid;

    fn sigmoid_pairs(n: usize) -> Vec<(f64, f64, Tid)> {
        (0..n)
            .map(|i| {
                let m = i as f64 / n as f64 * 20.0 - 10.0;
                (m, 1000.0 / (1.0 + (-m).exp()), Tid(i as u64))
            })
            .collect()
    }

    #[test]
    fn split_reorg_absorbs_outlier_flood() {
        // Start with a linear tree, then shift the data distribution in one
        // region so the old model no longer fits.
        let mut pairs: Vec<(f64, f64, Tid)> =
            (0..10_000).map(|i| (i as f64, i as f64, Tid(i as u64))).collect();
        let mut tree = TrsTree::build(TrsParams::default(), (0.0, 9_999.0), pairs.clone());
        assert_eq!(tree.stats().leaves, 1);

        // New regime: values in [3000, 7000] now map to 3m + 500.
        for p in pairs.iter_mut() {
            if p.0 >= 3_000.0 && p.0 <= 7_000.0 {
                p.1 = 3.0 * p.0 + 500.0;
            }
        }
        for p in &pairs {
            if p.0 >= 3_000.0 && p.0 <= 7_000.0 {
                tree.insert(p.0, p.1, p.2);
            }
        }
        let outliers_before = tree.stats().outliers;
        assert!(outliers_before > 1_000, "regime change should flood buffers");
        assert!(tree.reorg_queue_len() > 0);

        let source = VecPairSource(pairs);
        let report = tree.reorganize_batch(&source, 10);
        assert!(report.splits >= 1);
        tree.compact();
        tree.check_invariants().unwrap();
        let outliers_after = tree.stats().outliers;
        assert!(
            outliers_after < outliers_before / 5,
            "reorg should drain buffers: {outliers_before} -> {outliers_after}"
        );
        // Lookups still correct under the new regime.
        let r = tree.lookup_point(5_000.0);
        let truth = 3.0 * 5_000.0 + 500.0;
        let covered = r.ranges.iter().any(|(lo, hi)| truth >= *lo && truth <= *hi)
            || r.tids.contains(&Tid(5_000));
        assert!(covered, "post-reorg lookup lost the tuple");
    }

    #[test]
    fn merge_reorg_shrinks_tree_after_deletes() {
        let pairs = sigmoid_pairs(40_000);
        let mut tree = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs.clone());
        let leaves_before = tree.stats().leaves;
        assert!(leaves_before > 2);

        // Delete the steep middle of the sigmoid; the survivors are the
        // two flat tails, which fit far fewer models.
        let surviving: Vec<(f64, f64, Tid)> =
            pairs.iter().copied().filter(|(m, _, _)| *m < -3.0 || *m > 3.0).collect();
        for (m, _, tid) in pairs.iter().filter(|(m, _, _)| *m >= -3.0 && *m <= 3.0) {
            tree.delete(*m, *tid);
        }
        let source = VecPairSource(surviving);
        tree.reorganize_batch(&source, 64);
        tree.compact();
        tree.check_invariants().unwrap();
        assert!(
            tree.stats().leaves < leaves_before,
            "merge should shrink: {} -> {}",
            leaves_before,
            tree.stats().leaves
        );
    }

    #[test]
    fn full_rebuild_resets_structure() {
        let pairs = sigmoid_pairs(30_000);
        let mut tree = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs.clone());
        for i in 0..5_000u64 {
            tree.insert(0.0, 1.0e9, Tid(100_000 + i));
        }
        assert!(tree.stats().outliers >= 5_000);
        tree.rebuild(&VecPairSource(pairs));
        // Fresh sigmoid data may legitimately keep a few build-time
        // outliers (< outlier_ratio per leaf); the injected flood is gone.
        assert!(
            tree.stats().outliers < 300,
            "rebuild should drop injected outliers, kept {}",
            tree.stats().outliers
        );
        assert_eq!(tree.reorg_queue_len(), 0);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn first_level_subtree_reorg() {
        let pairs = sigmoid_pairs(30_000);
        let mut tree = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs.clone());
        assert!(tree.stats().internals > 0);
        let source = VecPairSource(pairs);
        for i in 0..8 {
            assert!(tree.reorganize_first_level_subtree(i, &source));
        }
        tree.compact();
        tree.check_invariants().unwrap();
        // Single-leaf tree: partial reorg is a no-op.
        let mut flat = TrsTree::build(TrsParams::default(), (0.0, 9.0), vec![(1.0, 1.0, Tid(0))]);
        assert!(!flat.reorganize_first_level_subtree(0, &source));
    }

    #[test]
    fn compact_reclaims_garbage() {
        let pairs = sigmoid_pairs(30_000);
        let mut tree = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs.clone());
        let source = VecPairSource(pairs);
        let before_nodes = tree.arena.len();
        for i in 0..8 {
            tree.reorganize_first_level_subtree(i, &source);
        }
        assert!(tree.arena.len() > before_nodes, "reorg leaves garbage");
        tree.compact();
        tree.check_invariants().unwrap();
        let s = tree.stats();
        assert_eq!(tree.arena.len(), s.leaves + s.internals);
    }

    #[test]
    fn edge_reorg_keeps_out_of_domain_tuples() {
        // Regression: tuples inserted beyond the built domain clamp into
        // an edge leaf's buffer. Reorganizing that leaf used to scan only
        // its recorded range, so the rebuilt subtree dropped every
        // out-of-domain tuple — they became permanently unreachable.
        let mut pairs: Vec<(f64, f64, Tid)> =
            (0..1_000).map(|i| (i as f64, 2.0 * i as f64, Tid(i as u64))).collect();
        let mut tree = TrsTree::build(TrsParams::default(), (0.0, 999.0), pairs.clone());
        // Grow the domain upward (and a little downward) past the edges.
        for i in 0..2_000i64 {
            let m = 100_000.0 + i as f64;
            tree.insert(m, 2.0 * m, Tid(10_000 + i as u64));
            pairs.push((m, 2.0 * m, Tid(10_000 + i as u64)));
        }
        tree.insert(-50.0, -100.0, Tid(99_999));
        pairs.push((-50.0, -100.0, Tid(99_999)));
        assert!(tree.reorg_queue_len() > 0, "the flood must queue a split");

        let source = VecPairSource(pairs);
        tree.reorganize_batch(&source, 16);
        tree.compact();
        tree.check_invariants().unwrap();

        // Every out-of-domain tuple is still reachable: either a model
        // band over its new home covers the true host value, or the tuple
        // rode along as a buffered outlier.
        for probe in [(100_000.0, Tid(10_000)), (101_999.0, Tid(11_999)), (-50.0, Tid(99_999))] {
            let r = tree.lookup_point(probe.0);
            let truth = if probe.0 < 0.0 { -100.0 } else { 2.0 * probe.0 };
            let covered = r.ranges.iter().any(|(lo, hi)| truth >= *lo && truth <= *hi)
                || r.tids.contains(&probe.1);
            assert!(covered, "tuple at {} lost by edge reorganization", probe.0);
        }
        // And the in-domain originals are intact too.
        let r = tree.lookup_point(500.0);
        assert!(r.ranges.iter().any(|(lo, hi)| 1_000.0 >= *lo && 1_000.0 <= *hi));
    }

    #[test]
    fn stale_candidates_are_skipped() {
        let mut tree = TrsTree::build(
            TrsParams::default(),
            (0.0, 999.0),
            (0..1000).map(|i| (i as f64, i as f64, Tid(i))).collect(),
        );
        // Manually enqueue a merge candidate pointing at a leaf (invalid).
        tree.reorg_queue.push_back(ReorgCandidate { node: tree.root(), kind: ReorgKind::Merge });
        let report = tree.reorganize_batch(&VecPairSource(vec![]), 10);
        assert_eq!(report, ReorgReport { splits: 0, merges: 0, skipped: 1 });
    }
}
