//! TRS-Tree node representation: arena nodes, leaf models, outlier buffers.

use hermit_stats::LinearModel;
use hermit_storage::{F64Key, Tid};
use std::collections::HashMap;

/// Index of a node inside the tree arena.
pub type NodeId = u32;

/// An inclusive value range `[lb, ub]` on the target column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueRange {
    /// Lower bound (inclusive).
    pub lb: f64,
    /// Upper bound (inclusive).
    pub ub: f64,
}

impl ValueRange {
    /// Construct; `lb` must not exceed `ub`.
    pub fn new(lb: f64, ub: f64) -> Self {
        debug_assert!(lb <= ub, "range [{lb}, {ub}] inverted");
        ValueRange { lb, ub }
    }

    /// Width of the range.
    #[inline]
    pub fn width(&self) -> f64 {
        self.ub - self.lb
    }

    /// True if `v` lies in the range.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lb && v <= self.ub
    }

    /// True if the ranges overlap.
    #[inline]
    pub fn overlaps(&self, lb: f64, ub: f64) -> bool {
        self.lb <= ub && lb <= self.ub
    }

    /// Intersection with `[lb, ub]`, or `None` if disjoint.
    #[inline]
    pub fn intersect(&self, lb: f64, ub: f64) -> Option<ValueRange> {
        let lo = self.lb.max(lb);
        let hi = self.ub.min(ub);
        if lo <= hi {
            Some(ValueRange::new(lo, hi))
        } else {
            None
        }
    }

    /// Split into `k` equal-width sub-ranges. The last sub-range absorbs
    /// floating-point slack so the union exactly covers `self`.
    pub fn split(&self, k: usize) -> Vec<ValueRange> {
        debug_assert!(k >= 2);
        let step = self.width() / k as f64;
        (0..k)
            .map(|i| {
                let lb = self.lb + step * i as f64;
                let ub = if i == k - 1 { self.ub } else { self.lb + step * (i + 1) as f64 };
                ValueRange::new(lb, ub)
            })
            .collect()
    }
}

/// Storage layout for a leaf's outlier buffer.
///
/// The paper describes the buffer as a hash table, which is ideal for the
/// point probes of Algorithm 3 but cannot serve a *range* predicate
/// without scanning the entire buffer — ruinous for range-heavy workloads
/// once a leaf holds thousands of noise outliers. We default to a sorted
/// `(key, tid)` vector (O(log n + k) range collection, lower memory) and
/// keep the hash layout available; the ablation benchmark quantifies the
/// difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutlierBufferKind {
    /// Hash table keyed by target value (the paper's description).
    Hash,
    /// Sorted `(key, tid)` vector (our default).
    #[default]
    SortedVec,
}

/// A leaf's outlier buffer: target value → tuple ids that the leaf's linear
/// model cannot cover.
#[derive(Debug, Clone)]
pub enum OutlierBuffer {
    /// Hash layout. One target value can map to several tuples.
    Hash(HashMap<F64Key, Vec<Tid>>),
    /// Sorted-vector layout.
    SortedVec(Vec<(F64Key, Tid)>),
}

impl OutlierBuffer {
    /// Empty buffer of the requested layout.
    pub fn new(kind: OutlierBufferKind) -> Self {
        match kind {
            OutlierBufferKind::Hash => OutlierBuffer::Hash(HashMap::new()),
            OutlierBufferKind::SortedVec => OutlierBuffer::SortedVec(Vec::new()),
        }
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        match self {
            OutlierBuffer::Hash(m) => m.values().map(|v| v.len()).sum(),
            OutlierBuffer::SortedVec(v) => v.len(),
        }
    }

    /// True if the buffer holds no tuples.
    pub fn is_empty(&self) -> bool {
        match self {
            OutlierBuffer::Hash(m) => m.is_empty(),
            OutlierBuffer::SortedVec(v) => v.is_empty(),
        }
    }

    /// Register an outlier.
    pub fn add(&mut self, m: f64, tid: Tid) {
        match self {
            OutlierBuffer::Hash(map) => map.entry(F64Key(m)).or_default().push(tid),
            OutlierBuffer::SortedVec(v) => {
                let idx = v.partition_point(|(k, _)| *k <= F64Key(m));
                v.insert(idx, (F64Key(m), tid));
            }
        }
    }

    /// Remove one `(m, tid)` entry; returns true if found.
    pub fn remove(&mut self, m: f64, tid: Tid) -> bool {
        match self {
            OutlierBuffer::Hash(map) => {
                let key = F64Key(m);
                if let Some(tids) = map.get_mut(&key) {
                    if let Some(pos) = tids.iter().position(|t| *t == tid) {
                        tids.swap_remove(pos);
                        if tids.is_empty() {
                            map.remove(&key);
                        }
                        return true;
                    }
                }
                false
            }
            OutlierBuffer::SortedVec(v) => {
                let start = v.partition_point(|(k, _)| *k < F64Key(m));
                let mut i = start;
                while i < v.len() && v[i].0 == F64Key(m) {
                    if v[i].1 == tid {
                        v.remove(i);
                        return true;
                    }
                    i += 1;
                }
                false
            }
        }
    }

    /// Collect tids whose target value lies in `[lb, ub]`.
    ///
    /// The hash layout must scan the whole buffer (hash tables have no
    /// range order); the sorted layout binary-searches. Buffers are small
    /// by construction — bounded by `outlier_ratio` of a leaf's tuples.
    pub fn collect_range(&self, lb: f64, ub: f64, out: &mut Vec<Tid>) {
        match self {
            OutlierBuffer::Hash(map) => {
                for (k, tids) in map {
                    if k.0 >= lb && k.0 <= ub {
                        out.extend_from_slice(tids);
                    }
                }
            }
            OutlierBuffer::SortedVec(v) => {
                let start = v.partition_point(|(k, _)| k.0 < lb);
                for (k, tid) in &v[start..] {
                    if k.0 > ub {
                        break;
                    }
                    out.push(*tid);
                }
            }
        }
    }

    /// Visit every `(target value, tid)` entry (order unspecified for the
    /// hash layout, sorted for the vector layout). Used by persistence.
    pub fn for_each_entry(&self, mut f: impl FnMut(f64, Tid)) {
        match self {
            OutlierBuffer::Hash(map) => {
                for (k, tids) in map {
                    for tid in tids {
                        f(k.0, *tid);
                    }
                }
            }
            OutlierBuffer::SortedVec(v) => {
                for (k, tid) in v {
                    f(k.0, *tid);
                }
            }
        }
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            OutlierBuffer::Hash(map) => {
                let bucket = std::mem::size_of::<(F64Key, Vec<Tid>)>() + 1;
                map.capacity() * bucket
                    + map.values().map(|v| v.capacity() * std::mem::size_of::<Tid>()).sum::<usize>()
            }
            OutlierBuffer::SortedVec(v) => v.capacity() * std::mem::size_of::<(F64Key, Tid)>(),
        }
    }
}

/// Payload of a leaf node.
#[derive(Debug, Clone)]
pub struct LeafData {
    /// Fitted linear mapping `n = β·m + α`.
    pub model: LinearModel,
    /// Confidence interval ε derived from `error_bound` (§4.5).
    pub eps: f64,
    /// Tuples covered by this leaf's range at build/reorg time (outliers
    /// included), plus subsequent inserts. Denominator of the reorg ratios.
    pub covered: usize,
    /// The outlier buffer.
    pub outliers: OutlierBuffer,
    /// Delete operations routed to this leaf since the last
    /// reorganization; drives the merge trigger (§4.4).
    pub deletes: usize,
}

impl LeafData {
    /// Fresh leaf with the given model and ε.
    pub fn new(model: LinearModel, eps: f64, covered: usize, kind: OutlierBufferKind) -> Self {
        LeafData { model, eps, covered, outliers: OutlierBuffer::new(kind), deletes: 0 }
    }

    /// Host-column interval implied by target value `m`.
    #[inline]
    pub fn host_band(&self, m: f64) -> (f64, f64) {
        self.model.band(m, self.eps)
    }

    /// True if the pair `(m, n)` is covered by the model's ε-band.
    #[inline]
    pub fn covers(&self, m: f64, n: f64) -> bool {
        self.model.residual(m, n) <= self.eps
    }
}

/// Node payload: internal router or leaf.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// Internal node: children ordered left→right over equal-width
    /// sub-ranges of the node's range.
    Internal {
        /// Child node ids.
        children: Vec<NodeId>,
    },
    /// Leaf node with regression payload.
    Leaf(LeafData),
}

/// One TRS-Tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Target-column range this node is responsible for.
    pub range: ValueRange,
    /// Router or leaf payload.
    pub kind: NodeKind,
}

impl Node {
    /// True if this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Approximate heap bytes for this node.
    pub fn memory_bytes(&self) -> usize {
        let header = std::mem::size_of::<Self>();
        match &self.kind {
            NodeKind::Internal { children } => {
                header + children.capacity() * std::mem::size_of::<NodeId>()
            }
            NodeKind::Leaf(leaf) => header + leaf.outliers.memory_bytes(),
        }
    }
}

/// Structural statistics of a TRS-Tree (reported by the harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrsTreeStats {
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Number of internal nodes.
    pub internals: usize,
    /// Tree height (1 = single root leaf).
    pub height: usize,
    /// Total buffered outliers across leaves.
    pub outliers: usize,
    /// Total tuples the tree accounts for across leaves — model-covered
    /// *plus* buffered outliers (each leaf's `covered` counter, which
    /// inserts increment and deletes decrement). The denominator of the
    /// outlier-share ratio `outliers / covered`.
    pub covered: usize,
    /// Total heap bytes.
    pub memory_bytes: usize,
}

/// The Tiered Regression Search Tree.
///
/// Construct with [`TrsTree::build`](crate::build) / [`crate::build_parallel`],
/// query with [`TrsTree::lookup`](crate::lookup), and maintain with the
/// methods in [`crate::maintain`].
#[derive(Debug, Clone)]
pub struct TrsTree {
    pub(crate) arena: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) params: crate::TrsParams,
    pub(crate) buffer_kind: OutlierBufferKind,
    /// Reorganization candidates detected by insert/delete operations
    /// (§4.4: detection is offloaded to the operations; a background
    /// thread consumes the queue).
    pub(crate) reorg_queue: std::collections::VecDeque<crate::maintain::ReorgCandidate>,
}

impl TrsTree {
    /// The parameters the tree was built with.
    pub fn params(&self) -> &crate::TrsParams {
        &self.params
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.arena[id as usize]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.arena[id as usize]
    }

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        self.arena.push(node);
        (self.arena.len() - 1) as NodeId
    }

    /// Walk from the root to the leaf whose range covers `m` (Algorithm 3's
    /// `Traverse`). Values outside the root range clamp to the nearest edge
    /// leaf so that out-of-range inserts still land somewhere sensible.
    pub fn traverse(&self, m: f64) -> NodeId {
        let mut id = self.root;
        loop {
            let node = &self.arena[id as usize];
            match &node.kind {
                NodeKind::Leaf(_) => return id,
                NodeKind::Internal { children } => {
                    // Children split the node's range into equal widths;
                    // compute the child index directly instead of scanning.
                    let k = children.len();
                    let w = node.range.width();
                    let idx = if w <= 0.0 {
                        0
                    } else {
                        (((m - node.range.lb) / w * k as f64) as isize).clamp(0, k as isize - 1)
                            as usize
                    };
                    id = children[idx];
                }
            }
        }
    }

    /// Depth-aware structural statistics.
    pub fn stats(&self) -> TrsTreeStats {
        let mut s = TrsTreeStats { height: self.height_of(self.root), ..Default::default() };
        // Walk only nodes reachable from the root: garbage left behind by
        // reorganizations still occupies arena memory (charged below via
        // `memory_bytes`) but is not part of the live tree, so it must not
        // inflate leaf/outlier counts.
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.arena[id as usize].kind {
                NodeKind::Internal { children } => {
                    s.internals += 1;
                    stack.extend_from_slice(children);
                }
                NodeKind::Leaf(leaf) => {
                    s.leaves += 1;
                    s.outliers += leaf.outliers.len();
                    s.covered += leaf.covered;
                }
            }
        }
        s.memory_bytes = self.memory_bytes();
        s
    }

    fn height_of(&self, id: NodeId) -> usize {
        match &self.arena[id as usize].kind {
            NodeKind::Leaf(_) => 1,
            NodeKind::Internal { children } => {
                1 + children.iter().map(|&c| self.height_of(c)).max().unwrap_or(0)
            }
        }
    }

    /// Total heap bytes held by the tree. This is the "Hermit index size"
    /// every memory figure in the paper reports — note how it is dominated
    /// by outlier buffers, not by the regression models (a few `f64`s each).
    pub fn memory_bytes(&self) -> usize {
        self.arena.iter().map(|n| n.memory_bytes()).sum::<usize>()
            + self.arena.capacity() * std::mem::size_of::<Node>()
    }

    /// Check structural invariants (tests): children partition parents,
    /// leaf ranges are valid, ε non-negative.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_node(self.root, None)
    }

    fn check_node(&self, id: NodeId, expected: Option<ValueRange>) -> Result<(), String> {
        let node = &self.arena[id as usize];
        if node.range.lb > node.range.ub {
            return Err(format!("node {id}: inverted range"));
        }
        if let Some(exp) = expected {
            if (node.range.lb - exp.lb).abs() > 1e-9 * (1.0 + exp.width())
                || (node.range.ub - exp.ub).abs() > 1e-9 * (1.0 + exp.width())
            {
                return Err(format!(
                    "node {id}: range [{}, {}] != expected [{}, {}]",
                    node.range.lb, node.range.ub, exp.lb, exp.ub
                ));
            }
        }
        match &node.kind {
            NodeKind::Leaf(leaf) => {
                if leaf.eps < 0.0 {
                    return Err(format!("leaf {id}: negative eps"));
                }
                Ok(())
            }
            NodeKind::Internal { children } => {
                if children.len() < 2 {
                    return Err(format!("internal {id}: fewer than 2 children"));
                }
                let subs = node.range.split(children.len());
                for (child, sub) in children.iter().zip(subs) {
                    self.check_node(*child, Some(sub))?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_split_covers_exactly() {
        let r = ValueRange::new(0.0, 1024.0);
        let subs = r.split(4);
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].lb, 0.0);
        assert_eq!(subs[3].ub, 1024.0);
        for w in subs.windows(2) {
            assert_eq!(w[0].ub, w[1].lb);
        }
        // Uneven width still covers fully.
        let r = ValueRange::new(0.0, 10.0);
        let subs = r.split(3);
        assert_eq!(subs[2].ub, 10.0);
    }

    #[test]
    fn range_intersect() {
        let r = ValueRange::new(10.0, 20.0);
        assert_eq!(r.intersect(15.0, 25.0), Some(ValueRange::new(15.0, 20.0)));
        assert_eq!(r.intersect(0.0, 30.0), Some(r));
        assert_eq!(r.intersect(21.0, 30.0), None);
        assert!(r.overlaps(20.0, 30.0));
        assert!(!r.overlaps(20.0001, 30.0));
    }

    fn buffer_contract(kind: OutlierBufferKind) {
        let mut b = OutlierBuffer::new(kind);
        assert!(b.is_empty());
        b.add(1.0, Tid(10));
        b.add(2.0, Tid(20));
        b.add(1.0, Tid(11)); // duplicate key
        assert_eq!(b.len(), 3);

        let mut out = Vec::new();
        b.collect_range(1.0, 1.5, &mut out);
        out.sort();
        assert_eq!(out, vec![Tid(10), Tid(11)]);

        assert!(b.remove(1.0, Tid(10)));
        assert!(!b.remove(1.0, Tid(10)), "double remove");
        assert!(!b.remove(9.0, Tid(0)), "absent key");
        assert_eq!(b.len(), 2);

        out.clear();
        b.collect_range(f64::NEG_INFINITY, f64::INFINITY, &mut out);
        out.sort();
        assert_eq!(out, vec![Tid(11), Tid(20)]);
        assert!(b.memory_bytes() > 0);
    }

    #[test]
    fn hash_buffer_contract() {
        buffer_contract(OutlierBufferKind::Hash);
    }

    #[test]
    fn sorted_vec_buffer_contract() {
        buffer_contract(OutlierBufferKind::SortedVec);
    }

    #[test]
    fn leaf_covers_band() {
        let leaf = LeafData::new(
            hermit_stats::LinearModel { beta: 2.0, alpha: 0.0 },
            1.0,
            100,
            OutlierBufferKind::Hash,
        );
        assert!(leaf.covers(5.0, 10.5)); // predict 10, |10.5-10| <= 1
        assert!(!leaf.covers(5.0, 11.5));
        assert_eq!(leaf.host_band(5.0), (9.0, 11.0));
    }
}
