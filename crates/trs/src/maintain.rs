//! Runtime maintenance — Algorithm 3 of the paper plus reorg detection.
//!
//! Inserts and deletes touch at most one leaf: an insert checks the leaf's
//! model band and buffers the tuple as an outlier only when uncovered; a
//! delete removes a matching outlier entry if present (tuples covered by
//! the model need no index change — base-table validation filters them).
//! Updates are delete + insert.
//!
//! Both operations piggyback *reorganization detection* (§4.4): when a
//! leaf's outlier share or delete share crosses its trigger ratio, a
//! candidate is pushed onto the tree's FIFO reorg queue for the background
//! worker (see [`crate::reorg`] and [`crate::concurrent`]).

use crate::node::{NodeId, NodeKind, TrsTree};
use hermit_storage::Tid;

/// Why a node was queued for reorganization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorgKind {
    /// Outlier buffer exceeded the split trigger: split the leaf.
    Split,
    /// Deletions exceeded the merge trigger: consider merging the leaf's
    /// parent subtree.
    Merge,
}

/// A queued reorganization candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorgCandidate {
    /// The node to reorganize: the leaf itself for splits, the leaf's
    /// *parent* for merges (per §4.4, delete ops enqueue the parent).
    pub node: NodeId,
    /// Split or merge.
    pub kind: ReorgKind,
}

impl TrsTree {
    /// Insert a tuple (Algorithm 3, `Insert`).
    ///
    /// Returns `true` if the tuple landed in an outlier buffer, `false` if
    /// the leaf model already covers it (no structural change needed).
    pub fn insert(&mut self, m: f64, n: f64, tid: Tid) -> bool {
        let leaf_id = self.traverse(m);
        let params = self.params;
        let (buffered, candidate) = {
            let node = self.node_mut(leaf_id);
            // A key outside the leaf's range (traverse clamps out-of-domain
            // keys to the edge leaves) must be buffered even when the
            // model's *extrapolation* happens to cover it: lookups only
            // evaluate the band over the leaf's own range, so a
            // model-"covered" out-of-range tuple would be permanently
            // unreachable — a silent false negative.
            let in_range = node.range.contains(m);
            let NodeKind::Leaf(leaf) = &mut node.kind else { unreachable!() };
            leaf.covered += 1;
            let buffered = if !in_range || !leaf.covers(m, n) {
                leaf.outliers.add(m, tid);
                true
            } else {
                false
            };
            // Detection offloaded to the operation (§4.4): queue a split
            // when the buffer share crosses the trigger.
            let candidate = buffered
                && leaf.outliers.len() as f64
                    > params.split_trigger_ratio * leaf.covered.max(1) as f64;
            (buffered, candidate)
        };
        if candidate {
            self.enqueue_reorg(ReorgCandidate { node: leaf_id, kind: ReorgKind::Split });
        }
        buffered
    }

    /// Delete a tuple (Algorithm 3, `Delete`).
    ///
    /// Removes the tuple's outlier entry if it has one; model-covered
    /// tuples need no index change. Returns `true` if an outlier entry was
    /// removed.
    pub fn delete(&mut self, m: f64, tid: Tid) -> bool {
        let leaf_id = self.traverse(m);
        let params = self.params;
        let (removed, candidate) = {
            let node = self.node_mut(leaf_id);
            let NodeKind::Leaf(leaf) = &mut node.kind else { unreachable!() };
            let removed = leaf.outliers.remove(m, tid);
            leaf.deletes += 1;
            leaf.covered = leaf.covered.saturating_sub(1);
            let candidate =
                leaf.deletes as f64 > params.merge_trigger_ratio * leaf.covered.max(1) as f64;
            (removed, candidate)
        };
        if candidate {
            // Delete ops enqueue the *parent* of the visited leaf (§4.4).
            if let Some(parent) = self.parent_of(leaf_id) {
                self.enqueue_reorg(ReorgCandidate { node: parent, kind: ReorgKind::Merge });
            }
        }
        removed
    }

    /// Update a tuple's target/host values: delete old, insert new.
    pub fn update(&mut self, old_m: f64, new_m: f64, new_n: f64, tid: Tid) {
        self.delete(old_m, tid);
        self.insert(new_m, new_n, tid);
    }

    /// Find the parent of `node` by walking from the root (the arena stores
    /// no parent pointers; maintenance is rare enough that an O(height)
    /// walk is fine).
    pub(crate) fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        if node == self.root {
            return None;
        }
        let target_range = self.node(node).range;
        let probe = (target_range.lb + target_range.ub) / 2.0;
        let mut id = self.root;
        loop {
            let n = self.node(id);
            match &n.kind {
                NodeKind::Leaf(_) => return None,
                NodeKind::Internal { children } => {
                    if children.contains(&node) {
                        return Some(id);
                    }
                    let k = children.len();
                    let w = n.range.width();
                    let idx = if w <= 0.0 {
                        0
                    } else {
                        (((probe - n.range.lb) / w * k as f64) as isize).clamp(0, k as isize - 1)
                            as usize
                    };
                    id = children[idx];
                }
            }
        }
    }

    fn enqueue_reorg(&mut self, cand: ReorgCandidate) {
        // De-duplicate: a hot leaf would otherwise flood the queue.
        if !self.reorg_queue.contains(&cand) {
            self.reorg_queue.push_back(cand);
        }
    }

    /// Pop the next queued reorganization candidate.
    pub fn next_reorg_candidate(&mut self) -> Option<ReorgCandidate> {
        self.reorg_queue.pop_front()
    }

    /// Number of queued reorganization candidates.
    pub fn reorg_queue_len(&self) -> usize {
        self.reorg_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrsParams;

    fn linear_tree(n: usize) -> TrsTree {
        let pairs: Vec<(f64, f64, Tid)> =
            (0..n).map(|i| (i as f64, 2.0 * i as f64, Tid(i as u64))).collect();
        TrsTree::build(TrsParams::default(), (0.0, (n - 1) as f64), pairs)
    }

    #[test]
    fn covered_insert_is_free() {
        let mut tree = linear_tree(10_000);
        let before = tree.stats().outliers;
        // A perfectly on-model tuple: host = 2 * target.
        let buffered = tree.insert(500.5, 1001.0, Tid(999_999));
        assert!(!buffered, "on-model insert must not buffer");
        assert_eq!(tree.stats().outliers, before);
    }

    #[test]
    fn uncovered_insert_buffers_outlier() {
        let mut tree = linear_tree(10_000);
        let buffered = tree.insert(500.0, 123_456.0, Tid(999_999));
        assert!(buffered);
        let result = tree.lookup_point(500.0);
        assert!(result.tids.contains(&Tid(999_999)));
    }

    #[test]
    fn delete_removes_outlier_entry() {
        let mut tree = linear_tree(10_000);
        tree.insert(500.0, 123_456.0, Tid(42));
        assert!(tree.delete(500.0, Tid(42)));
        assert!(!tree.delete(500.0, Tid(42)), "double delete");
        assert!(!tree.lookup_point(500.0).tids.contains(&Tid(42)));
    }

    #[test]
    fn delete_of_covered_tuple_is_noop_on_structure() {
        let mut tree = linear_tree(10_000);
        // Tuple 100 is model-covered; deleting it touches no buffer.
        assert!(!tree.delete(100.0, Tid(100)));
    }

    #[test]
    fn update_moves_tuple() {
        let mut tree = linear_tree(10_000);
        tree.insert(500.0, 9.9e6, Tid(7)); // outlier at 500
        tree.update(500.0, 800.0, 8.8e6, Tid(7)); // still an outlier, new home
        assert!(!tree.lookup_point(500.0).tids.contains(&Tid(7)));
        assert!(tree.lookup_point(800.0).tids.contains(&Tid(7)));
    }

    #[test]
    fn outlier_flood_queues_split_candidate() {
        let mut tree = linear_tree(1_000);
        assert_eq!(tree.reorg_queue_len(), 0);
        // Flood one leaf with off-model tuples.
        for i in 0..2_000u64 {
            tree.insert(500.0, -1.0e9, Tid(1_000_000 + i));
        }
        assert!(tree.reorg_queue_len() > 0, "split candidate expected");
        let cand = tree.next_reorg_candidate().unwrap();
        assert_eq!(cand.kind, ReorgKind::Split);
        assert!(tree.node(cand.node).is_leaf());
    }

    #[test]
    fn delete_flood_queues_merge_candidate_at_parent() {
        // Build a tree that actually has internal nodes.
        let pairs: Vec<(f64, f64, Tid)> = (0..30_000)
            .map(|i| {
                let m = i as f64 / 30_000.0 * 20.0 - 10.0;
                (m, 1000.0 / (1.0 + (-m).exp()), Tid(i as u64))
            })
            .collect();
        let mut tree = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs);
        assert!(tree.stats().internals > 0, "need a multi-level tree");
        for i in 0..20_000u64 {
            tree.delete(0.5, Tid(i));
        }
        let mut saw_merge = false;
        while let Some(cand) = tree.next_reorg_candidate() {
            if cand.kind == ReorgKind::Merge {
                saw_merge = true;
                assert!(!tree.node(cand.node).is_leaf(), "merge targets the parent");
            }
        }
        assert!(saw_merge, "merge candidate expected after delete flood");
    }

    #[test]
    fn out_of_domain_insert_is_buffered_and_findable() {
        // Regression: a key past the root range clamps to an edge leaf,
        // and the edge model's *extrapolation* can happen to cover the
        // tuple (host = 2·target here, linear everywhere). It used to be
        // accepted as model-covered and silently lost — lookups never
        // extend the band beyond the leaf range, so nothing could ever
        // find it again.
        let mut tree = linear_tree(4_000);
        assert!(
            tree.insert(5_000.0, 10_000.0, Tid(1)),
            "out-of-domain insert must be buffered even when the model extrapolates over it"
        );
        assert!(tree.insert(-100.0, -200.0, Tid(2)), "below-domain insert too");
        assert_eq!(tree.lookup_point(5_000.0).tids, vec![Tid(1)]);
        assert_eq!(tree.lookup_point(-100.0).tids, vec![Tid(2)]);
        // Range lookups straddling the domain edge find them as well.
        assert!(tree.lookup(4_500.0, 6_000.0).tids.contains(&Tid(1)));
        assert!(tree.lookup(-150.0, 10.0).tids.contains(&Tid(2)));
        // And the tombstone path can reach them.
        assert!(tree.delete(5_000.0, Tid(1)));
        assert!(tree.lookup_point(5_000.0).tids.is_empty());
        // In-domain on-model inserts are still free.
        assert!(!tree.insert(500.5, 1_001.0, Tid(3)));
    }

    #[test]
    fn queue_deduplicates() {
        let mut tree = linear_tree(100);
        for i in 0..10_000u64 {
            tree.insert(50.0, 1.0e12, Tid(i));
        }
        assert!(
            tree.reorg_queue_len() <= 2,
            "queue should de-duplicate, len = {}",
            tree.reorg_queue_len()
        );
    }

    #[test]
    fn parent_of_root_is_none() {
        let tree = linear_tree(100);
        assert_eq!(tree.parent_of(tree.root()), None);
    }
}
