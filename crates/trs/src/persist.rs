//! TRS-Tree persistence (§6 "Fault tolerance").
//!
//! The paper notes the RDBMS must periodically persist the TRS-Tree —
//! either like a disk index (leaf pages on disk) or like a pure in-memory
//! index that checkpoints and relies on write-ahead logging. This module
//! implements the checkpoint path: a compact, versioned binary snapshot of
//! the whole tree (models, ε values, outlier buffers, parameters) plus
//! restore. A snapshot of a TRS-Tree is small by construction — that is
//! the point of the structure — so checkpointing it wholesale is cheap,
//! unlike checkpointing a B+-tree.
//!
//! Format (little-endian throughout):
//!
//! ```text
//! magic "TRST" | version u32 | params | buffer_kind u8 | root u32 |
//! node_count u32 | nodes... | queue_len u32 | queue...      (v2)
//! node := range(lb f64, ub f64) | tag u8 |
//!         tag 0 (internal): child_count u32, children u32...
//!         tag 1 (leaf):     beta f64, alpha f64, eps f64, covered u64,
//!                           deletes u64, outlier_count u32,
//!                           (m f64, tid u64)...
//! queue entry := node u32 | kind u8 (0 = split, 1 = merge)
//! ```
//!
//! Version 2 adds the pending reorganization queue, so split/merge
//! candidates detected before a checkpoint survive recovery. Version-1
//! snapshots are still read; their queue is re-derived from the restored
//! per-leaf outlier/delete counters against the trigger ratios.

use crate::maintain::{ReorgCandidate, ReorgKind};
use crate::node::{LeafData, Node, NodeKind, OutlierBufferKind, TrsTree, ValueRange};
use crate::params::TrsParams;
use hermit_stats::LinearModel;
use hermit_storage::Tid;
use std::cmp::Ordering;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"TRST";
const VERSION: u32 = 2;

/// Errors produced by snapshot encode/decode.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a TRS-Tree snapshot.
    BadMagic,
    /// Snapshot version not understood by this build.
    UnsupportedVersion(u32),
    /// Structurally invalid snapshot (truncated, bad tags, bad ids).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a TRS-Tree snapshot"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

struct Writer<W: Write> {
    out: W,
}

impl<W: Write> Writer<W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.out.write_all(&[v])
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }
}

struct Reader<R: Read> {
    inp: R,
}

impl<R: Read> Reader<R> {
    fn u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.inp.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.inp.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

impl TrsTree {
    /// Serialize a checkpoint of the tree into `out`.
    ///
    /// The tree is compacted first (garbage from past reorganizations is
    /// not persisted); the method therefore takes `&mut self`.
    pub fn snapshot_to(&mut self, out: impl Write) -> Result<(), PersistError> {
        self.compact();
        let mut w = Writer { out };
        w.out.write_all(MAGIC)?;
        w.u32(VERSION)?;
        // Params.
        w.u32(self.params.node_fanout as u32)?;
        w.u32(self.params.max_height as u32)?;
        w.f64(self.params.outlier_ratio)?;
        w.f64(self.params.error_bound)?;
        w.f64(self.params.sampling_fraction.unwrap_or(-1.0))?;
        w.f64(self.params.split_trigger_ratio)?;
        w.f64(self.params.merge_trigger_ratio)?;
        w.u64(self.params.seed)?;
        w.u8(match self.buffer_kind {
            OutlierBufferKind::Hash => 0,
            OutlierBufferKind::SortedVec => 1,
        })?;
        w.u32(self.root)?;
        w.u32(self.arena.len() as u32)?;
        for node in &self.arena {
            w.f64(node.range.lb)?;
            w.f64(node.range.ub)?;
            match &node.kind {
                NodeKind::Internal { children } => {
                    w.u8(0)?;
                    w.u32(children.len() as u32)?;
                    for c in children {
                        w.u32(*c)?;
                    }
                }
                NodeKind::Leaf(leaf) => {
                    w.u8(1)?;
                    w.f64(leaf.model.beta)?;
                    w.f64(leaf.model.alpha)?;
                    w.f64(leaf.eps)?;
                    w.u64(leaf.covered as u64)?;
                    w.u64(leaf.deletes as u64)?;
                    // Collect outliers in a layout-independent order.
                    let mut entries: Vec<(f64, Tid)> = Vec::with_capacity(leaf.outliers.len());
                    leaf.outliers.for_each_entry(|m, tid| entries.push((m, tid)));
                    w.u32(entries.len() as u32)?;
                    for (m, tid) in entries {
                        w.f64(m)?;
                        w.u64(tid.0)?;
                    }
                }
            }
        }
        // v2: the pending reorganization queue (compact() above remapped
        // its node ids into the compacted arena).
        w.u32(self.reorg_queue.len() as u32)?;
        for cand in &self.reorg_queue {
            w.u32(cand.node)?;
            w.u8(match cand.kind {
                ReorgKind::Split => 0,
                ReorgKind::Merge => 1,
            })?;
        }
        Ok(())
    }

    /// Serialize a checkpoint into a byte vector.
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let mut buf = Vec::new();
        self.snapshot_to(&mut buf)?;
        Ok(buf)
    }

    /// Restore a tree from a checkpoint produced by [`snapshot_to`].
    ///
    /// [`snapshot_to`]: TrsTree::snapshot_to
    pub fn restore_from(inp: impl Read) -> Result<TrsTree, PersistError> {
        let mut r = Reader { inp };
        let mut magic = [0u8; 4];
        r.inp.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if !(1..=VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let node_fanout = r.u32()? as usize;
        let max_height = r.u32()? as usize;
        let outlier_ratio = r.f64()?;
        let error_bound = r.f64()?;
        let sampling_raw = r.f64()?;
        let split_trigger_ratio = r.f64()?;
        let merge_trigger_ratio = r.f64()?;
        let seed = r.u64()?;
        let params = TrsParams {
            node_fanout,
            max_height,
            outlier_ratio,
            error_bound,
            sampling_fraction: (sampling_raw >= 0.0).then_some(sampling_raw),
            split_trigger_ratio,
            merge_trigger_ratio,
            seed,
        };
        params.validate().map_err(|_| PersistError::Corrupt("invalid params"))?;
        let buffer_kind = match r.u8()? {
            0 => OutlierBufferKind::Hash,
            1 => OutlierBufferKind::SortedVec,
            _ => return Err(PersistError::Corrupt("bad buffer kind")),
        };
        let root = r.u32()?;
        let count = r.u32()? as usize;
        if count == 0 || root as usize >= count {
            return Err(PersistError::Corrupt("bad root/node count"));
        }
        let mut arena = Vec::with_capacity(count);
        for _ in 0..count {
            let lb = r.f64()?;
            let ub = r.f64()?;
            // Rejects NaN bounds as well as inverted ones.
            if !matches!(lb.partial_cmp(&ub), Some(Ordering::Less | Ordering::Equal)) {
                return Err(PersistError::Corrupt("inverted node range"));
            }
            let range = ValueRange::new(lb, ub);
            let kind = match r.u8()? {
                0 => {
                    let n = r.u32()? as usize;
                    if !(2..=1 << 20).contains(&n) {
                        return Err(PersistError::Corrupt("bad child count"));
                    }
                    let mut children = Vec::with_capacity(n);
                    for _ in 0..n {
                        let c = r.u32()?;
                        if c as usize >= count {
                            return Err(PersistError::Corrupt("child id out of range"));
                        }
                        children.push(c);
                    }
                    NodeKind::Internal { children }
                }
                1 => {
                    let beta = r.f64()?;
                    let alpha = r.f64()?;
                    let eps = r.f64()?;
                    if eps < 0.0 {
                        return Err(PersistError::Corrupt("negative eps"));
                    }
                    let covered = r.u64()? as usize;
                    let deletes = r.u64()? as usize;
                    let n = r.u32()? as usize;
                    let mut leaf =
                        LeafData::new(LinearModel { beta, alpha }, eps, covered, buffer_kind);
                    leaf.deletes = deletes;
                    for _ in 0..n {
                        let m = r.f64()?;
                        let tid = Tid(r.u64()?);
                        leaf.outliers.add(m, tid);
                    }
                    NodeKind::Leaf(leaf)
                }
                _ => return Err(PersistError::Corrupt("bad node tag")),
            };
            arena.push(Node { range, kind });
        }
        let reorg_queue = match version {
            // v1 snapshots predate queue persistence: re-derive candidates
            // from the restored per-leaf counters.
            1 => VecDeque::new(),
            _ => {
                let n = r.u32()? as usize;
                if n > count.saturating_mul(2) {
                    return Err(PersistError::Corrupt("oversized reorg queue"));
                }
                let mut queue = VecDeque::with_capacity(n);
                for _ in 0..n {
                    let node = r.u32()?;
                    if node as usize >= count {
                        return Err(PersistError::Corrupt("reorg candidate out of range"));
                    }
                    let kind = match r.u8()? {
                        0 => ReorgKind::Split,
                        1 => ReorgKind::Merge,
                        _ => return Err(PersistError::Corrupt("bad reorg kind")),
                    };
                    queue.push_back(ReorgCandidate { node, kind });
                }
                queue
            }
        };
        let mut tree = TrsTree { arena, root, params, buffer_kind, reorg_queue };
        tree.check_invariants().map_err(|_| PersistError::Corrupt("invariant violation"))?;
        if version == 1 {
            tree.rederive_reorg_queue();
        }
        Ok(tree)
    }

    /// Rebuild the reorganization queue from per-leaf outlier/delete
    /// counters, using the same trigger ratios Algorithm 3 applies online.
    /// Used when restoring v1 snapshots, which did not persist the queue.
    fn rederive_reorg_queue(&mut self) {
        let params = self.params;
        let mut candidates = Vec::new();
        for (id, node) in self.arena.iter().enumerate() {
            let NodeKind::Leaf(leaf) = &node.kind else { continue };
            let covered = leaf.covered.max(1) as f64;
            if leaf.outliers.len() as f64 > params.split_trigger_ratio * covered {
                candidates.push(ReorgCandidate { node: id as u32, kind: ReorgKind::Split });
            }
            if leaf.deletes as f64 > params.merge_trigger_ratio * covered {
                if let Some(parent) = self.parent_of(id as u32) {
                    candidates.push(ReorgCandidate { node: parent, kind: ReorgKind::Merge });
                }
            }
        }
        for cand in candidates {
            if !self.reorg_queue.contains(&cand) {
                self.reorg_queue.push_back(cand);
            }
        }
    }

    /// Checkpoint to a file, atomically *and durably*: the snapshot is
    /// written to a temp sibling, **fsynced**, renamed over the target, and
    /// the parent directory is fsynced so the rename itself survives a
    /// crash. The previous implementation skipped the fsyncs — a crash
    /// shortly after `checkpoint` returned could leave a torn snapshot at
    /// `path` (the rename was durable before the data was), which
    /// [`restore`](TrsTree::restore) would then half-parse and reject.
    pub fn checkpoint(&mut self, path: &std::path::Path) -> Result<(), PersistError> {
        let tmp = path.with_extension("tmp");
        {
            let file = std::fs::File::create(&tmp)?;
            let mut buf = std::io::BufWriter::new(file);
            self.snapshot_to(&mut buf)?;
            buf.flush()?;
            buf.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            hermit_storage::recovery::sync_dir(dir);
        }
        Ok(())
    }

    /// Restore from a checkpoint file.
    pub fn restore(path: &std::path::Path) -> Result<TrsTree, PersistError> {
        let file = std::fs::File::open(path)?;
        Self::restore_from(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrsParams;

    /// Structural equality modulo memory accounting (vector capacities
    /// differ between bulk construction and incremental restore).
    fn assert_stats_match(a: &TrsTree, b: &TrsTree) {
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.leaves, sb.leaves);
        assert_eq!(sa.internals, sb.internals);
        assert_eq!(sa.height, sb.height);
        assert_eq!(sa.outliers, sb.outliers);
    }

    fn sample_tree(n: usize) -> TrsTree {
        let pairs: Vec<(f64, f64, Tid)> = (0..n)
            .map(|i| {
                let m = i as f64 / n as f64 * 20.0 - 10.0;
                let v = if i % 97 == 0 { 5.0e8 } else { 1000.0 / (1.0 + (-m).exp()) };
                (m, v, Tid(i as u64))
            })
            .collect();
        TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs)
    }

    #[test]
    fn snapshot_roundtrip_preserves_lookups() {
        let mut tree = sample_tree(30_000);
        let bytes = tree.snapshot_bytes().unwrap();
        let restored = TrsTree::restore_from(bytes.as_slice()).unwrap();
        assert_stats_match(&tree, &restored);
        for i in 0..100 {
            let m = -10.0 + i as f64 * 0.2;
            let a = tree.lookup(m, m + 0.3);
            let b = restored.lookup(m, m + 0.3);
            assert_eq!(a.ranges, b.ranges, "ranges diverged at m={m}");
            let mut at = a.tids.clone();
            let mut bt = b.tids.clone();
            at.sort();
            bt.sort();
            assert_eq!(at, bt, "tids diverged at m={m}");
        }
    }

    #[test]
    fn snapshot_roundtrips_params_and_buffer_kind() {
        let params = TrsParams {
            node_fanout: 4,
            max_height: 6,
            error_bound: 7.5,
            sampling_fraction: Some(0.1),
            ..Default::default()
        };
        let pairs = (0..5_000).map(|i| (i as f64, 3.0 * i as f64, Tid(i))).collect();
        let mut tree =
            TrsTree::build_with_buffer(params, OutlierBufferKind::Hash, (0.0, 5_000.0), pairs);
        let bytes = tree.snapshot_bytes().unwrap();
        let restored = TrsTree::restore_from(bytes.as_slice()).unwrap();
        assert_eq!(*restored.params(), params);
    }

    #[test]
    fn restored_tree_supports_maintenance() {
        let mut tree = sample_tree(10_000);
        let bytes = tree.snapshot_bytes().unwrap();
        let mut restored = TrsTree::restore_from(bytes.as_slice()).unwrap();
        restored.insert(0.0, 9.0e9, Tid(777_777));
        assert!(restored.lookup_point(0.0).tids.contains(&Tid(777_777)));
        assert!(restored.delete(0.0, Tid(777_777)));
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(matches!(
            TrsTree::restore_from(&b"NOPE"[..]),
            Err(PersistError::BadMagic) | Err(PersistError::Io(_))
        ));
        let mut tree = sample_tree(1_000);
        let mut bytes = tree.snapshot_bytes().unwrap();
        // Bad version.
        bytes[4] = 0xFF;
        assert!(matches!(
            TrsTree::restore_from(bytes.as_slice()),
            Err(PersistError::UnsupportedVersion(_))
        ));
        // Truncation.
        let bytes = tree.snapshot_bytes().unwrap();
        assert!(TrsTree::restore_from(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hermit-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.trst");
        let mut tree = sample_tree(8_000);
        tree.checkpoint(&path).unwrap();
        let restored = TrsTree::restore(&path).unwrap();
        assert_stats_match(&tree, &restored);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A tree with a pending split candidate: a linear tree flooded with
    /// off-model tuples at one spot.
    fn tree_with_queued_split() -> TrsTree {
        let pairs: Vec<(f64, f64, Tid)> =
            (0..5_000).map(|i| (i as f64, 2.0 * i as f64, Tid(i as u64))).collect();
        let mut tree = TrsTree::build(TrsParams::default(), (0.0, 4_999.0), pairs);
        for i in 0..2_000u64 {
            tree.insert(2_500.0, -1.0e9, Tid(1_000_000 + i));
        }
        assert!(tree.reorg_queue_len() > 0, "flood must queue a split candidate");
        tree
    }

    #[test]
    fn snapshot_roundtrip_preserves_reorg_queue() {
        let mut tree = tree_with_queued_split();
        let bytes = tree.snapshot_bytes().unwrap();
        // snapshot_to compacted the tree, remapping the queue in place; the
        // serialized queue must match it.
        let expected = tree.reorg_queue_len();
        assert!(expected > 0);
        let mut restored = TrsTree::restore_from(bytes.as_slice()).unwrap();
        assert_eq!(restored.reorg_queue_len(), expected, "queue lost across checkpoint");
        // The restored candidates are live: draining them reorganizes the
        // flooded leaf and shrinks the outlier buffers.
        let outliers_before = restored.stats().outliers;
        let fresh: Vec<(f64, f64, Tid)> =
            (0..5_000).map(|i| (i as f64, 2.0 * i as f64, Tid(i as u64))).collect();
        let report = restored.reorganize_batch(&crate::VecPairSource(fresh), 16);
        assert!(report.splits >= 1, "restored candidate must drive a split, got {report:?}");
        restored.compact(); // stats() counts arena garbage until compaction
        assert!(restored.stats().outliers < outliers_before);
        restored.check_invariants().unwrap();
    }

    #[test]
    fn compact_remaps_queued_candidates() {
        let mut tree = tree_with_queued_split();
        // Force garbage + id churn, then compact.
        let fresh: Vec<(f64, f64, Tid)> =
            (0..5_000).map(|i| (i as f64, 2.0 * i as f64, Tid(i as u64))).collect();
        tree.reorganize_first_level_subtree(0, &crate::VecPairSource(fresh));
        tree.compact();
        // Every surviving candidate must point at a node whose role matches.
        while let Some(cand) = tree.next_reorg_candidate() {
            assert!((cand.node as usize) < tree.arena.len(), "candidate id out of arena");
        }
    }

    #[test]
    fn v1_snapshot_rederives_queue_from_counters() {
        let mut tree = tree_with_queued_split();
        let bytes = tree.snapshot_bytes().unwrap();
        // Rewrite as a v1 snapshot: patch the version field and drop the
        // trailing queue section (4-byte length + 5 bytes per entry).
        let tail = 4 + 5 * tree.reorg_queue_len();
        let mut v1 = bytes[..bytes.len() - tail].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let restored = TrsTree::restore_from(v1.as_slice()).unwrap();
        assert!(
            restored.reorg_queue_len() > 0,
            "v1 restore must re-derive candidates from leaf counters"
        );
    }

    #[test]
    fn truncated_checkpoint_file_is_rejected_not_half_parsed() {
        let dir = std::env::temp_dir().join(format!("hermit-torn-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.trst");
        let mut tree = sample_tree(8_000);
        tree.checkpoint(&path).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        // A crash mid-write tears the snapshot at an arbitrary byte; every
        // truncation point must produce a typed error, never a tree built
        // from a partial parse.
        let bytes = std::fs::read(&path).unwrap();
        for cut in [1u64, 4, 8, full / 4, full / 2, full - 1] {
            let torn = dir.join("torn.trst");
            std::fs::write(&torn, &bytes[..(full - cut) as usize]).unwrap();
            assert!(
                TrsTree::restore(&torn).is_err(),
                "snapshot torn {cut} bytes short must not restore"
            );
        }
        // A leftover temp sibling from a torn *later* checkpoint does not
        // shadow the committed snapshot.
        std::fs::write(path.with_extension("tmp"), &bytes[..full as usize / 3]).unwrap();
        let restored = TrsTree::restore(&path).unwrap();
        assert_stats_match(&tree, &restored);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_is_small() {
        // The point of §6: checkpointing a TRS-Tree is cheap because the
        // structure is succinct. 30k tuples → a snapshot in the KBs.
        let mut tree = sample_tree(30_000);
        let bytes = tree.snapshot_bytes().unwrap();
        assert!(bytes.len() < 64 * 1024, "snapshot should be tiny, got {} bytes", bytes.len());
    }
}
