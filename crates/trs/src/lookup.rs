//! TRS-Tree lookup — Algorithm 2 of the paper.
//!
//! A lookup takes a predicate range `[lb, ub]` on the target column and
//! returns approximate results: a set of *host-column ranges* (from the
//! leaf models) plus a set of *tuple ids* (from outlier buffers). The
//! returned ranges are unioned — overlapping intervals produced by adjacent
//! leaves are merged — before Hermit probes the host index with them.

use crate::node::{NodeId, NodeKind, TrsTree};
use hermit_storage::Tid;
use std::collections::VecDeque;

/// Approximate result of a TRS-Tree lookup.
#[derive(Debug, Clone, Default)]
pub struct TrsLookup {
    /// Unioned host-column ranges that cover all model-predicted matches.
    pub ranges: Vec<(f64, f64)>,
    /// Tuple ids pulled directly from outlier buffers; these bypass the
    /// host index entirely (§4.3).
    pub tids: Vec<Tid>,
}

impl TrsLookup {
    /// Total width of all returned host ranges (used by false-positive
    /// accounting in the benchmarks).
    pub fn total_range_width(&self) -> f64 {
        self.ranges.iter().map(|(lo, hi)| hi - lo).sum()
    }
}

/// Reusable traversal scratch for [`TrsTree::lookup_into`]: the BFS queue
/// survives across lookups so batched executors stop paying one queue
/// allocation (plus growth) per query.
#[derive(Debug, Default)]
pub struct LookupScratch {
    queue: VecDeque<NodeId>,
}

/// Merge possibly-overlapping intervals into a minimal union, in place
/// (Algorithm 2's final `Union(RS)` step).
pub fn union_ranges_in_place(ranges: &mut Vec<(f64, f64)>) {
    if ranges.len() <= 1 {
        return;
    }
    ranges.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut w = 0usize;
    for i in 1..ranges.len() {
        let (lo, hi) = ranges[i];
        if lo <= ranges[w].1 {
            ranges[w].1 = ranges[w].1.max(hi);
        } else {
            w += 1;
            ranges[w] = (lo, hi);
        }
    }
    ranges.truncate(w + 1);
}

/// Allocating wrapper around [`union_ranges_in_place`].
pub fn union_ranges(mut ranges: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    union_ranges_in_place(&mut ranges);
    ranges
}

impl TrsTree {
    /// Range lookup over `[lb, ub]` on the target column (Algorithm 2).
    ///
    /// Runs a breadth-first traversal from the root; every leaf whose range
    /// overlaps the predicate contributes its model band over the
    /// intersection, plus any buffered outliers inside it.
    pub fn lookup(&self, lb: f64, ub: f64) -> TrsLookup {
        let mut result = TrsLookup::default();
        self.lookup_into(lb, ub, &mut LookupScratch::default(), &mut result);
        result
    }

    /// Allocation-lean form of [`lookup`](Self::lookup): clears and refills
    /// `out` (whose `ranges`/`tids` buffers keep their capacity) and reuses
    /// the BFS queue in `scratch`. Batched executors call this once per
    /// predicate with long-lived buffers.
    pub fn lookup_into(&self, lb: f64, ub: f64, scratch: &mut LookupScratch, out: &mut TrsLookup) {
        out.ranges.clear();
        out.tids.clear();
        if lb > ub {
            return;
        }
        // Out-of-domain inserts clamp to edge leaves (Algorithm 3's
        // Traverse), so their buffered keys can lie outside the root range.
        // Traverse with bounds clamped into the domain — which routes
        // past-the-edge predicates to the edge leaves — but collect
        // outliers with the *raw* predicate so those keys are found.
        let root_range = self.node(self.root).range;
        let tlb = lb.clamp(root_range.lb, root_range.ub);
        let tub = ub.clamp(root_range.lb, root_range.ub);
        let queue = &mut scratch.queue;
        queue.clear();
        queue.push_back(self.root);
        while let Some(id) = queue.pop_front() {
            let node = self.node(id);
            match &node.kind {
                NodeKind::Leaf(leaf) => {
                    let Some(r) = node.range.intersect(tlb, tub) else { continue };
                    // The model band only covers the in-domain part of the
                    // predicate; skip leaves that never covered data (their
                    // constant(0) placeholder model would pollute the host
                    // ranges).
                    if leaf.covered > 0
                        && r.lb <= r.ub
                        && ub >= root_range.lb
                        && lb <= root_range.ub
                    {
                        out.ranges.push(leaf.model.range_band(r.lb, r.ub, leaf.eps));
                    }
                    // Outliers use the raw predicate (edge leaves may
                    // buffer out-of-domain keys).
                    leaf.outliers.collect_range(lb, ub, &mut out.tids);
                }
                NodeKind::Internal { children } => {
                    for &child in children {
                        if self.node(child).range.overlaps(tlb, tub) {
                            queue.push_back(child);
                        }
                    }
                }
            }
        }
        union_ranges_in_place(&mut out.ranges);
    }

    /// Point lookup: a range lookup with `lb == ub` (§4.3).
    pub fn lookup_point(&self, m: f64) -> TrsLookup {
        self.lookup(m, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrsParams;
    use crate::TrsTree;

    fn linear_tree(n: usize) -> TrsTree {
        let pairs: Vec<(f64, f64, Tid)> =
            (0..n).map(|i| (i as f64, 2.0 * i as f64 + 1.0, Tid(i as u64))).collect();
        TrsTree::build(TrsParams::default(), (0.0, (n - 1) as f64), pairs)
    }

    fn sigmoid_tree(n: usize) -> TrsTree {
        let pairs: Vec<(f64, f64, Tid)> = (0..n)
            .map(|i| {
                let m = i as f64 / n as f64 * 20.0 - 10.0;
                (m, 1000.0 / (1.0 + (-m).exp()), Tid(i as u64))
            })
            .collect();
        TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs)
    }

    #[test]
    fn union_merges_overlaps() {
        let merged = union_ranges(vec![(5.0, 7.0), (1.0, 3.0), (2.0, 6.0), (10.0, 11.0)]);
        assert_eq!(merged, vec![(1.0, 7.0), (10.0, 11.0)]);
        assert_eq!(union_ranges(vec![]), vec![]);
        assert_eq!(union_ranges(vec![(1.0, 2.0)]), vec![(1.0, 2.0)]);
        // Touching intervals merge.
        assert_eq!(union_ranges(vec![(1.0, 2.0), (2.0, 3.0)]), vec![(1.0, 3.0)]);
    }

    #[test]
    fn point_lookup_band_covers_true_host_value() {
        let tree = linear_tree(10_000);
        for m in [0.0, 1.0, 4999.0, 9999.0] {
            let result = tree.lookup_point(m);
            assert_eq!(result.ranges.len(), 1);
            let (lo, hi) = result.ranges[0];
            let truth = 2.0 * m + 1.0;
            assert!(
                lo <= truth && truth <= hi,
                "band [{lo}, {hi}] misses true host value {truth} at m={m}"
            );
        }
    }

    #[test]
    fn range_lookup_band_covers_all_true_values() {
        let tree = sigmoid_tree(30_000);
        let (lb, ub) = (-2.0, 2.0);
        let result = tree.lookup(lb, ub);
        assert!(!result.ranges.is_empty());
        // Every true (m, n) pair in the predicate must fall in some band or
        // be a buffered outlier — TRS-Tree guarantees no false negatives.
        for i in 0..30_000 {
            let m = i as f64 / 30_000.0 * 20.0 - 10.0;
            if m < lb || m > ub {
                continue;
            }
            let n = 1000.0 / (1.0 + (-m).exp());
            let in_band = result.ranges.iter().any(|(lo, hi)| n >= *lo && n <= *hi);
            let in_outliers = result.tids.contains(&Tid(i as u64));
            assert!(in_band || in_outliers, "tuple (m={m}, n={n}) lost");
        }
    }

    #[test]
    fn outliers_returned_as_direct_tids() {
        let mut pairs: Vec<(f64, f64, Tid)> =
            (0..10_000).map(|i| (i as f64, i as f64, Tid(i as u64))).collect();
        pairs[5_000].1 = 1.0e9; // an extreme outlier at m = 5000
        let tree = TrsTree::build(TrsParams::default(), (0.0, 9_999.0), pairs);
        let result = tree.lookup(4_999.0, 5_001.0);
        assert!(
            result.tids.contains(&Tid(5_000)),
            "outlier tuple must come back via the buffer, got {:?}",
            result.tids
        );
        // And a disjoint lookup must not return it.
        let result = tree.lookup(0.0, 100.0);
        assert!(!result.tids.contains(&Tid(5_000)));
    }

    #[test]
    fn lookup_into_with_reused_scratch_matches_lookup() {
        let tree = sigmoid_tree(30_000);
        let mut scratch = LookupScratch::default();
        let mut out = TrsLookup::default();
        // Reuse the same scratch + output buffers across dissimilar
        // predicates (wide, point, narrow, inverted); results must match
        // the allocating path exactly, with no leftovers between calls.
        for (lb, ub) in [(-2.0, 2.0), (0.0, 0.0), (5.0, 9.0), (3.0, 1.0), (-2.0, 2.0)] {
            tree.lookup_into(lb, ub, &mut scratch, &mut out);
            let fresh = tree.lookup(lb, ub);
            assert_eq!(out.ranges, fresh.ranges, "ranges diverge on [{lb}, {ub}]");
            assert_eq!(out.tids, fresh.tids, "tids diverge on [{lb}, {ub}]");
        }
    }

    #[test]
    fn inverted_and_disjoint_predicates_are_empty() {
        let tree = linear_tree(1_000);
        let r = tree.lookup(10.0, 5.0);
        assert!(r.ranges.is_empty() && r.tids.is_empty());
        let r = tree.lookup(5_000.0, 6_000.0);
        assert!(r.ranges.is_empty() && r.tids.is_empty());
    }

    #[test]
    fn predicate_partially_overlapping_domain() {
        let tree = linear_tree(1_000);
        let r = tree.lookup(-100.0, 10.0);
        assert_eq!(r.ranges.len(), 1);
        let (lo, hi) = r.ranges[0];
        assert!(lo <= 1.0 && hi >= 21.0, "band [{lo}, {hi}] should cover hosts 1..=21");
    }

    #[test]
    fn error_bound_widens_returned_ranges() {
        let pairs: Vec<(f64, f64, Tid)> = (0..10_000)
            .map(|i| {
                let m = i as f64;
                // slight non-linearity so eps actually matters
                (m, m + (m / 100.0).sin() * 5.0, Tid(i as u64))
            })
            .collect();
        let narrow =
            TrsTree::build(TrsParams::with_error_bound(1.0), (0.0, 9_999.0), pairs.clone());
        let wide = TrsTree::build(TrsParams::with_error_bound(10_000.0), (0.0, 9_999.0), pairs);
        let wn = narrow.lookup(100.0, 110.0).total_range_width();
        let ww = wide.lookup(100.0, 110.0).total_range_width();
        assert!(ww > wn, "larger error_bound must widen ranges: {wn} vs {ww}");
    }
}
