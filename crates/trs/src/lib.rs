#![forbid(unsafe_code)]
//! # hermit-trs
//!
//! The **Tiered Regression Search Tree** (TRS-Tree), the core data structure
//! of Hermit (§4 of the paper).
//!
//! A TRS-Tree models the correlation between a *target* column `M` and a
//! *host* column `N` of the same table. It is a k-ary tree over `M`'s value
//! domain: construction recursively divides the domain into `node_fanout`
//! equal-width sub-ranges until each sub-range's `(m, n)` pairs are well
//! covered by a simple linear model `n = β·m + α ± ε` (Algorithm 1). Pairs
//! the model cannot cover are kept in a per-leaf *outlier buffer* that maps
//! target values directly to tuple identifiers.
//!
//! A lookup (Algorithm 2) translates a target-range predicate into (a) a
//! unioned set of host-column ranges via the leaf models, and (b) the
//! outlier tuple ids — Hermit then probes the host index with (a) and
//! validates everything against the base table.
//!
//! The tree is *dynamic*: inserts and deletes are O(height) (Algorithm 3),
//! and background *structure reorganization* re-splits leaves whose outlier
//! buffers grow too large and re-merges subtrees after heavy deletion
//! (§4.4, Appendix B). [`concurrent::ConcurrentTrsTree`] implements the
//! paper's coarse-latch + side-buffer protocol for online reorganization.
//!
//! Module map:
//!
//! * [`params`] — `node_fanout`, `max_height`, `outlier_ratio`,
//!   `error_bound` (§4.5) and the reorganization triggers.
//! * [`node`] — arena nodes, leaf models, outlier buffers (hash or
//!   sorted-vec layout).
//! * [`build`] — Algorithm 1, including the sampling-based pre-check
//!   (Appendix D.2) and multi-threaded construction.
//! * [`lookup`] — Algorithm 2.
//! * [`maintain`] — Algorithm 3 plus reorg-candidate detection.
//! * [`reorg`] — split/merge/batch reorganization against a [`PairSource`].
//! * [`concurrent`] — the Appendix B online-reorganization wrapper.

pub mod build;
pub mod concurrent;
pub mod lookup;
pub mod maintain;
pub mod node;
pub mod params;
pub mod persist;
pub mod reorg;

pub use build::build_parallel;
pub use concurrent::ConcurrentTrsTree;
pub use lookup::{LookupScratch, TrsLookup};
pub use node::{OutlierBufferKind, TrsTree, TrsTreeStats};
pub use params::TrsParams;

use hermit_storage::Tid;

/// Source of `(target, host, tid)` pairs for construction and
/// reorganization.
///
/// Algorithm 1 projects the base table into a temporary two-column table;
/// reorganization re-scans only the value range being rebuilt. Implementors
/// wrap a storage-engine table (see `hermit-core`) or an in-memory vector
/// (tests, benchmarks).
pub trait PairSource {
    /// All live pairs whose *target* value lies in `[lb, ub]`.
    fn scan_range(&self, lb: f64, ub: f64) -> Vec<(f64, f64, Tid)>;
}

/// A [`PairSource`] over a plain slice of pairs (testing / benchmarking).
pub struct VecPairSource(pub Vec<(f64, f64, Tid)>);

impl PairSource for VecPairSource {
    fn scan_range(&self, lb: f64, ub: f64) -> Vec<(f64, f64, Tid)> {
        self.0.iter().filter(|(m, _, _)| *m >= lb && *m <= ub).copied().collect()
    }
}
