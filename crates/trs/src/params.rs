//! TRS-Tree configuration parameters (§4.5 of the paper).

/// User-facing TRS-Tree parameters.
///
/// The paper's default configuration (§7.1) is `node_fanout = 8`,
/// `max_height = 10`, `outlier_ratio = 0.1`, `error_bound = 2`; that is
/// also [`TrsParams::default`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrsParams {
    /// Number of equal-width children a node splits into.
    pub node_fanout: usize,
    /// Maximum tree depth (1 = a single root leaf, as in the §6 tradeoff
    /// discussion). Splitting stops at this depth regardless of outliers.
    pub max_height: usize,
    /// A node's linear model is rejected (and the node split) when more
    /// than this fraction of its tuples are outliers.
    pub outlier_ratio: f64,
    /// Expected number of host-column values returned for a *point* query
    /// on the target column; the confidence interval ε of each leaf is
    /// derived from it (§4.5).
    pub error_bound: f64,
    /// Appendix D.2 optimization: when `Some(f)`, construction first fits a
    /// model on a random fraction `f` of a node's tuples and splits
    /// immediately if the sample's outlier share already exceeds
    /// `outlier_ratio`, skipping the full-range regression.
    pub sampling_fraction: Option<f64>,
    /// Fraction of covered tuples at which a leaf's outlier buffer queues a
    /// *split* reorganization candidate (§4.4). The paper only says "a
    /// threshold"; twice the build-time `outlier_ratio` is a natural choice
    /// and is what we ship.
    pub split_trigger_ratio: f64,
    /// Fraction of deleted tuples (relative to covered tuples) at which a
    /// leaf queues a *merge* reorganization candidate for its parent
    /// (§4.4).
    pub merge_trigger_ratio: f64,
    /// RNG seed used by the sampling pre-check (deterministic builds).
    pub seed: u64,
}

impl Default for TrsParams {
    fn default() -> Self {
        TrsParams {
            node_fanout: 8,
            max_height: 10,
            outlier_ratio: 0.1,
            error_bound: 2.0,
            sampling_fraction: None,
            split_trigger_ratio: 0.2,
            merge_trigger_ratio: 0.3,
            seed: 0x7E55_1234,
        }
    }
}

impl TrsParams {
    /// Default parameters with a different `error_bound` (the knob the
    /// paper sweeps in Figs. 16–18).
    pub fn with_error_bound(error_bound: f64) -> Self {
        TrsParams { error_bound, ..Default::default() }
    }

    /// Enable the Appendix D.2 sampling pre-check at the paper's default 5%.
    pub fn with_sampling(mut self) -> Self {
        self.sampling_fraction = Some(0.05);
        self
    }

    /// Validate parameter sanity; called by construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_fanout < 2 {
            return Err(format!("node_fanout must be >= 2, got {}", self.node_fanout));
        }
        if self.max_height < 1 {
            return Err("max_height must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.outlier_ratio) {
            return Err(format!("outlier_ratio must be in [0,1], got {}", self.outlier_ratio));
        }
        if self.error_bound < 0.0 {
            return Err(format!("error_bound must be >= 0, got {}", self.error_bound));
        }
        if let Some(f) = self.sampling_fraction {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("sampling_fraction must be in [0,1], got {f}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = TrsParams::default();
        assert_eq!(p.node_fanout, 8);
        assert_eq!(p.max_height, 10);
        assert_eq!(p.outlier_ratio, 0.1);
        assert_eq!(p.error_bound, 2.0);
        assert!(p.sampling_fraction.is_none());
        p.validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(TrsParams { node_fanout: 1, ..Default::default() }.validate().is_err());
        assert!(TrsParams { max_height: 0, ..Default::default() }.validate().is_err());
        assert!(TrsParams { outlier_ratio: 1.5, ..Default::default() }.validate().is_err());
        assert!(TrsParams { error_bound: -1.0, ..Default::default() }.validate().is_err());
        assert!(TrsParams { sampling_fraction: Some(2.0), ..Default::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn builders() {
        assert_eq!(TrsParams::with_error_bound(100.0).error_bound, 100.0);
        assert_eq!(TrsParams::default().with_sampling().sampling_fraction, Some(0.05));
    }
}
