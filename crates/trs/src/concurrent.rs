//! Online structure reorganization — the Appendix B protocol.
//!
//! TRS-Tree deliberately avoids latch coupling: single-tuple operations
//! touch exactly one leaf and never cascade, and reorganization is rare and
//! fast, so a coarse-grained protocol suffices:
//!
//! 1. The background worker sets the *reorganizing* flag.
//! 2. While the flag is up, concurrent insert/delete/update operations
//!    append their modifications to a *temporal side buffer* instead of the
//!    tree (avoiding phantoms during the rebuild scan).
//! 3. The worker scans the affected range from the base table, builds the
//!    replacement nodes *off-line*, then takes the coarse tree latch,
//!    installs the nodes, replays the side buffer, and drops the flag.
//!
//! Lookups only ever see a consistent tree: they acquire the read side of
//! the same latch, which the worker holds exclusively only for the short
//! install-and-replay step.

use crate::maintain::ReorgKind;
use crate::node::TrsTree;
use crate::{PairSource, TrsLookup};
use hermit_storage::Tid;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A buffered modification from the reorganization window.
#[derive(Debug, Clone, Copy)]
enum SideOp {
    Insert { m: f64, n: f64, tid: Tid },
    Delete { m: f64, tid: Tid },
}

/// Thread-safe TRS-Tree with online reorganization (Appendix B).
pub struct ConcurrentTrsTree {
    tree: RwLock<TrsTree>,
    reorganizing: AtomicBool,
    side_buffer: Mutex<Vec<SideOp>>,
    /// Number of reorganization passes completed (observability).
    reorg_passes: AtomicU64,
}

impl ConcurrentTrsTree {
    /// Wrap a built tree.
    pub fn new(tree: TrsTree) -> Self {
        ConcurrentTrsTree {
            tree: RwLock::new(tree),
            reorganizing: AtomicBool::new(false),
            side_buffer: Mutex::new(Vec::new()),
            reorg_passes: AtomicU64::new(0),
        }
    }

    /// Range lookup (Algorithm 2) under the read latch.
    pub fn lookup(&self, lb: f64, ub: f64) -> TrsLookup {
        self.tree.read().lookup(lb, ub)
    }

    /// Point lookup under the read latch.
    pub fn lookup_point(&self, m: f64) -> TrsLookup {
        self.tree.read().lookup_point(m)
    }

    /// Scratch-reusing range lookup under the read latch (the vectorized
    /// pipeline's phase 1).
    pub fn lookup_into(
        &self,
        lb: f64,
        ub: f64,
        scratch: &mut crate::LookupScratch,
        out: &mut TrsLookup,
    ) {
        self.tree.read().lookup_into(lb, ub, scratch, out)
    }

    /// The tree's parameters (copied out from under the latch).
    pub fn params(&self) -> crate::TrsParams {
        *self.tree.read().params()
    }

    /// Heap bytes held by the tree (read latch; includes arena garbage from
    /// past reorganizations — see [`compacted_memory_bytes`](Self::compacted_memory_bytes)).
    pub fn memory_bytes(&self) -> usize {
        self.tree.read().memory_bytes()
    }

    /// Queued reorganization candidates awaiting a background pass.
    pub fn reorg_queue_len(&self) -> usize {
        self.tree.read().reorg_queue_len()
    }

    /// Divert `op` to the side buffer if a reorganization is in flight.
    ///
    /// The flag is checked *under the side-buffer lock* — the same lock the
    /// worker holds while replaying the buffer and dropping the flag — so a
    /// writer can never observe `reorganizing == true`, get preempted, and
    /// push into a buffer that was already drained (which would strand the
    /// op forever: a permanent index false negative).
    fn divert(&self, op: SideOp) -> bool {
        let mut buf = self.side_buffer.lock();
        if self.reorganizing.load(Ordering::Acquire) {
            buf.push(op);
            true
        } else {
            false
        }
    }

    /// Raise the *reorganizing* flag (writers start diverting). Taking the
    /// side-buffer lock synchronizes with [`divert`](Self::divert): any
    /// writer that saw the flag down has fully decided to go to the tree,
    /// whose latch then orders it against the rebuild.
    fn begin_reorg(&self) {
        let _buf = self.side_buffer.lock();
        self.reorganizing.store(true, Ordering::Release);
    }

    /// Replay the side buffer into `tree` and drop the flag — atomic with
    /// respect to diverting writers (both sides hold the side-buffer lock).
    /// Call with the tree write latch held.
    fn finish_reorg(&self, tree: &mut TrsTree) {
        let mut buf = self.side_buffer.lock();
        for op in buf.drain(..) {
            match op {
                SideOp::Insert { m, n, tid } => {
                    tree.insert(m, n, tid);
                }
                SideOp::Delete { m, tid } => {
                    tree.delete(m, tid);
                }
            }
        }
        self.reorganizing.store(false, Ordering::Release);
    }

    /// Insert; diverted to the side buffer while a reorganization is in
    /// flight.
    pub fn insert(&self, m: f64, n: f64, tid: Tid) {
        if !self.divert(SideOp::Insert { m, n, tid }) {
            self.tree.write().insert(m, n, tid);
        }
    }

    /// Delete; diverted to the side buffer while a reorganization is in
    /// flight.
    pub fn delete(&self, m: f64, tid: Tid) {
        if !self.divert(SideOp::Delete { m, tid }) {
            self.tree.write().delete(m, tid);
        }
    }

    /// Structural statistics (read latch).
    pub fn stats(&self) -> crate::TrsTreeStats {
        self.tree.read().stats()
    }

    /// Memory after compaction (write latch; compaction rebuilds the arena).
    pub fn compacted_memory_bytes(&self) -> usize {
        self.tree.write().compacted_memory_bytes()
    }

    /// Completed reorganization passes.
    pub fn reorg_passes(&self) -> u64 {
        self.reorg_passes.load(Ordering::Relaxed)
    }

    /// Run one background reorganization pass over up to `limit` queued
    /// candidates (the Appendix B protocol; see module docs). Returns the
    /// number of candidates processed.
    ///
    /// Intended to be called from a dedicated thread; concurrent lookups
    /// proceed under the read latch except during the brief install step.
    pub fn reorganize_pass(&self, source: &dyn PairSource, limit: usize) -> usize {
        // Phase 1: raise the flag — writers start buffering.
        self.begin_reorg();

        // Phase 2: pop the candidates under a brief write latch.
        let candidates: Vec<(crate::node::NodeId, ReorgKind)> = {
            let mut tree = self.tree.write();
            let mut v = Vec::new();
            for _ in 0..limit {
                match tree.next_reorg_candidate() {
                    Some(c) => v.push((c.node, c.kind)),
                    None => break,
                }
            }
            v
        };

        let mut processed = 0;
        for (node, kind) in candidates {
            // Snapshot the rebuild inputs under the read latch.
            let spec = {
                let tree = self.tree.read();
                let valid = (node as usize) < tree.arena.len()
                    && match kind {
                        ReorgKind::Split => tree.node(node).is_leaf(),
                        ReorgKind::Merge => !tree.node(node).is_leaf(),
                    };
                valid.then(|| tree.replacement_spec(node))
            };
            let Some(spec) = spec else { continue };

            // Phase 3: scan + build *offline* — no tree latch held, so
            // lookups and writers proceed during the expensive part...
            let sub = spec.build(source);

            // ...and install under the coarse latch (the brief step).
            {
                let mut tree = self.tree.write();
                // Defensive re-check: with several maintenance drivers the
                // slot could have been re-grafted since the snapshot.
                if (spec.node as usize) < tree.arena.len() && {
                    let r = tree.node(spec.node).range;
                    (r.lb, r.ub) == spec.range()
                } {
                    tree.graft_subtree(spec.node, sub);
                    processed += 1;
                }
            }
        }

        // Phase 4: replay the side buffer under the latch, then drop the
        // flag. New writers go straight to the tree again.
        {
            let mut tree = self.tree.write();
            self.finish_reorg(&mut tree);
        }
        self.reorg_passes.fetch_add(1, Ordering::Relaxed);
        processed
    }

    /// Reorganize the `i`-th first-level subtree online (the §7.7 trace
    /// driver). Follows the same flag / side-buffer / offline-build
    /// protocol as [`reorganize_pass`](Self::reorganize_pass).
    pub fn reorganize_first_level_subtree(&self, i: usize, source: &dyn PairSource) -> bool {
        self.begin_reorg();
        let spec = {
            let tree = self.tree.read();
            match &tree.node(tree.root()).kind {
                crate::node::NodeKind::Internal { children } if !children.is_empty() => {
                    Some(tree.replacement_spec(children[i % children.len()]))
                }
                _ => None,
            }
        };
        let ok = match spec {
            Some(spec) => {
                let sub = spec.build(source);
                self.tree.write().graft_subtree(spec.node, sub);
                true
            }
            None => false,
        };
        {
            let mut tree = self.tree.write();
            self.finish_reorg(&mut tree);
        }
        if ok {
            self.reorg_passes.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Rebuild the whole tree from fresh data (the §4.4 limit case),
    /// following the same flag / side-buffer / offline-build protocol as
    /// the partial reorganizations.
    pub fn rebuild(&self, source: &dyn PairSource) {
        self.begin_reorg();
        let spec = {
            let tree = self.tree.read();
            tree.replacement_spec(tree.root())
        };
        let fresh = spec.build(source);
        {
            let mut tree = self.tree.write();
            let root = tree.root();
            tree.graft_subtree(root, fresh);
            // Every queued candidate refers to pre-rebuild structure.
            while tree.next_reorg_candidate().is_some() {}
            self.finish_reorg(&mut tree);
        }
        self.reorg_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Serialize a checkpoint of the tree under the write latch (the
    /// snapshot compacts the arena first, hence exclusive access). Writers
    /// and lookups block only for the serialization itself — a TRS-Tree
    /// snapshot is KBs by construction (§6), so the pause is brief.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, crate::persist::PersistError> {
        self.tree.write().snapshot_bytes()
    }

    /// Run a closure against the inner tree under the read latch (escape
    /// hatch for read-only inspection that has no dedicated delegate, e.g.
    /// invariant checks in tests).
    pub fn with_tree<T>(&self, f: impl FnOnce(&TrsTree) -> T) -> T {
        f(&self.tree.read())
    }

    /// Consume the wrapper, returning the inner tree.
    pub fn into_inner(self) -> TrsTree {
        self.tree.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrsParams;
    use crate::VecPairSource;
    use std::sync::Arc;

    fn sigmoid_pairs(n: usize) -> Vec<(f64, f64, Tid)> {
        (0..n)
            .map(|i| {
                let m = i as f64 / n as f64 * 20.0 - 10.0;
                (m, 1000.0 / (1.0 + (-m).exp()), Tid(i as u64))
            })
            .collect()
    }

    #[test]
    fn sequential_semantics_match_plain_tree() {
        let pairs = sigmoid_pairs(20_000);
        let plain = TrsTree::build(TrsParams::default(), (-10.0, 10.0), pairs.clone());
        let conc = ConcurrentTrsTree::new(plain.clone());
        for m in [-9.0, -1.0, 0.0, 3.5, 9.9] {
            let a = plain.lookup_point(m);
            let b = conc.lookup_point(m);
            assert_eq!(a.ranges, b.ranges);
        }
    }

    #[test]
    fn concurrent_lookups_during_inserts() {
        let pairs = sigmoid_pairs(30_000);
        let tree = Arc::new(ConcurrentTrsTree::new(TrsTree::build(
            TrsParams::default(),
            (-10.0, 10.0),
            pairs,
        )));
        crossbeam::thread::scope(|s| {
            // Writers.
            for w in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move |_| {
                    for i in 0..5_000u64 {
                        let m = (i % 2000) as f64 / 100.0 - 10.0;
                        tree.insert(m, 5.0e8, Tid(1_000_000 + w * 10_000 + i));
                    }
                });
            }
            // Readers.
            for _ in 0..4 {
                let tree = Arc::clone(&tree);
                s.spawn(move |_| {
                    for i in 0..2_000 {
                        let m = (i % 200) as f64 / 10.0 - 10.0;
                        let _ = tree.lookup(m, m + 0.5);
                    }
                });
            }
        })
        .unwrap();
        assert!(tree.stats().outliers >= 20_000, "all inserts must be visible");
    }

    /// A [`PairSource`] shared with concurrent writers, mimicking the real
    /// insert order in an RDBMS: the tuple lands in the base table first
    /// and in the indexes second, so a reorganization scan always sees at
    /// least the tuples the index has.
    struct SharedSource(parking_lot::Mutex<Vec<(f64, f64, Tid)>>);

    impl crate::PairSource for SharedSource {
        fn scan_range(&self, lb: f64, ub: f64) -> Vec<(f64, f64, Tid)> {
            self.0.lock().iter().filter(|(m, _, _)| *m >= lb && *m <= ub).copied().collect()
        }
    }

    #[test]
    fn reorg_pass_with_concurrent_writers_loses_nothing() {
        let mut pairs = sigmoid_pairs(30_000);
        let tree = Arc::new(ConcurrentTrsTree::new(TrsTree::build(
            TrsParams::default(),
            (-10.0, 10.0),
            pairs.clone(),
        )));
        // Flood a region to queue split candidates.
        for i in 0..6_000u64 {
            let m = (i % 600) as f64 / 1000.0; // around 0
            tree.insert(m, -7.0e8, Tid(2_000_000 + i));
            pairs.push((m, -7.0e8, Tid(2_000_000 + i)));
        }
        let source = Arc::new(SharedSource(parking_lot::Mutex::new(pairs)));

        let extra_base = 3_000_000u64;
        crossbeam::thread::scope(|s| {
            // Background reorg.
            {
                let tree = Arc::clone(&tree);
                let source = Arc::clone(&source);
                s.spawn(move |_| {
                    for _ in 0..4 {
                        tree.reorganize_pass(source.as_ref(), 4);
                    }
                });
            }
            // Concurrent writer inserting fresh outliers the whole time —
            // base table first, index second, as a real executor would.
            {
                let tree = Arc::clone(&tree);
                let source = Arc::clone(&source);
                s.spawn(move |_| {
                    for i in 0..3_000u64 {
                        source.0.lock().push((5.0, 9.0e8, Tid(extra_base + i)));
                        tree.insert(5.0, 9.0e8, Tid(extra_base + i));
                    }
                });
            }
        })
        .unwrap();

        assert!(tree.reorg_passes() >= 4);
        // Every concurrently-inserted tuple must be findable. Two legal
        // paths: via the outlier buffer (replayed from the side buffer or
        // applied directly), or via the model band if a rebuild scan picked
        // the tuples up as ordinary data — Hermit then reaches them through
        // the host index. Both satisfy the no-false-negative contract.
        let r = tree.lookup_point(5.0);
        let in_band = r.ranges.iter().any(|(lo, hi)| 9.0e8 >= *lo && 9.0e8 <= *hi);
        let buffered = (0..3_000u64).filter(|i| r.tids.contains(&Tid(extra_base + i))).count();
        assert!(
            in_band || buffered == 3_000,
            "concurrent inserts lost across reorganization (buffered = {buffered}, in_band = {in_band})"
        );
    }

    #[test]
    fn online_subtree_reorg_keeps_lookups_consistent() {
        let pairs = sigmoid_pairs(30_000);
        let tree = Arc::new(ConcurrentTrsTree::new(TrsTree::build(
            TrsParams::default(),
            (-10.0, 10.0),
            pairs.clone(),
        )));
        let source = VecPairSource(pairs);
        crossbeam::thread::scope(|s| {
            {
                let tree = Arc::clone(&tree);
                let source = &source;
                s.spawn(move |_| {
                    for i in 0..8 {
                        tree.reorganize_first_level_subtree(i, source);
                    }
                });
            }
            {
                let tree = Arc::clone(&tree);
                s.spawn(move |_| {
                    for i in 0..2_000 {
                        let m = (i % 190) as f64 / 10.0 - 9.5;
                        let r = tree.lookup_point(m);
                        // The model band must always cover the true value.
                        let truth = 1000.0 / (1.0 + (-m).exp());
                        let hit = r.ranges.iter().any(|(lo, hi)| truth >= *lo && truth <= *hi);
                        assert!(hit, "lookup inconsistent during online reorg at m={m}");
                    }
                });
            }
        })
        .unwrap();
        assert!(tree.reorg_passes() >= 1);
    }
}
