//! Oracle test: a TRS-Tree range lookup, interpreted the way Hermit's
//! pipeline interprets it (host ranges probed against the host column, plus
//! the outlier tids, both validated against the base table), must return
//! **exactly** the tuple set a full scan returns — no false negatives ever,
//! and no false positives after validation. Checked across several
//! `TrsParams` configurations and correlation shapes.

use hermit_storage::Tid;
use hermit_trs::{TrsParams, TrsTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Base table: (m, n, tid) with the given correlation shape and ~4% wild
/// outliers, from the workspace's deterministic RNG.
fn table(shape: &str, n_rows: usize, seed: u64) -> Vec<(f64, f64, Tid)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_rows)
        .map(|i| {
            let m = rng.gen_range(0.0f64..1000.0);
            let base = match shape {
                "linear" => 3.0 * m + 42.0,
                "quadratic" => m * m / 50.0,
                _ => 1.0e4 / (1.0 + (-(m - 500.0) / 50.0).exp()), // sigmoid
            };
            let n = if rng.gen_bool(0.04) {
                base + 5.0e5 * (1.0 + rng.gen_range(0.0..1.0))
            } else {
                base
            };
            (m, n, Tid(i as u64))
        })
        .collect()
}

/// The oracle: answer the predicate `m ∈ [qlb, qub]` through the TRS-Tree
/// exactly as the Hermit pipeline would, then compare against a full scan.
fn check_exactness(params: TrsParams, data: &[(f64, f64, Tid)], qlb: f64, qub: f64) {
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |acc, p| (acc.0.min(p.0), acc.1.max(p.0)));
    let tree = TrsTree::build(params, (lo, hi), data.to_vec());
    tree.check_invariants().expect("tree invariants");

    let result = tree.lookup(qlb, qub);

    // Phase 2 stand-in: "probe the host index" — every tuple whose host
    // value n falls in a returned range is a candidate — plus the outliers.
    let mut candidates: BTreeSet<u64> = result.tids.iter().map(|t| t.0).collect();
    for &(_, n, tid) in data {
        if result.ranges.iter().any(|&(a, b)| n >= a && n <= b) {
            candidates.insert(tid.0);
        }
    }
    // Phase 3: validate candidates against the base table.
    let validated: BTreeSet<u64> = candidates
        .into_iter()
        .filter(|&t| {
            let (m, _, _) = data[t as usize];
            m >= qlb && m <= qub
        })
        .collect();

    // Oracle: a full scan of the base table.
    let expected: BTreeSet<u64> =
        data.iter().filter(|&&(m, _, _)| m >= qlb && m <= qub).map(|&(_, _, t)| t.0).collect();

    assert_eq!(
        validated, expected,
        "validated TRS-Tree answer diverged from full scan for [{qlb}, {qub}]"
    );
}

fn param_grid() -> Vec<TrsParams> {
    vec![
        TrsParams::default(),
        TrsParams { node_fanout: 2, max_height: 4, ..TrsParams::default() },
        TrsParams { node_fanout: 16, max_height: 3, ..TrsParams::default() },
        TrsParams { outlier_ratio: 0.01, error_bound: 0.5, ..TrsParams::default() },
        TrsParams { error_bound: 8.0, ..TrsParams::default() },
        TrsParams::default().with_sampling(),
    ]
}

#[test]
fn range_lookup_matches_full_scan_across_configs() {
    for shape in ["linear", "quadratic", "sigmoid"] {
        let data = table(shape, 3_000, 0xB10C_BEEF);
        for (pi, params) in param_grid().into_iter().enumerate() {
            params.validate().unwrap_or_else(|e| panic!("config {pi} invalid: {e}"));
            for (qlb, qub) in
                [(0.0, 1000.0), (100.0, 250.0), (499.5, 500.5), (990.0, 1100.0), (-50.0, -1.0)]
            {
                check_exactness(params, &data, qlb, qub);
            }
        }
    }
}

#[test]
fn point_lookup_matches_full_scan() {
    let data = table("sigmoid", 2_000, 0xFACE_FEED);
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |acc, p| (acc.0.min(p.0), acc.1.max(p.0)));
    let tree = TrsTree::build(TrsParams::default(), (lo, hi), data.clone());
    // Every stored m must be reachable through its own point lookup.
    for &(m, n, tid) in data.iter().step_by(7) {
        let r = tree.lookup_point(m);
        let reachable = r.tids.contains(&tid) || r.ranges.iter().any(|&(a, b)| n >= a && n <= b);
        assert!(reachable, "tuple (m={m}, n={n}, tid={}) unreachable via point lookup", tid.0);
    }
}
