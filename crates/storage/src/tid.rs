//! Tuple identifiers and the two identifier schemes from §5.1 of the paper.
//!
//! Secondary indexes map key values to *tuple identifiers*. The paper
//! distinguishes:
//!
//! * **Physical pointers** — the identifier is a row location
//!   (`block + offset`), so the base table can be dereferenced directly, but
//!   every tuple move must patch every secondary index (PostgreSQL style).
//! * **Logical pointers** — the identifier is the tuple's primary key, so
//!   secondary lookups must take an extra hop through the primary index
//!   (MySQL/InnoDB style).
//!
//! Both schemes matter to Hermit's evaluation because the extra
//! primary-index hop dominates lookup cost under logical pointers
//! (Figs. 10/11/14/15). We encode either flavor in a single `u64`-sized
//! [`Tid`] so index structures are agnostic to the scheme in play.

use crate::table::RowLoc;

/// Which tuple-identifier scheme a database instance runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TidScheme {
    /// Identifiers are primary keys; secondary lookups resolve them through
    /// the primary index before touching the base table.
    Logical,
    /// Identifiers are `block+offset` row locations; secondary lookups go
    /// straight to the base table.
    Physical,
}

impl TidScheme {
    /// Short label used by the benchmark harness when printing series.
    pub fn label(&self) -> &'static str {
        match self {
            TidScheme::Logical => "logical",
            TidScheme::Physical => "physical",
        }
    }
}

/// An opaque tuple identifier: either an encoded [`RowLoc`] (physical) or a
/// primary-key integer (logical), depending on the database's [`TidScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u64);

impl Tid {
    /// Build a physical tid from a row location.
    #[inline]
    pub fn from_loc(loc: RowLoc) -> Self {
        Tid(loc.encode())
    }

    /// Build a logical tid from a primary key. Keys are stored sign-mapped
    /// so that negative keys round-trip.
    #[inline]
    pub fn from_pk(pk: i64) -> Self {
        Tid(pk as u64)
    }

    /// Interpret the tid as a physical row location.
    #[inline]
    pub fn as_loc(&self) -> RowLoc {
        RowLoc::decode(self.0)
    }

    /// Interpret the tid as a logical primary key.
    #[inline]
    pub fn as_pk(&self) -> i64 {
        self.0 as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_roundtrip() {
        let loc = RowLoc::new(7, 123);
        let tid = Tid::from_loc(loc);
        assert_eq!(tid.as_loc(), loc);
    }

    #[test]
    fn logical_roundtrip_including_negative() {
        for pk in [0i64, 1, -1, i64::MAX, i64::MIN, 424242] {
            assert_eq!(Tid::from_pk(pk).as_pk(), pk);
        }
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(TidScheme::Logical.label(), "logical");
        assert_eq!(TidScheme::Physical.label(), "physical");
    }
}
