//! Append-only write-ahead log for DML between checkpoints.
//!
//! A checkpoint makes the heap pages, catalog, and index snapshots durable;
//! everything the database does *after* that would be lost at a crash. The
//! WAL closes the gap: every committed insert/delete is appended here as a
//! CRC-framed logical record, and recovery replays the log on top of the
//! last checkpoint.
//!
//! Design points:
//!
//! * **Logical records.** The log carries rows and primary keys, not page
//!   images — replay goes through the ordinary DML path, so it maintains
//!   every index for free and is independent of page layout.
//! * **Epoch fencing.** The file starts with a header naming its *epoch*; a
//!   catalog names the epoch it pairs with. Recovery replays the WAL only
//!   when the epochs match, so a crash *between* "new catalog renamed" and
//!   "WAL reset" cannot double-apply records the checkpoint already
//!   contains (the stale WAL still carries the old epoch and is ignored).
//! * **Torn tails are expected.** A crash mid-append leaves a partial
//!   frame. The reader stops at the first frame that is short or fails its
//!   CRC and reports how many bytes were valid; recovery truncates to that
//!   point and appends from there. Everything before the tear replays
//!   normally — a torn tail is data loss bounded by the last fsync, never
//!   an error.
//! * **Group commit.** Appends are buffered; [`WalWriter::commit`] flushes
//!   and fsyncs. The database fsyncs every N appends (the commit batch) and
//!   at checkpoints; the durability contract is "everything up to the last
//!   commit survives".
//!
//! Format (little-endian):
//!
//! ```text
//! header: magic "HMWL" | version u32 | epoch u64          (16 bytes)
//! frame:  len u32 | crc32 u32 (of payload) | payload[len]
//! payload: kind u8 = 1 (insert):     width u16 | width × (tag u8 | body u64)
//!          kind u8 = 2 (delete):     pk i64
//!          kind u8 = 3 (txn begin):  txn u64
//!          kind u8 = 4 (txn insert): txn u64 | width u16 | width × cell
//!          kind u8 = 5 (txn delete): txn u64 | pk i64 | width u16 | width × cell
//!          kind u8 = 6 (txn commit): txn u64
//!          kind u8 = 7 (txn abort):  txn u64
//! ```
//!
//! Cell encoding matches the paged heap's: tag 0 = NULL, 1 = Int, 2 = Float,
//! with an 8-byte little-endian body.
//!
//! Kinds 3–7 carry multi-statement transactions (the `hermit_txn`
//! subsystem). A txn-delete record carries the **full pre-image row**, not
//! just the key: the buffer pool may steal the physical delete to disk
//! before the commit record lands, and recovery must be able to reinstate
//! the row when it rolls the loser back — the heap alone can no longer
//! produce it. An old reader treats any of these kinds as a torn tail
//! (bad record kind), so the version stays 1 and downgrade is safe up to
//! losing the post-checkpoint txn suffix.

use crate::fault::{fault_point, injected_error, FaultAction};
use crate::recovery::{crc32, sync_dir, RecoveryError};
use crate::value::Value;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HMWL";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
/// Upper bound on a frame payload; anything larger is treated as a tear
/// (a corrupted length would otherwise ask the reader to swallow gigabytes).
const MAX_PAYLOAD: usize = 1 << 20;

/// One logical DML record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A row inserted after the last checkpoint.
    Insert {
        /// Full row values, in schema order.
        row: Vec<Value>,
    },
    /// A row deleted (by primary key) after the last checkpoint.
    Delete {
        /// Primary key of the deleted row.
        pk: i64,
    },
    /// A multi-statement transaction began.
    TxnBegin {
        /// Transaction id (monotonic per log generation).
        txn: u64,
    },
    /// A row inserted inside an open transaction.
    TxnInsert {
        /// Owning transaction id.
        txn: u64,
        /// Full row values, in schema order.
        row: Vec<Value>,
    },
    /// A row deleted inside a transaction, with its full pre-image so loser
    /// rollback can reinstate it even after a buffer-pool steal persisted
    /// the physical delete.
    TxnDelete {
        /// Owning transaction id.
        txn: u64,
        /// Primary key of the deleted row.
        pk: i64,
        /// Pre-image of the deleted row, in schema order.
        row: Vec<Value>,
    },
    /// The transaction committed: every record it logged is now a winner.
    TxnCommit {
        /// Committing transaction id.
        txn: u64,
    },
    /// The transaction aborted: its logged effects must be undone (recovery
    /// treats an open txn with no commit record identically).
    TxnAbort {
        /// Aborting transaction id.
        txn: u64,
    },
}

fn encode_cells(row: &[Value], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => {
                buf.push(0);
                buf.extend_from_slice(&[0u8; 8]);
            }
            Value::Int(x) => {
                buf.push(1);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            Value::Float(x) => {
                buf.push(2);
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
}

/// Decode `width u16 | width × (tag u8 | body u64)` starting at `payload[at]`;
/// the cells must consume the payload exactly.
fn decode_cells(payload: &[u8], at: usize) -> Result<Vec<Value>, RecoveryError> {
    if payload.len() < at + 2 {
        return Err(RecoveryError::Corrupt("short row record"));
    }
    let width = u16::from_le_bytes(payload[at..at + 2].try_into().unwrap()) as usize;
    let base = at + 2;
    if payload.len() != base + width * 9 {
        return Err(RecoveryError::Corrupt("row record length mismatch"));
    }
    let mut row = Vec::with_capacity(width);
    for c in 0..width {
        let cell = &payload[base + c * 9..base + (c + 1) * 9];
        let body: [u8; 8] = cell[1..9].try_into().unwrap();
        row.push(match cell[0] {
            0 => Value::Null,
            1 => Value::Int(i64::from_le_bytes(body)),
            2 => Value::Float(f64::from_le_bytes(body)),
            _ => return Err(RecoveryError::Corrupt("bad cell tag")),
        });
    }
    Ok(row)
}

fn encode_payload(rec: &WalRecord, buf: &mut Vec<u8>) {
    buf.clear();
    match rec {
        WalRecord::Insert { row } => {
            buf.push(1);
            encode_cells(row, buf);
        }
        WalRecord::Delete { pk } => {
            buf.push(2);
            buf.extend_from_slice(&pk.to_le_bytes());
        }
        WalRecord::TxnBegin { txn } => {
            buf.push(3);
            buf.extend_from_slice(&txn.to_le_bytes());
        }
        WalRecord::TxnInsert { txn, row } => {
            buf.push(4);
            buf.extend_from_slice(&txn.to_le_bytes());
            encode_cells(row, buf);
        }
        WalRecord::TxnDelete { txn, pk, row } => {
            buf.push(5);
            buf.extend_from_slice(&txn.to_le_bytes());
            buf.extend_from_slice(&pk.to_le_bytes());
            encode_cells(row, buf);
        }
        WalRecord::TxnCommit { txn } => {
            buf.push(6);
            buf.extend_from_slice(&txn.to_le_bytes());
        }
        WalRecord::TxnAbort { txn } => {
            buf.push(7);
            buf.extend_from_slice(&txn.to_le_bytes());
        }
    }
}

fn decode_u64(payload: &[u8], at: usize) -> Result<u64, RecoveryError> {
    payload
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .ok_or(RecoveryError::Corrupt("short txn record"))
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, RecoveryError> {
    match payload.first() {
        Some(1) => Ok(WalRecord::Insert { row: decode_cells(payload, 1)? }),
        Some(2) => {
            if payload.len() != 9 {
                return Err(RecoveryError::Corrupt("delete record length mismatch"));
            }
            Ok(WalRecord::Delete { pk: i64::from_le_bytes(payload[1..9].try_into().unwrap()) })
        }
        Some(3) => {
            if payload.len() != 9 {
                return Err(RecoveryError::Corrupt("txn-begin record length mismatch"));
            }
            Ok(WalRecord::TxnBegin { txn: decode_u64(payload, 1)? })
        }
        Some(4) => Ok(WalRecord::TxnInsert {
            txn: decode_u64(payload, 1)?,
            row: decode_cells(payload, 9)?,
        }),
        Some(5) => Ok(WalRecord::TxnDelete {
            txn: decode_u64(payload, 1)?,
            pk: decode_u64(payload, 9)? as i64,
            row: decode_cells(payload, 17)?,
        }),
        Some(6) => {
            if payload.len() != 9 {
                return Err(RecoveryError::Corrupt("txn-commit record length mismatch"));
            }
            Ok(WalRecord::TxnCommit { txn: decode_u64(payload, 1)? })
        }
        Some(7) => {
            if payload.len() != 9 {
                return Err(RecoveryError::Corrupt("txn-abort record length mismatch"));
            }
            Ok(WalRecord::TxnAbort { txn: decode_u64(payload, 1)? })
        }
        _ => Err(RecoveryError::Corrupt("bad record kind")),
    }
}

/// Appender over a WAL file. Writes are buffered; [`commit`](Self::commit)
/// is the durability point.
pub struct WalWriter {
    out: BufWriter<File>,
    epoch: u64,
    uncommitted: usize,
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Create (or reset) the WAL at `path` for `epoch`: truncates, writes
    /// the header, fsyncs file and directory. After this returns, a reader
    /// sees an empty log of the given epoch.
    pub fn create(path: &Path, epoch: u64) -> Result<Self, RecoveryError> {
        // Crash/fault site *before* the truncating open: a snapshot here
        // models a crash between "new catalog renamed" and "WAL reset" —
        // the stale-epoch WAL the epoch fence exists for.
        if fault_point("wal.reset") == FaultAction::Error {
            return Err(RecoveryError::Io(std::io::Error::other(injected_error("wal.reset"))));
        }
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        // Site between truncation and the header write: a snapshot here is
        // a header-torn (empty) WAL, which recovery must treat as benign.
        if fault_point("wal.header") == FaultAction::Error {
            return Err(RecoveryError::Io(std::io::Error::other(injected_error("wal.header"))));
        }
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&epoch.to_le_bytes())?;
        file.sync_all()?;
        sync_dir(path.parent().unwrap_or_else(|| Path::new(".")));
        Ok(WalWriter { out: BufWriter::new(file), epoch, uncommitted: 0, scratch: Vec::new() })
    }

    /// Reopen an existing WAL for appending after recovery: the file is
    /// truncated to `valid_len` (discarding a torn tail, so fresh appends
    /// never land after garbage) and the writer positions itself there.
    pub fn open_append(path: &Path, epoch: u64, valid_len: u64) -> Result<Self, RecoveryError> {
        // Site before the truncating reopen: a crash here leaves the torn
        // tail on disk for the *next* recovery to discard again — the
        // operation must be idempotent.
        if fault_point("wal.reopen") == FaultAction::Error {
            return Err(RecoveryError::Io(std::io::Error::other(injected_error("wal.reopen"))));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(WalWriter { out: BufWriter::new(file), epoch, uncommitted: 0, scratch: Vec::new() })
    }

    /// The epoch this log belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Append one record (buffered — not durable until
    /// [`commit`](Self::commit)). Returns the number of records appended
    /// since the last commit.
    pub fn append(&mut self, rec: &WalRecord) -> Result<usize, RecoveryError> {
        match fault_point("wal.append") {
            FaultAction::Error => {
                return Err(RecoveryError::Io(std::io::Error::other(injected_error("wal.append"))));
            }
            FaultAction::Skip => {
                // Silently-dropped append: the caller is told the record is
                // in the log, but no bytes were written.
                self.uncommitted += 1;
                return Ok(self.uncommitted);
            }
            FaultAction::Continue => {}
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_payload(rec, &mut scratch);
        let res = (|| -> Result<(), RecoveryError> {
            self.out.write_all(&(scratch.len() as u32).to_le_bytes())?;
            self.out.write_all(&crc32(&scratch).to_le_bytes())?;
            self.out.write_all(&scratch)?;
            Ok(())
        })();
        self.scratch = scratch;
        res?;
        self.uncommitted += 1;
        Ok(self.uncommitted)
    }

    /// Append a [`WalRecord::TxnCommit`] for `txn`, behind its own
    /// `wal.txn_commit` fault site so the crash-schedule explorer can
    /// `kill -9` the instant before the commit record reaches the log
    /// (the transaction must then recover as a loser). The generic
    /// `wal.append` site still fires inside the inner [`append`](Self::append).
    pub fn append_txn_commit(&mut self, txn: u64) -> Result<usize, RecoveryError> {
        match fault_point("wal.txn_commit") {
            FaultAction::Error => {
                return Err(RecoveryError::Io(std::io::Error::other(injected_error(
                    "wal.txn_commit",
                ))));
            }
            FaultAction::Skip => {
                // Dropped commit record: the caller believes the txn is
                // logged as a winner, but the log never says so.
                self.uncommitted += 1;
                return Ok(self.uncommitted);
            }
            FaultAction::Continue => {}
        }
        self.append(&WalRecord::TxnCommit { txn })
    }

    /// Append a [`WalRecord::TxnAbort`] for `txn`, behind its own
    /// `wal.txn_abort` fault site (see [`append_txn_commit`](Self::append_txn_commit)).
    /// A dropped/crashed abort record is benign for atomicity — recovery
    /// rolls back any open txn without a commit record anyway — but the
    /// site proves that.
    pub fn append_txn_abort(&mut self, txn: u64) -> Result<usize, RecoveryError> {
        match fault_point("wal.txn_abort") {
            FaultAction::Error => {
                return Err(RecoveryError::Io(std::io::Error::other(injected_error(
                    "wal.txn_abort",
                ))));
            }
            FaultAction::Skip => {
                self.uncommitted += 1;
                return Ok(self.uncommitted);
            }
            FaultAction::Continue => {}
        }
        self.append(&WalRecord::TxnAbort { txn })
    }

    /// Flush buffered frames and fsync: everything appended so far is now
    /// durable (the commit-batch boundary).
    pub fn commit(&mut self) -> Result<(), RecoveryError> {
        match fault_point("wal.commit") {
            FaultAction::Error => {
                return Err(RecoveryError::Io(std::io::Error::other(injected_error("wal.commit"))));
            }
            FaultAction::Skip => {
                // Lying fsync: acknowledge durability without flushing or
                // syncing — the buffered frames stay in user space and die
                // with the process.
                self.uncommitted = 0;
                return Ok(());
            }
            FaultAction::Continue => {}
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.uncommitted = 0;
        Ok(())
    }

    /// Records appended since the last commit.
    pub fn uncommitted(&self) -> usize {
        self.uncommitted
    }

    /// Consume the writer, **dropping** any buffered-but-uncommitted
    /// frames instead of flushing them. Used when a log generation is
    /// being abandoned (checkpoint reset): letting the `BufWriter` drop
    /// normally would flush stale bytes at its old offset into a file that
    /// has since been truncated and restarted under a new epoch.
    pub fn discard(self) {
        let (file, _pending) = self.out.into_parts();
        drop(file);
    }
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// Epoch from the file header.
    pub epoch: u64,
    /// All complete, CRC-valid records, in append order.
    pub records: Vec<WalRecord>,
    /// File length up to and including the last valid frame. Appending must
    /// resume here (see [`WalWriter::open_append`]).
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was discarded after `valid_len`.
    pub torn_tail: bool,
}

/// Read a WAL file, tolerating a torn tail (see module docs). Errors are
/// reserved for a missing/unreadable file or a bad header — once the header
/// checks out, any malformed byte simply ends the log.
pub fn read_wal(path: &Path) -> Result<WalReplay, RecoveryError> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize {
        return Err(RecoveryError::Corrupt("wal header truncated"));
    }
    if &bytes[..4] != MAGIC {
        return Err(RecoveryError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(RecoveryError::UnsupportedVersion(version));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let Some(head) = bytes.get(pos..pos + 8) else {
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            torn_tail = true;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            torn_tail = true;
            break;
        }
        let Ok(rec) = decode_payload(payload) else {
            torn_tail = true;
            break;
        };
        records.push(rec);
        pos += 8 + len;
    }
    Ok(WalReplay { epoch, records, valid_len: pos as u64, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hermit-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert { row: vec![Value::Int(1), Value::Float(2.5), Value::Null] },
            WalRecord::Delete { pk: 1 },
            WalRecord::Insert { row: vec![Value::Int(-7), Value::Float(-0.0), Value::Float(1e9)] },
        ]
    }

    #[test]
    fn append_commit_read_roundtrip() {
        let path = tmp("roundtrip.wal");
        let mut w = WalWriter::create(&path, 3).unwrap();
        for rec in &sample_records() {
            w.append(rec).unwrap();
        }
        assert_eq!(w.uncommitted(), 3);
        w.commit().unwrap();
        assert_eq!(w.uncommitted(), 0);
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.epoch, 3);
        assert_eq!(replay.records, sample_records());
        assert!(!replay.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_stops_at_last_complete_record() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::create(&path, 1).unwrap();
        for rec in &sample_records() {
            w.append(rec).unwrap();
        }
        w.commit().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        let clean = read_wal(&path).unwrap();
        // Chop bytes off the end: every truncation point must recover the
        // longest prefix of complete records, never error.
        for cut in 1..(full - HEADER_LEN) {
            let bytes = std::fs::read(&path).unwrap();
            let torn_path = tmp("torn-cut.wal");
            std::fs::write(&torn_path, &bytes[..(full - cut) as usize]).unwrap();
            let replay = read_wal(&torn_path).unwrap();
            assert!(replay.records.len() < clean.records.len() || !replay.torn_tail);
            assert_eq!(
                replay.records,
                clean.records[..replay.records.len()],
                "cut {cut}: surviving prefix must match"
            );
            assert!(replay.valid_len <= full - cut);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_frame_ends_the_log_without_error() {
        let path = tmp("corrupt.wal");
        let mut w = WalWriter::create(&path, 1).unwrap();
        for rec in &sample_records() {
            w.append(rec).unwrap();
        }
        w.commit().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the second frame's payload: record 1 survives,
        // the rest is discarded as a tear.
        let first_frame_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize + 8;
        let idx = 16 + first_frame_len + 10;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.valid_len as usize, 16 + first_frame_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_truncates_the_tear_and_continues() {
        let path = tmp("append.wal");
        let mut w = WalWriter::create(&path, 9).unwrap();
        w.append(&WalRecord::Delete { pk: 10 }).unwrap();
        w.commit().unwrap();
        // Simulate a crash mid-append: garbage tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; 7]).unwrap();
        }
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn_tail);
        let mut w = WalWriter::open_append(&path, replay.epoch, replay.valid_len).unwrap();
        w.append(&WalRecord::Delete { pk: 11 }).unwrap();
        w.commit().unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(!replay.torn_tail, "tear must have been truncated away");
        assert_eq!(
            replay.records,
            vec![WalRecord::Delete { pk: 10 }, WalRecord::Delete { pk: 11 }]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn txn_records_roundtrip() {
        let path = tmp("txn-roundtrip.wal");
        let recs = vec![
            WalRecord::TxnBegin { txn: 7 },
            WalRecord::TxnInsert { txn: 7, row: vec![Value::Int(1), Value::Float(2.5)] },
            WalRecord::TxnDelete {
                txn: 7,
                pk: -3,
                row: vec![Value::Int(-3), Value::Null, Value::Float(1e9)],
            },
            WalRecord::TxnAbort { txn: 7 },
            WalRecord::TxnBegin { txn: 8 },
            WalRecord::TxnCommit { txn: 8 },
        ];
        let mut w = WalWriter::create(&path, 5).unwrap();
        for rec in &recs {
            w.append(rec).unwrap();
        }
        w.commit().unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records, recs);
        assert!(!replay.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn txn_commit_abort_helpers_hit_their_fault_sites() {
        let path = tmp("txn-sites.wal");
        let seen = std::rc::Rc::new(RefCell::new(Vec::new()));
        {
            let seen = std::rc::Rc::clone(&seen);
            let _guard = crate::fault::install_fault_hook(move |site| {
                seen.borrow_mut().push(site);
                FaultAction::Continue
            });
            let mut w = WalWriter::create(&path, 1).unwrap();
            w.append_txn_commit(11).unwrap();
            w.append_txn_abort(12).unwrap();
            w.commit().unwrap();
        }
        let sites = seen.borrow();
        assert!(sites.contains(&"wal.txn_commit"));
        assert!(sites.contains(&"wal.txn_abort"));
        let replay = read_wal(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![WalRecord::TxnCommit { txn: 11 }, WalRecord::TxnAbort { txn: 12 }]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropped_txn_commit_record_leaves_no_bytes() {
        let path = tmp("txn-skip.wal");
        let _guard = crate::fault::install_fault_hook(|site| {
            if site == "wal.txn_commit" {
                FaultAction::Skip
            } else {
                FaultAction::Continue
            }
        });
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.append(&WalRecord::TxnBegin { txn: 1 }).unwrap();
        w.append_txn_commit(1).unwrap();
        w.commit().unwrap();
        let replay = read_wal(&path).unwrap();
        // The begin landed; the lying commit-record append left the log
        // showing an open (loser) transaction.
        assert_eq!(replay.records, vec![WalRecord::TxnBegin { txn: 1 }]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_is_an_error() {
        let path = tmp("badheader.wal");
        WalWriter::create(&path, 1).unwrap().commit().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_wal(&path), Err(RecoveryError::BadMagic)));
        std::fs::write(&path, b"HM").unwrap();
        assert!(matches!(read_wal(&path), Err(RecoveryError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
