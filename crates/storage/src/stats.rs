//! Incrementally-maintained per-column statistics.
//!
//! Algorithm 1 of the paper reads the target column's full value range from
//! "the RDBMS's optimizer statistics"; this module is that substrate. The
//! table updates these stats on every insert so that TRS-Tree construction
//! and correlation discovery can read min/max/count in O(1).
//!
//! Counts are maintained on *both* sides of the row lifecycle: inserts call
//! [`ColumnStats::observe`], deletes call [`ColumnStats::observe_delete`],
//! so `non_null_count`/`null_count` track *live* values and the planner can
//! cost against real cardinalities after heavy deletion. The min/max range
//! is append-only (it never shrinks on delete), which matches how real
//! optimizer range stats lag behind the data until the next ANALYZE.

use crate::value::Value;

/// Running min/max/count/null-count for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    min: Option<f64>,
    max: Option<f64>,
    non_null: u64,
    nulls: u64,
}

impl ColumnStats {
    /// Fold one appended value into the stats.
    #[inline]
    pub fn observe(&mut self, v: &Value) {
        match v.as_f64() {
            None => self.nulls += 1,
            Some(x) => {
                self.non_null += 1;
                self.min = Some(self.min.map_or(x, |m| m.min(x)));
                self.max = Some(self.max.map_or(x, |m| m.max(x)));
            }
        }
    }

    /// Fold one deleted (or overwritten) value out of the stats: the
    /// delete-side counterpart of [`observe`](Self::observe). Counts
    /// shrink; the min/max range deliberately does not (see module docs).
    #[inline]
    pub fn observe_delete(&mut self, v: &Value) {
        match v.as_f64() {
            None => self.nulls = self.nulls.saturating_sub(1),
            Some(_) => self.non_null = self.non_null.saturating_sub(1),
        }
    }

    /// Smallest non-null value seen, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest non-null value seen, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// `(min, max)` if at least one non-null value has been observed.
    ///
    /// This is what TRS-Tree construction uses as the root range `R`.
    pub fn range(&self) -> Option<(f64, f64)> {
        Some((self.min?, self.max?))
    }

    /// Number of live non-null values (observed minus deleted).
    pub fn non_null_count(&self) -> u64 {
        self.non_null
    }

    /// Number of NULLs observed.
    pub fn null_count(&self) -> u64 {
        self.nulls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_no_range() {
        let s = ColumnStats::default();
        assert_eq!(s.range(), None);
        assert_eq!(s.non_null_count(), 0);
    }

    #[test]
    fn observe_tracks_min_max_and_nulls() {
        let mut s = ColumnStats::default();
        for v in [Value::Float(3.0), Value::Null, Value::Float(-1.0), Value::Int(10)] {
            s.observe(&v);
        }
        assert_eq!(s.range(), Some((-1.0, 10.0)));
        assert_eq!(s.non_null_count(), 3);
        assert_eq!(s.null_count(), 1);
    }

    #[test]
    fn single_value_range_is_degenerate() {
        let mut s = ColumnStats::default();
        s.observe(&Value::Float(5.0));
        assert_eq!(s.range(), Some((5.0, 5.0)));
    }

    #[test]
    fn delete_shrinks_counts_but_not_range() {
        let mut s = ColumnStats::default();
        s.observe(&Value::Float(1.0));
        s.observe(&Value::Float(9.0));
        s.observe(&Value::Null);
        s.observe_delete(&Value::Float(9.0));
        s.observe_delete(&Value::Null);
        assert_eq!(s.non_null_count(), 1);
        assert_eq!(s.null_count(), 0);
        assert_eq!(s.range(), Some((1.0, 9.0)), "range stats are append-only");
        // Saturates instead of underflowing on spurious deletes.
        s.observe_delete(&Value::Float(1.0));
        s.observe_delete(&Value::Float(1.0));
        assert_eq!(s.non_null_count(), 0);
    }
}
