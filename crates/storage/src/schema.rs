//! Table schemas: named, typed, optionally-nullable columns.

use crate::error::StorageError;
use crate::Result;

/// Index of a column within a table's schema.
pub type ColumnId = usize;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
}

impl ColumnType {
    /// Human-readable type name (used in error messages).
    pub fn name(&self) -> &'static str {
        match self {
            ColumnType::Int => "Int",
            ColumnType::Float => "Float",
        }
    }
}

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name as it would appear in SQL.
    pub name: String,
    /// Declared value type.
    pub ty: ColumnType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable integer column.
    pub fn int(name: impl Into<String>) -> Self {
        ColumnDef { name: name.into(), ty: ColumnType::Int, nullable: false }
    }

    /// A non-nullable float column.
    pub fn float(name: impl Into<String>) -> Self {
        ColumnDef { name: name.into(), ty: ColumnType::Float, nullable: false }
    }

    /// A nullable float column (used by the wide Stock table, where missing
    /// readings are stored as NULL per Appendix A).
    pub fn float_null(name: impl Into<String>) -> Self {
        ColumnDef { name: name.into(), ty: ColumnType::Float, nullable: true }
    }
}

/// An ordered collection of column definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Definition of column `cid`, or an error if out of range.
    pub fn column(&self, cid: ColumnId) -> Result<&ColumnDef> {
        self.columns
            .get(cid)
            .ok_or(StorageError::ColumnOutOfRange { column: cid, width: self.columns.len() })
    }

    /// All column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Resolve a column name to its id (linear scan; schemas are tiny).
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::int("time"),
            ColumnDef::float("dj"),
            ColumnDef::float_null("sp"),
        ])
    }

    #[test]
    fn width_and_lookup() {
        let s = sample();
        assert_eq!(s.width(), 3);
        assert_eq!(s.column_id("dj"), Some(1));
        assert_eq!(s.column_id("missing"), None);
    }

    #[test]
    fn column_access_and_bounds() {
        let s = sample();
        assert_eq!(s.column(0).unwrap().ty, ColumnType::Int);
        assert!(s.column(2).unwrap().nullable);
        assert!(matches!(s.column(3), Err(StorageError::ColumnOutOfRange { column: 3, width: 3 })));
    }

    #[test]
    fn type_names() {
        assert_eq!(ColumnType::Int.name(), "Int");
        assert_eq!(ColumnType::Float.name(), "Float");
    }
}
