//! Typed columnar storage with null bitmaps.
//!
//! Each table column is stored as a dense typed vector plus a packed null
//! bitmap, mirroring what a main-memory columnar engine like the paper's
//! DBMS-X would keep. Storing typed vectors (rather than `Vec<Value>`)
//! halves the memory footprint and keeps scans/validations cache-friendly,
//! which matters because Hermit's base-table validation phase is a hot path.

use crate::schema::ColumnType;
use crate::value::Value;

/// Packed bitmap tracking which rows of a column are NULL.
#[derive(Debug, Clone, Default)]
struct NullBitmap {
    words: Vec<u64>,
    any_null: bool,
}

impl NullBitmap {
    #[inline]
    fn push(&mut self, len: usize, is_null: bool) {
        let word = len / 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[word] |= 1 << (len % 64);
            self.any_null = true;
        }
    }

    #[inline]
    fn is_null(&self, idx: usize) -> bool {
        if !self.any_null {
            return false;
        }
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    #[inline]
    fn set_null(&mut self, idx: usize, is_null: bool) {
        if is_null {
            self.words[idx / 64] |= 1 << (idx % 64);
            self.any_null = true;
        } else {
            self.words[idx / 64] &= !(1 << (idx % 64));
        }
    }

    fn memory_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// Typed payload of a column.
#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
}

/// A single table column: typed dense vector + null bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    nulls: NullBitmap,
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(ty: ColumnType) -> Self {
        let data = match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
        };
        Column { data, nulls: NullBitmap::default() }
    }

    /// Create an empty column with pre-reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        let data = match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ColumnType::Float => ColumnData::Float(Vec::with_capacity(cap)),
        };
        Column { data, nulls: NullBitmap::default() }
    }

    /// The column's declared type.
    pub fn column_type(&self) -> ColumnType {
        match self.data {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Float(_) => ColumnType::Float,
        }
    }

    /// Number of rows (including NULLs and rows later tombstoned by the
    /// owning table — columns themselves never shrink).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
        }
    }

    /// True if no rows have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value. The caller (the table) has already type-checked it;
    /// a NULL appends a zero sentinel to the typed vector and sets the
    /// bitmap bit.
    pub fn push(&mut self, v: Value) {
        let len = self.len();
        match (&mut self.data, v) {
            (ColumnData::Int(vec), Value::Int(x)) => {
                vec.push(x);
                self.nulls.push(len, false);
            }
            (ColumnData::Float(vec), Value::Float(x)) => {
                vec.push(x);
                self.nulls.push(len, false);
            }
            (ColumnData::Int(vec), Value::Null) => {
                vec.push(0);
                self.nulls.push(len, true);
            }
            (ColumnData::Float(vec), Value::Null) => {
                vec.push(0.0);
                self.nulls.push(len, true);
            }
            // Cross-type numeric pushes are coerced; the table layer rejects
            // them when strict typing is desired.
            (ColumnData::Int(vec), Value::Float(x)) => {
                vec.push(x as i64);
                self.nulls.push(len, false);
            }
            (ColumnData::Float(vec), Value::Int(x)) => {
                vec.push(x as f64);
                self.nulls.push(len, false);
            }
        }
    }

    /// Read the value at row `idx`. Panics if out of bounds (the table layer
    /// bounds-checks through `RowLoc` resolution).
    #[inline]
    pub fn get(&self, idx: usize) -> Value {
        if self.nulls.is_null(idx) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[idx]),
            ColumnData::Float(v) => Value::Float(v[idx]),
        }
    }

    /// Numeric view of row `idx` (`None` for NULL). This is the hot accessor
    /// used by index construction and validation.
    #[inline]
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        if self.nulls.is_null(idx) {
            return None;
        }
        Some(match &self.data {
            ColumnData::Int(v) => v[idx] as f64,
            ColumnData::Float(v) => v[idx],
        })
    }

    /// Overwrite the value at row `idx` (used by UPDATE).
    pub fn set(&mut self, idx: usize, v: Value) {
        match (&mut self.data, v) {
            (ColumnData::Int(vec), Value::Int(x)) => {
                vec[idx] = x;
                self.nulls.set_null(idx, false);
            }
            (ColumnData::Float(vec), Value::Float(x)) => {
                vec[idx] = x;
                self.nulls.set_null(idx, false);
            }
            (ColumnData::Int(vec), Value::Null) => {
                vec[idx] = 0;
                self.nulls.set_null(idx, true);
            }
            (ColumnData::Float(vec), Value::Null) => {
                vec[idx] = 0.0;
                self.nulls.set_null(idx, true);
            }
            (ColumnData::Int(vec), Value::Float(x)) => {
                vec[idx] = x as i64;
                self.nulls.set_null(idx, false);
            }
            (ColumnData::Float(vec), Value::Int(x)) => {
                vec[idx] = x as f64;
                self.nulls.set_null(idx, false);
            }
        }
    }

    /// Iterate the column as `Option<f64>` values.
    pub fn iter_f64(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        (0..self.len()).map(move |i| self.get_f64(i))
    }

    /// Heap bytes held by this column (data + null bitmap). Used by the
    /// paper's memory-consumption experiments.
    pub fn memory_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int(v) => v.capacity() * 8,
            ColumnData::Float(v) => v.capacity() * 8,
        };
        data + self.nulls.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_float() {
        let mut c = Column::new(ColumnType::Float);
        c.push(Value::Float(1.5));
        c.push(Value::Null);
        c.push(Value::Float(-3.0));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get_f64(1), None);
        assert_eq!(c.get_f64(2), Some(-3.0));
    }

    #[test]
    fn push_get_roundtrip_int() {
        let mut c = Column::new(ColumnType::Int);
        for i in 0..200 {
            c.push(Value::Int(i));
        }
        assert_eq!(c.get(150), Value::Int(150));
        assert_eq!(c.get_f64(199), Some(199.0));
    }

    #[test]
    fn null_bitmap_across_word_boundaries() {
        let mut c = Column::new(ColumnType::Int);
        for i in 0..130 {
            c.push(if i % 7 == 0 { Value::Null } else { Value::Int(i) });
        }
        for i in 0..130 {
            if i % 7 == 0 {
                assert!(c.get(i as usize).is_null(), "row {i} should be NULL");
            } else {
                assert_eq!(c.get(i as usize), Value::Int(i));
            }
        }
    }

    #[test]
    fn set_overwrites_and_clears_null() {
        let mut c = Column::new(ColumnType::Float);
        c.push(Value::Null);
        c.push(Value::Float(2.0));
        c.set(0, Value::Float(9.0));
        c.set(1, Value::Null);
        assert_eq!(c.get(0), Value::Float(9.0));
        assert!(c.get(1).is_null());
    }

    #[test]
    fn cross_type_coercion() {
        let mut c = Column::new(ColumnType::Float);
        c.push(Value::Int(7));
        assert_eq!(c.get(0), Value::Float(7.0));
        let mut d = Column::new(ColumnType::Int);
        d.push(Value::Float(7.9));
        assert_eq!(d.get(0), Value::Int(7));
    }

    #[test]
    fn memory_accounting_grows() {
        let mut c = Column::with_capacity(ColumnType::Float, 16);
        let before = c.memory_bytes();
        for _ in 0..1000 {
            c.push(Value::Float(0.0));
        }
        assert!(c.memory_bytes() > before);
        assert!(c.memory_bytes() >= 1000 * 8);
    }

    #[test]
    fn iter_f64_matches_get() {
        let mut c = Column::new(ColumnType::Int);
        c.push(Value::Int(1));
        c.push(Value::Null);
        c.push(Value::Int(3));
        let collected: Vec<_> = c.iter_f64().collect();
        assert_eq!(collected, vec![Some(1.0), None, Some(3.0)]);
    }
}
