//! Error types shared across the storage substrate.

use std::fmt;

/// Errors produced by storage-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column id was out of range for the table's schema.
    ColumnOutOfRange {
        /// The offending column id.
        column: usize,
        /// Number of columns the schema actually has.
        width: usize,
    },
    /// A row location did not resolve to a live row.
    RowNotFound {
        /// Encoded row location that failed to resolve.
        loc: u64,
    },
    /// A primary key did not resolve to a live row. Distinct from
    /// [`StorageError::RowNotFound`], whose payload is an encoded *row
    /// location*, not a key.
    PkNotFound {
        /// The primary key that failed to resolve.
        pk: i64,
    },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Column the value was destined for.
        column: usize,
        /// Human-readable description of the expected type.
        expected: &'static str,
    },
    /// A NULL was inserted into a non-nullable column.
    UnexpectedNull {
        /// Column that rejected the NULL.
        column: usize,
    },
    /// The row had a different arity than the schema.
    ArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of columns expected.
        expected: usize,
    },
    /// A paged-storage operation referenced a page that does not exist.
    PageNotFound {
        /// The page id that failed to resolve.
        page: u64,
    },
    /// A slotted page had no room for the requested record.
    PageFull,
    /// A record slot was out of range or deleted.
    SlotNotFound {
        /// The slot index that failed to resolve.
        slot: u16,
    },
    /// The primary key is write-locked by an open transaction (first-writer
    /// wins; the loser sees this and may retry after the owner finishes).
    WriteConflict {
        /// The contended primary key.
        pk: i64,
    },
    /// Underlying file I/O failed (paged storage only).
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnOutOfRange { column, width } => {
                write!(f, "column {column} out of range for schema of width {width}")
            }
            StorageError::RowNotFound { loc } => write!(f, "row location {loc:#x} not found"),
            StorageError::PkNotFound { pk } => write!(f, "primary key {pk} not found"),
            StorageError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch on column {column}: expected {expected}")
            }
            StorageError::UnexpectedNull { column } => {
                write!(f, "NULL inserted into non-nullable column {column}")
            }
            StorageError::ArityMismatch { got, expected } => {
                write!(f, "row arity {got} does not match schema width {expected}")
            }
            StorageError::PageNotFound { page } => write!(f, "page {page} not found"),
            StorageError::PageFull => write!(f, "page full"),
            StorageError::SlotNotFound { slot } => write!(f, "slot {slot} not found"),
            StorageError::WriteConflict { pk } => {
                write!(f, "primary key {pk} is write-locked by an open transaction")
            }
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
