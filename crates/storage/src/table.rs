//! In-memory columnar table heap with block+offset row locations.
//!
//! This is the "DBMS-X" substrate: a main-memory table whose rows live in
//! typed column vectors, addressed by [`RowLoc`] (a `block + offset` pair,
//! the paper's physical-pointer format). Deletes are tombstones; updates
//! overwrite in place. Per-column statistics are maintained incrementally.

use crate::batch::RowRef;
use crate::column::Column;
use crate::error::StorageError;
use crate::schema::{ColumnId, ColumnType, Schema};
use crate::stats::ColumnStats;
use crate::value::Value;
use crate::Result;

/// Number of rows per logical block. Row locations are `block * BLOCK + off`;
/// the split mirrors the "blockID+offset" format described in §5.1.
pub const ROWS_PER_BLOCK: u32 = 4096;

/// Physical row location: block id + offset within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowLoc {
    /// Block containing the row.
    pub block: u32,
    /// Offset of the row within its block.
    pub offset: u32,
}

impl RowLoc {
    /// Construct from block and offset.
    #[inline]
    pub fn new(block: u32, offset: u32) -> Self {
        RowLoc { block, offset }
    }

    /// Construct from a dense row index.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        RowLoc {
            block: (idx as u64 / ROWS_PER_BLOCK as u64) as u32,
            offset: (idx as u64 % ROWS_PER_BLOCK as u64) as u32,
        }
    }

    /// Dense row index this location refers to.
    #[inline]
    pub fn index(&self) -> usize {
        self.block as usize * ROWS_PER_BLOCK as usize + self.offset as usize
    }

    /// Pack into a `u64` (for storage inside a [`crate::Tid`]).
    #[inline]
    pub fn encode(&self) -> u64 {
        ((self.block as u64) << 32) | self.offset as u64
    }

    /// Unpack from a `u64`.
    #[inline]
    pub fn decode(v: u64) -> Self {
        RowLoc { block: (v >> 32) as u32, offset: v as u32 }
    }
}

/// An in-memory columnar table.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    stats: Vec<ColumnStats>,
    /// Tombstone bitmap, one bit per row.
    deleted: Vec<u64>,
    live_rows: usize,
    total_rows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.columns().iter().map(|c| Column::new(c.ty)).collect();
        let stats = schema.columns().iter().map(|_| ColumnStats::default()).collect();
        Table { schema, columns, stats, deleted: Vec::new(), live_rows: 0, total_rows: 0 }
    }

    /// Create an empty table with per-column capacity reserved.
    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        let columns = schema.columns().iter().map(|c| Column::with_capacity(c.ty, cap)).collect();
        let stats = schema.columns().iter().map(|_| ColumnStats::default()).collect();
        Table {
            schema,
            columns,
            stats,
            deleted: Vec::with_capacity(cap / 64 + 1),
            live_rows: 0,
            total_rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live (non-deleted) rows.
    pub fn len(&self) -> usize {
        self.live_rows
    }

    /// True if the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// Total rows ever inserted, including tombstoned ones.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Insert a row; returns its physical location.
    ///
    /// Values are type-checked against the schema; NULLs are rejected on
    /// non-nullable columns.
    pub fn insert(&mut self, row: &[Value]) -> Result<RowLoc> {
        if row.len() != self.schema.width() {
            return Err(StorageError::ArityMismatch {
                got: row.len(),
                expected: self.schema.width(),
            });
        }
        for (cid, v) in row.iter().enumerate() {
            let def = self.schema.column(cid)?;
            match (v, def.ty) {
                (Value::Null, _) if !def.nullable => {
                    return Err(StorageError::UnexpectedNull { column: cid })
                }
                (Value::Null, _) => {}
                (Value::Int(_), ColumnType::Int) | (Value::Float(_), ColumnType::Float) => {}
                (_, ty) => {
                    return Err(StorageError::TypeMismatch { column: cid, expected: ty.name() })
                }
            }
        }
        let idx = self.total_rows;
        for (cid, v) in row.iter().enumerate() {
            self.columns[cid].push(*v);
            self.stats[cid].observe(v);
        }
        if idx / 64 >= self.deleted.len() {
            self.deleted.push(0);
        }
        self.total_rows += 1;
        self.live_rows += 1;
        Ok(RowLoc::from_index(idx))
    }

    #[inline]
    fn is_deleted(&self, idx: usize) -> bool {
        (self.deleted[idx / 64] >> (idx % 64)) & 1 == 1
    }

    #[inline]
    fn check_live(&self, loc: RowLoc) -> Result<usize> {
        let idx = loc.index();
        if idx >= self.total_rows || self.is_deleted(idx) {
            return Err(StorageError::RowNotFound { loc: loc.encode() });
        }
        Ok(idx)
    }

    /// Fetch a full row by location.
    pub fn get(&self, loc: RowLoc) -> Result<Vec<Value>> {
        let idx = self.check_live(loc)?;
        Ok(self.columns.iter().map(|c| c.get(idx)).collect())
    }

    /// Fetch one cell by location and column.
    #[inline]
    pub fn value(&self, loc: RowLoc, cid: ColumnId) -> Result<Value> {
        let idx = self.check_live(loc)?;
        self.schema.column(cid)?;
        Ok(self.columns[cid].get(idx))
    }

    /// Numeric view of one cell; the hot accessor for validation. Returns
    /// `Ok(None)` for NULL.
    #[inline]
    pub fn value_f64(&self, loc: RowLoc, cid: ColumnId) -> Result<Option<f64>> {
        let idx = self.check_live(loc)?;
        Ok(self.columns[cid].get_f64(idx))
    }

    /// Visit one row through a [`RowRef`], so several cells can be read
    /// under a single liveness check. `None` for deleted/out-of-range rows.
    #[inline]
    pub fn with_row<T>(&self, loc: RowLoc, f: impl FnOnce(Option<RowRef<'_>>) -> T) -> T {
        match self.check_live(loc) {
            Ok(idx) => f(Some(RowRef::Columnar { table: self, idx })),
            Err(_) => f(None),
        }
    }

    /// Batched counterpart of [`with_row`](Self::with_row): visit every
    /// candidate in `locs`, passing its index and row view to `f`.
    ///
    /// The in-memory heap has no pages to group by, so candidates are
    /// visited in input order; the signature mirrors
    /// [`crate::paged::PagedTable::for_each_row_batch`] so the executor can
    /// drive either substrate through one code path.
    pub fn for_each_row_batch(
        &self,
        locs: &[RowLoc],
        mut f: impl FnMut(usize, Option<RowRef<'_>>),
    ) {
        for (i, &loc) in locs.iter().enumerate() {
            match self.check_live(loc) {
                Ok(idx) => f(i, Some(RowRef::Columnar { table: self, idx })),
                Err(_) => f(i, None),
            }
        }
    }

    /// Stream every live row through a [`RowRef`] visitor, in insertion
    /// order. The visitor returns `false` to stop early (a `LIMIT`ed
    /// sequential scan); the final return value reports whether the scan
    /// ran to completion.
    ///
    /// This is the full-table-scan access path: unlike
    /// [`scan`](Self::scan), no per-row liveness re-check or allocation
    /// happens downstream — the caller reads any cells it needs from the
    /// borrowed row view.
    pub fn for_each_live_row(&self, mut f: impl FnMut(RowLoc, RowRef<'_>) -> bool) -> bool {
        for idx in 0..self.total_rows {
            if self.is_deleted(idx) {
                continue;
            }
            if !f(RowLoc::from_index(idx), RowRef::Columnar { table: self, idx }) {
                return false;
            }
        }
        true
    }

    /// Tombstone a row. Idempotent errors: deleting a dead row is
    /// `RowNotFound`. Per-column live counts are folded out of the stats
    /// (the min/max range stays append-only; see [`ColumnStats`]).
    pub fn delete(&mut self, loc: RowLoc) -> Result<()> {
        self.delete_returning(loc).map(|_| ())
    }

    /// Tombstone a row and return its old values — fetch and delete as one
    /// atomic heap operation, so callers that must maintain indexes from
    /// the deleted row (`delete_by_pk`) never observe a row they then fail
    /// to delete.
    pub fn delete_returning(&mut self, loc: RowLoc) -> Result<Vec<Value>> {
        let idx = self.check_live(loc)?;
        let row: Vec<Value> = self.columns.iter().map(|c| c.get(idx)).collect();
        for (cid, v) in row.iter().enumerate() {
            self.stats[cid].observe_delete(v);
        }
        self.deleted[idx / 64] |= 1 << (idx % 64);
        self.live_rows -= 1;
        Ok(row)
    }

    /// Overwrite one cell of a live row.
    ///
    /// Note: column range statistics are append-only (min/max never
    /// shrink), which matches how real optimizer stats lag behind updates;
    /// live counts swap the old value for the new one.
    pub fn update(&mut self, loc: RowLoc, cid: ColumnId, v: Value) -> Result<()> {
        let idx = self.check_live(loc)?;
        let def = self.schema.column(cid)?;
        if v.is_null() && !def.nullable {
            return Err(StorageError::UnexpectedNull { column: cid });
        }
        self.stats[cid].observe_delete(&self.columns[cid].get(idx));
        self.columns[cid].set(idx, v);
        self.stats[cid].observe(&v);
        Ok(())
    }

    /// Direct access to a column (for scans / index construction).
    pub fn column(&self, cid: ColumnId) -> Result<&Column> {
        self.schema.column(cid)?;
        Ok(&self.columns[cid])
    }

    /// Incrementally-maintained statistics for a column.
    pub fn stats(&self, cid: ColumnId) -> Result<&ColumnStats> {
        self.schema.column(cid)?;
        Ok(&self.stats[cid])
    }

    /// Iterate live rows as `(RowLoc, row index)` pairs.
    pub fn scan(&self) -> impl Iterator<Item = RowLoc> + '_ {
        (0..self.total_rows).filter(move |&i| !self.is_deleted(i)).map(RowLoc::from_index)
    }

    /// Project two numeric columns (plus row locations) over all live rows,
    /// skipping rows where either side is NULL.
    ///
    /// This is the `ProjectTable` step of Algorithm 1: it materializes the
    /// temporary (target, host, tid) table that TRS-Tree construction
    /// consumes.
    pub fn project_pairs(
        &self,
        target: ColumnId,
        host: ColumnId,
    ) -> Result<Vec<(f64, f64, RowLoc)>> {
        self.schema.column(target)?;
        self.schema.column(host)?;
        let t = &self.columns[target];
        let h = &self.columns[host];
        let mut out = Vec::with_capacity(self.live_rows);
        for i in 0..self.total_rows {
            if self.is_deleted(i) {
                continue;
            }
            if let (Some(tv), Some(hv)) = (t.get_f64(i), h.get_f64(i)) {
                out.push((tv, hv, RowLoc::from_index(i)));
            }
        }
        Ok(out)
    }

    /// Project two numeric columns over live rows whose *target* value lies
    /// in `[lb, ub]`. Used by TRS-Tree structure reorganization, which
    /// re-scans only the affected value range.
    pub fn project_pairs_in_range(
        &self,
        target: ColumnId,
        host: ColumnId,
        lb: f64,
        ub: f64,
    ) -> Result<Vec<(f64, f64, RowLoc)>> {
        self.schema.column(target)?;
        self.schema.column(host)?;
        let t = &self.columns[target];
        let h = &self.columns[host];
        let mut out = Vec::new();
        for i in 0..self.total_rows {
            if self.is_deleted(i) {
                continue;
            }
            if let Some(tv) = t.get_f64(i) {
                if tv >= lb && tv <= ub {
                    if let Some(hv) = h.get_f64(i) {
                        out.push((tv, hv, RowLoc::from_index(i)));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Heap bytes held by the table (columns + tombstones). The paper's
    /// memory-breakdown figures report this alongside index sizes.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.memory_bytes()).sum::<usize>() + self.deleted.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("a"), ColumnDef::float_null("b")])
    }

    fn row(pk: i64, a: f64, b: Option<f64>) -> Vec<Value> {
        vec![Value::Int(pk), Value::Float(a), b.map_or(Value::Null, Value::Float)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = Table::new(schema());
        let l0 = t.insert(&row(1, 1.5, Some(2.5))).unwrap();
        let l1 = t.insert(&row(2, -1.0, None)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(l0).unwrap(), row(1, 1.5, Some(2.5)));
        assert_eq!(t.get(l1).unwrap()[2], Value::Null);
    }

    #[test]
    fn rowloc_encoding_roundtrip() {
        for idx in [0usize, 1, 4095, 4096, 4097, 1_000_000] {
            let loc = RowLoc::from_index(idx);
            assert_eq!(loc.index(), idx);
            assert_eq!(RowLoc::decode(loc.encode()), loc);
        }
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = Table::new(schema());
        assert!(matches!(
            t.insert(&[Value::Int(1)]),
            Err(StorageError::ArityMismatch { got: 1, expected: 3 })
        ));
        assert!(matches!(
            t.insert(&[Value::Float(1.0), Value::Float(1.0), Value::Null]),
            Err(StorageError::TypeMismatch { column: 0, .. })
        ));
        assert!(matches!(
            t.insert(&[Value::Int(1), Value::Null, Value::Null]),
            Err(StorageError::UnexpectedNull { column: 1 })
        ));
    }

    #[test]
    fn delete_tombstones_row() {
        let mut t = Table::new(schema());
        let l = t.insert(&row(1, 1.0, None)).unwrap();
        t.delete(l).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get(l).is_err());
        assert!(t.delete(l).is_err());
        // Inserting after delete appends a fresh row.
        let l2 = t.insert(&row(2, 2.0, None)).unwrap();
        assert_ne!(l, l2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_overwrites_cell() {
        let mut t = Table::new(schema());
        let l = t.insert(&row(1, 1.0, Some(5.0))).unwrap();
        t.update(l, 1, Value::Float(9.0)).unwrap();
        assert_eq!(t.value(l, 1).unwrap(), Value::Float(9.0));
        assert!(t.update(l, 1, Value::Null).is_err());
        t.update(l, 2, Value::Null).unwrap();
        assert!(t.value(l, 2).unwrap().is_null());
    }

    #[test]
    fn stats_track_range() {
        let mut t = Table::new(schema());
        t.insert(&row(1, 5.0, Some(1.0))).unwrap();
        t.insert(&row(2, -3.0, None)).unwrap();
        t.insert(&row(3, 8.0, Some(7.0))).unwrap();
        assert_eq!(t.stats(1).unwrap().range(), Some((-3.0, 8.0)));
        assert_eq!(t.stats(2).unwrap().null_count(), 1);
    }

    #[test]
    fn project_pairs_skips_nulls_and_deleted() {
        let mut t = Table::new(schema());
        let _ = t.insert(&row(1, 1.0, Some(10.0))).unwrap();
        let l = t.insert(&row(2, 2.0, None)).unwrap(); // NULL host → skipped
        let l3 = t.insert(&row(3, 3.0, Some(30.0))).unwrap();
        t.delete(l3).unwrap();
        let _ = l;
        let pairs = t.project_pairs(1, 2).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (1.0, 10.0));
    }

    #[test]
    fn project_pairs_in_range_filters_target() {
        let mut t = Table::new(schema());
        for i in 0..10 {
            t.insert(&row(i, i as f64, Some(i as f64 * 2.0))).unwrap();
        }
        let pairs = t.project_pairs_in_range(1, 2, 3.0, 6.0).unwrap();
        let targets: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        assert_eq!(targets, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn scan_yields_live_rows_in_order() {
        let mut t = Table::new(schema());
        let locs: Vec<_> = (0..5).map(|i| t.insert(&row(i, i as f64, None)).unwrap()).collect();
        t.delete(locs[2]).unwrap();
        let scanned: Vec<_> = t.scan().collect();
        assert_eq!(scanned.len(), 4);
        assert!(!scanned.contains(&locs[2]));
    }

    #[test]
    fn for_each_live_row_streams_and_stops() {
        let mut t = Table::new(schema());
        let locs: Vec<_> = (0..6).map(|i| t.insert(&row(i, i as f64, None)).unwrap()).collect();
        t.delete(locs[1]).unwrap();
        let mut seen = Vec::new();
        let complete = t.for_each_live_row(|loc, r| {
            seen.push((loc, r.f64(1).unwrap()));
            true
        });
        assert!(complete);
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().all(|(loc, _)| *loc != locs[1]));
        // Early stop after 2 rows.
        let mut n = 0;
        let complete = t.for_each_live_row(|_, _| {
            n += 1;
            n < 2
        });
        assert!(!complete);
        assert_eq!(n, 2);
    }

    #[test]
    fn memory_bytes_nonzero_after_inserts() {
        let mut t = Table::new(schema());
        for i in 0..100 {
            t.insert(&row(i, i as f64, Some(0.0))).unwrap();
        }
        assert!(t.memory_bytes() >= 100 * 3 * 8);
    }
}
