//! Cell values and totally-ordered floating-point keys.
//!
//! The paper's evaluation tables consist of 8-byte numeric columns (plus
//! NULLs in the wide Stock table), so the value model is deliberately small:
//! 64-bit integers, 64-bit floats, and NULL.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value stored in a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// SQL NULL. Compares less than any non-null value (PostgreSQL's
    /// `NULLS FIRST` convention) so that sorting rows with missing readings
    /// is deterministic.
    Null,
    /// 64-bit signed integer (used for timestamps / day ordinals / keys).
    Int(i64),
    /// 64-bit IEEE-754 float (used for prices, sensor readings, etc.).
    Float(f64),
}

impl Value {
    /// True if the value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, NULL mapping to `None`.
    ///
    /// Integers convert losslessly for |v| < 2^53; the workloads in this
    /// repository stay far below that.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Null => None,
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
        }
    }

    /// Integer view of the value, truncating floats.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Null => None,
            Value::Int(v) => Some(v),
            Value::Float(v) => Some(v as i64),
        }
    }

    /// Total ordering across the value domain: NULL < Int/Float by numeric
    /// value; NaN floats sort greatest (via `f64::total_cmp` semantics for
    /// the float/float case).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (a, b) => {
                // Mixed int/float: compare as f64 (safe for workload ranges).
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.total_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<Option<f64>> for Value {
    fn from(v: Option<f64>) -> Self {
        match v {
            Some(v) => Value::Float(v),
            None => Value::Null,
        }
    }
}

/// An `f64` wrapper with a total order (`f64::total_cmp`), usable as a
/// B+-tree or hash-map key.
///
/// Index keys throughout the repository are `f64` (integer columns convert
/// losslessly in the workload ranges); this wrapper supplies the `Ord` and
/// `Hash` implementations `f64` itself lacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Key(pub f64);

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for F64Key {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalize -0.0 to 0.0 so values that compare equal via == in the
        // workload space hash identically.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl From<f64> for F64Key {
    fn from(v: f64) -> Self {
        F64Key(v)
    }
}

impl fmt::Display for F64Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Float(f64::NEG_INFINITY).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.5)), Ordering::Less);
        assert_eq!(Value::Float(4.0).total_cmp(&Value::Int(4)), Ordering::Equal);
        assert_eq!(Value::Int(5).total_cmp(&Value::Float(4.5)), Ordering::Greater);
    }

    #[test]
    fn as_f64_roundtrip() {
        assert_eq!(Value::Int(42).as_f64(), Some(42.0));
        assert_eq!(Value::Float(1.25).as_f64(), Some(1.25));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn f64key_total_order() {
        let mut keys = [
            F64Key(1.0),
            F64Key(f64::NEG_INFINITY),
            F64Key(-0.5),
            F64Key(f64::INFINITY),
            F64Key(0.0),
        ];
        keys.sort();
        let raw: Vec<f64> = keys.iter().map(|k| k.0).collect();
        assert_eq!(raw, vec![f64::NEG_INFINITY, -0.5, 0.0, 1.0, f64::INFINITY]);
    }

    #[test]
    fn f64key_negative_zero_hashes_like_zero() {
        let h = |k: F64Key| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(F64Key(0.0)), h(F64Key(-0.0)));
        assert_eq!(F64Key(0.0), F64Key(-0.0).clone());
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
    }
}
