//! Batched, page-locality-aware row access shared by both heap substrates.
//!
//! The query executor's validation phase fetches one or two cells from many
//! candidate rows. Doing that one `value_f64` call at a time costs a buffer
//! pool lock + frame lookup *per cell* on the paged substrate; the batch
//! APIs here ([`crate::paged::PagedTable::for_each_row_batch`],
//! [`crate::Table::for_each_row_batch`]) instead visit candidates grouped
//! by page, pinning each page once and handing the caller a borrowed
//! [`RowRef`] from which any number of cells can be read for free.

use crate::schema::ColumnId;
use crate::table::Table;
use crate::value::Value;

/// A borrowed view of one live row, valid only inside a batch/`with_row`
/// visitor callback.
///
/// Both substrates are represented: the in-memory columnar heap hands out
/// `(table, row index)` pairs, the paged heap hands out the row's encoded
/// bytes while its page is pinned.
pub enum RowRef<'a> {
    /// A row of the in-memory columnar [`Table`].
    Columnar {
        /// The table the row lives in.
        table: &'a Table,
        /// Dense row index within the table's columns.
        idx: usize,
    },
    /// A serialized row of a paged heap (9 bytes per cell: tag + payload).
    Encoded {
        /// The row's record bytes, borrowed from the pinned page.
        bytes: &'a [u8],
    },
}

impl RowRef<'_> {
    /// Numeric view of one cell (`None` for NULL or an out-of-range column).
    #[inline]
    pub fn f64(&self, cid: ColumnId) -> Option<f64> {
        match self {
            RowRef::Columnar { table, idx } => table.column(cid).ok().and_then(|c| c.get_f64(*idx)),
            RowRef::Encoded { bytes } => crate::paged::heap::decode_cell_at(bytes, cid).as_f64(),
        }
    }

    /// Full [`Value`] view of one cell (`Value::Null` for an out-of-range
    /// column on the encoded representation).
    #[inline]
    pub fn value(&self, cid: ColumnId) -> Value {
        match self {
            RowRef::Columnar { table, idx } => {
                table.column(cid).map(|c| c.get(*idx)).unwrap_or(Value::Null)
            }
            RowRef::Encoded { bytes } => crate::paged::heap::decode_cell_at(bytes, cid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};

    #[test]
    fn columnar_rowref_reads_cells() {
        let schema = Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("a"),
            ColumnDef::float_null("b"),
        ]);
        let mut t = Table::new(schema);
        t.insert(&[Value::Int(7), Value::Float(2.5), Value::Null]).unwrap();
        let r = RowRef::Columnar { table: &t, idx: 0 };
        assert_eq!(r.f64(0), Some(7.0));
        assert_eq!(r.f64(1), Some(2.5));
        assert_eq!(r.f64(2), None);
        assert_eq!(r.f64(99), None, "out-of-range column reads as NULL");
        assert_eq!(r.value(1), Value::Float(2.5));
    }
}
