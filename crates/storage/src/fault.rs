//! Thread-local fault/crash-point hook for deterministic fault injection.
//!
//! Every durability-relevant I/O site in this crate — page reads/writes,
//! page-store fsync, WAL append/commit/reset, and the atomic-rename file
//! writes behind the catalog and TRS snapshots — calls [`fault_point`] with
//! a stable site name before performing the real I/O. With no hook
//! installed the call is a thread-local lookup and nothing else; test
//! harnesses (the `hermit_fault` crate) install a hook to
//!
//! * **enumerate** the sites a workload passes through (the crash-schedule
//!   explorer snapshots the directory at site *i* to model `kill -9` at
//!   that exact instant), or
//! * **inject** failures: [`FaultAction::Error`] makes the site fail with
//!   an injected I/O error, [`FaultAction::Skip`] makes it *lie* — report
//!   success without performing the I/O (a dropped write, a lying fsync).
//!
//! The hook is **thread-local** on purpose: `cargo test` runs tests of one
//! binary concurrently on sibling threads, and a process-global hook would
//! capture I/O from unrelated tests. A workload driven from the installing
//! thread (the ordinary `Database` API is synchronous) sees every one of
//! its sites; background threads (maintenance worker, server connections)
//! see no hook and behave normally.
//!
//! Reentrancy is safe by construction: if a hook itself triggers
//! instrumented I/O, the inner [`fault_point`] finds the hook cell already
//! borrowed and continues without consulting it.

use std::cell::RefCell;

/// What an instrumented I/O site should do, as decided by the installed
/// hook (or [`Continue`](FaultAction::Continue) when none is installed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Perform the real I/O.
    Continue,
    /// Fail with an injected I/O error (EIO-style).
    Error,
    /// Report success without performing the I/O — a *lying* device: the
    /// dropped write / lying fsync failure mode. Sites where lying is
    /// meaningless (reads, atomic renames) treat this as `Continue`.
    Skip,
}

/// Hook signature: called with the site name on every instrumented I/O.
pub type FaultHook = Box<dyn FnMut(&'static str) -> FaultAction>;

thread_local! {
    static HOOK: RefCell<Option<FaultHook>> = const { RefCell::new(None) };
}

/// Install `hook` for the current thread, replacing any previous one. The
/// returned guard uninstalls it on drop, so a panicking test cannot leak a
/// hook into the next test sharing the thread.
pub fn install_fault_hook(
    hook: impl FnMut(&'static str) -> FaultAction + 'static,
) -> FaultHookGuard {
    HOOK.with(|h| *h.borrow_mut() = Some(Box::new(hook)));
    FaultHookGuard { _priv: () }
}

/// Uninstalls the thread's fault hook when dropped.
pub struct FaultHookGuard {
    _priv: (),
}

impl Drop for FaultHookGuard {
    fn drop(&mut self) {
        HOOK.with(|h| *h.borrow_mut() = None);
    }
}

/// Consult the current thread's hook at an instrumented I/O site. Returns
/// [`FaultAction::Continue`] when no hook is installed (the production
/// fast path) or when called reentrantly from inside a hook.
#[inline]
pub fn fault_point(site: &'static str) -> FaultAction {
    HOOK.with(|h| match h.try_borrow_mut() {
        Ok(mut slot) => match slot.as_mut() {
            Some(hook) => hook(site),
            None => FaultAction::Continue,
        },
        Err(_) => FaultAction::Continue,
    })
}

/// Construct the injected-error message for `site` (shared by the
/// instrumented call sites so tests can match on it).
pub fn injected_error(site: &'static str) -> String {
    format!("injected fault at {site}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hook_continues() {
        assert_eq!(fault_point("x"), FaultAction::Continue);
    }

    #[test]
    fn hook_sees_sites_and_guard_uninstalls() {
        let seen = std::rc::Rc::new(RefCell::new(Vec::new()));
        {
            let seen = std::rc::Rc::clone(&seen);
            let _guard = install_fault_hook(move |site| {
                seen.borrow_mut().push(site);
                if site == "b" {
                    FaultAction::Error
                } else {
                    FaultAction::Continue
                }
            });
            assert_eq!(fault_point("a"), FaultAction::Continue);
            assert_eq!(fault_point("b"), FaultAction::Error);
        }
        // Guard dropped: the hook is gone.
        assert_eq!(fault_point("c"), FaultAction::Continue);
        assert_eq!(*seen.borrow(), vec!["a", "b"]);
    }

    #[test]
    fn reentrant_fault_point_continues() {
        let _guard = install_fault_hook(|_| {
            // A hook that itself hits an instrumented path must not
            // deadlock or panic; the inner call sees Continue.
            assert_eq!(fault_point("inner"), FaultAction::Continue);
            FaultAction::Skip
        });
        assert_eq!(fault_point("outer"), FaultAction::Skip);
    }
}
