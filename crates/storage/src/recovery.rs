//! Checkpoint catalog: the versioned on-disk root of a recoverable database.
//!
//! The paper's disk experiment (§7.8) assumes the base table survives on
//! storage; this module provides the metadata root that makes a paged
//! database actually reopenable. A **catalog** records everything the
//! in-memory side needs to reconstruct itself against the page file:
//!
//! * the table schema, primary-key column, and tuple-identifier scheme;
//! * the page directory (page ids in heap order) with per-page live-row
//!   counts and content CRCs — the integrity check: if a dirty frame never
//!   reached the device before a crash, the reopened page's bytes disagree
//!   with the catalog and recovery reports corruption instead of silently
//!   serving stale data;
//! * the page-allocation watermark (`next_page`), so recovery never hands
//!   out a page id a torn checkpoint may already have written;
//! * the secondary-index definitions (baseline columns with their
//!   "existing" accounting flag; Hermit `target → host` pairs with an
//!   opaque parameter blob the core layer encodes);
//! * the WAL epoch — the fence that pairs a catalog with exactly one WAL
//!   generation (see [`crate::wal`]).
//!
//! Catalogs are written atomically: serialize to a temp sibling, fsync it,
//! rename over the target, fsync the directory. A crash at any point leaves
//! either the old complete catalog or the new complete catalog, never a
//! torn one; a bit-flip is caught by the trailing CRC.
//!
//! Format (little-endian; CRC-32/IEEE over everything after the magic):
//!
//! ```text
//! magic "HMTC" | version u32 |
//! scheme u8 | pk_col u32 | wal_epoch u64 | next_page u64 |
//! ncols u16   | (ty u8, nullable u8, name_len u16, name bytes)* |
//! npages u32  | (page_id u64, live_rows u32, page_crc u32)* |
//! nbase u16   | (column u32, existing u8)* |
//! nhermit u16 | (target u32, host u32, blob_len u16, blob bytes)* |
//! crc32 u32
//! ```

use crate::schema::{ColumnDef, ColumnId, ColumnType, Schema};
use crate::tid::TidScheme;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HMTC";
const VERSION: u32 = 1;

/// Errors produced by catalog and WAL encode/decode.
#[derive(Debug)]
pub enum RecoveryError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// The input is not a catalog / WAL of ours.
    BadMagic,
    /// On-disk version newer than this build understands.
    UnsupportedVersion(u32),
    /// Structurally invalid input (truncation, CRC mismatch, bad tags).
    Corrupt(&'static str),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "i/o error: {e}"),
            RecoveryError::BadMagic => write!(f, "not a recognized recovery file"),
            RecoveryError::UnsupportedVersion(v) => write!(f, "unsupported on-disk version {v}"),
            RecoveryError::Corrupt(what) => write!(f, "corrupt recovery file: {what}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected). Table built once, lazily. Public: the
/// WAL frames, the catalog body, and the catalog's per-page content checks
/// all use it.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Write `bytes` to `path` atomically: temp sibling, fsync, rename, then
/// fsync the parent directory so the rename itself is durable. Used for the
/// catalog and for TRS-Tree snapshot files.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use crate::fault::{fault_point, injected_error, FaultAction};
    // Fault site before the temp write (crash leaves the old file intact,
    // possibly next to a stale `.tmp`)…
    if fault_point("atomic.write") == FaultAction::Error {
        return Err(io::Error::other(injected_error("atomic.write")));
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    // …and before the rename (crash leaves a complete-but-unpublished temp
    // sibling; the commit point is the rename itself).
    if fault_point("atomic.rename") == FaultAction::Error {
        return Err(io::Error::other(injected_error("atomic.rename")));
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or_else(|| Path::new(".")));
    Ok(())
}

/// fsync a directory so a rename inside it survives a crash. Best-effort:
/// not every platform allows opening a directory for sync.
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        // hermit-lint: allow(fault-coverage) best-effort directory sync: the result is ignored by design, so an injected fault would be indistinguishable from the platforms that refuse to fsync directories
        let _ = d.sync_all(); // hermit-lint: allow(error-swallow) ignored by design: some platforms refuse to open directories for fsync, and rename durability is best-effort there
    }
}

/// One heap page's entry in the catalog directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// Page id in the store.
    pub page: u64,
    /// Live (non-tombstoned) rows at checkpoint time.
    pub live_rows: u32,
    /// CRC-32 of the page's full 8 KiB image at checkpoint time. Recovery
    /// verifies it when no post-checkpoint DML exists — any byte the
    /// device dropped shows up as a mismatch.
    pub crc: u32,
}

/// A baseline B+-tree index definition recorded in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineDef {
    /// Indexed column.
    pub column: ColumnId,
    /// Whether the index is charged to "existing indexes" in breakdowns.
    pub existing: bool,
}

/// A Hermit index definition recorded in the catalog. The TRS-Tree itself
/// is checkpointed separately (its snapshot file is named by the catalog's
/// `wal_epoch`); the parameter blob lets the core layer rebuild the tree
/// from a heap scan when the snapshot is missing or torn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HermitDef {
    /// Indexed (target) column.
    pub target: ColumnId,
    /// Host column whose baseline index serves the second hop.
    pub host: ColumnId,
    /// Opaque TRS parameter encoding (owned by the core layer; the catalog
    /// only round-trips it).
    pub params: Vec<u8>,
}

/// The checkpointed metadata root of one database. See the module docs for
/// the on-disk format.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    /// Table schema.
    pub schema: Schema,
    /// Primary-key column.
    pub pk_col: ColumnId,
    /// Tuple-identifier scheme.
    pub scheme: TidScheme,
    /// WAL generation this catalog pairs with: only a WAL whose header
    /// carries the same epoch is replayed on top of this checkpoint.
    pub wal_epoch: u64,
    /// Page-allocation watermark at checkpoint time.
    pub next_page: u64,
    /// Heap pages in directory order, with their live counts and CRCs.
    pub pages: Vec<PageEntry>,
    /// Baseline secondary indexes to rebuild by heap scan.
    pub baselines: Vec<BaselineDef>,
    /// Hermit secondary indexes to restore from snapshots (or rebuild).
    pub hermits: Vec<HermitDef>,
}

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecoveryError> {
        if self.pos + n > self.buf.len() {
            return Err(RecoveryError::Corrupt("truncated catalog"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, RecoveryError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, RecoveryError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, RecoveryError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, RecoveryError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Catalog {
    /// Serialize the catalog (magic + body + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc(Vec::with_capacity(256));
        e.u32(VERSION);
        e.u8(match self.scheme {
            TidScheme::Logical => 0,
            TidScheme::Physical => 1,
        });
        e.u32(self.pk_col as u32);
        e.u64(self.wal_epoch);
        e.u64(self.next_page);
        e.u16(self.schema.width() as u16);
        for col in self.schema.columns() {
            e.u8(match col.ty {
                ColumnType::Int => 0,
                ColumnType::Float => 1,
            });
            e.u8(u8::from(col.nullable));
            e.u16(col.name.len() as u16);
            e.0.extend_from_slice(col.name.as_bytes());
        }
        e.u32(self.pages.len() as u32);
        for entry in &self.pages {
            e.u64(entry.page);
            e.u32(entry.live_rows);
            e.u32(entry.crc);
        }
        e.u16(self.baselines.len() as u16);
        for b in &self.baselines {
            e.u32(b.column as u32);
            e.u8(u8::from(b.existing));
        }
        e.u16(self.hermits.len() as u16);
        for h in &self.hermits {
            e.u32(h.target as u32);
            e.u32(h.host as u32);
            e.u16(h.params.len() as u16);
            e.0.extend_from_slice(&h.params);
        }
        let body = e.0;
        let mut out = Vec::with_capacity(4 + body.len() + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Parse a catalog, verifying magic, CRC, and version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Catalog, RecoveryError> {
        if bytes.len() < 4 + 4 + 4 {
            return Err(RecoveryError::Corrupt("catalog too short"));
        }
        if &bytes[..4] != MAGIC {
            return Err(RecoveryError::BadMagic);
        }
        let body = &bytes[4..bytes.len() - 4];
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crc32(body) != crc {
            return Err(RecoveryError::Corrupt("catalog CRC mismatch"));
        }
        let mut d = Dec { buf: body, pos: 0 };
        let version = d.u32()?;
        if version != VERSION {
            return Err(RecoveryError::UnsupportedVersion(version));
        }
        let scheme = match d.u8()? {
            0 => TidScheme::Logical,
            1 => TidScheme::Physical,
            _ => return Err(RecoveryError::Corrupt("bad tid scheme")),
        };
        let pk_col = d.u32()? as ColumnId;
        let wal_epoch = d.u64()?;
        let next_page = d.u64()?;
        let ncols = d.u16()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let ty = match d.u8()? {
                0 => ColumnType::Int,
                1 => ColumnType::Float,
                _ => return Err(RecoveryError::Corrupt("bad column type")),
            };
            let nullable = d.u8()? != 0;
            let name_len = d.u16()? as usize;
            let name = std::str::from_utf8(d.take(name_len)?)
                .map_err(|_| RecoveryError::Corrupt("column name not utf-8"))?
                .to_string();
            columns.push(ColumnDef { name, ty, nullable });
        }
        let schema = Schema::new(columns);
        if pk_col >= schema.width() {
            return Err(RecoveryError::Corrupt("pk column out of range"));
        }
        let npages = d.u32()? as usize;
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let page = d.u64()?;
            if page >= next_page {
                return Err(RecoveryError::Corrupt("page id past the watermark"));
            }
            pages.push(PageEntry { page, live_rows: d.u32()?, crc: d.u32()? });
        }
        let nbase = d.u16()? as usize;
        let mut baselines = Vec::with_capacity(nbase);
        for _ in 0..nbase {
            let column = d.u32()? as ColumnId;
            if column >= schema.width() {
                return Err(RecoveryError::Corrupt("baseline column out of range"));
            }
            baselines.push(BaselineDef { column, existing: d.u8()? != 0 });
        }
        let nhermit = d.u16()? as usize;
        let mut hermits = Vec::with_capacity(nhermit);
        for _ in 0..nhermit {
            let target = d.u32()? as ColumnId;
            let host = d.u32()? as ColumnId;
            if target >= schema.width() || host >= schema.width() {
                return Err(RecoveryError::Corrupt("hermit column out of range"));
            }
            let blob_len = d.u16()? as usize;
            hermits.push(HermitDef { target, host, params: d.take(blob_len)?.to_vec() });
        }
        if d.pos != body.len() {
            return Err(RecoveryError::Corrupt("trailing bytes after catalog body"));
        }
        Ok(Catalog { schema, pk_col, scheme, wal_epoch, next_page, pages, baselines, hermits })
    }

    /// Write the catalog to `path` atomically (temp + fsync + rename +
    /// directory fsync).
    pub fn write_atomic(&self, path: &Path) -> Result<(), RecoveryError> {
        write_file_atomic(path, &self.to_bytes())?;
        Ok(())
    }

    /// Read and validate a catalog file.
    pub fn read(path: &Path) -> Result<Catalog, RecoveryError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        Catalog {
            schema: Schema::new(vec![
                ColumnDef::int("pk"),
                ColumnDef::float("host"),
                ColumnDef::float_null("target"),
            ]),
            pk_col: 0,
            scheme: TidScheme::Physical,
            wal_epoch: 7,
            next_page: 12,
            pages: vec![
                PageEntry { page: 0, live_rows: 290, crc: 0xDEAD_BEEF },
                PageEntry { page: 1, live_rows: 290, crc: 0x1234_5678 },
                PageEntry { page: 2, live_rows: 17, crc: 0 },
            ],
            baselines: vec![BaselineDef { column: 1, existing: true }],
            hermits: vec![HermitDef { target: 2, host: 1, params: vec![1, 2, 3, 4] }],
        }
    }

    #[test]
    fn catalog_roundtrip() {
        let c = sample();
        let back = Catalog::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn catalog_file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("hermit-catalog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.bin");
        let c = sample();
        c.write_atomic(&path).unwrap();
        // A leftover torn temp sibling (crash mid-write of a *later*
        // checkpoint) must not affect reads of the committed catalog.
        std::fs::write(path.with_extension("tmp"), b"garbage").unwrap();
        assert_eq!(Catalog::read(&path).unwrap(), c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_catalogs_rejected() {
        let c = sample();
        let bytes = c.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(Catalog::from_bytes(&bad), Err(RecoveryError::BadMagic)));
        // Any single-byte corruption trips the CRC.
        for i in [5, 20, bytes.len() / 2, bytes.len() - 6] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(Catalog::from_bytes(&bad), Err(RecoveryError::Corrupt(_))),
                "flip at {i} must be caught"
            );
        }
        // Truncation at every prefix length fails cleanly.
        for len in 0..bytes.len() {
            assert!(Catalog::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
