//! Disk-based storage substrate (the "PostgreSQL" analog).
//!
//! §7.8 of the paper integrates Hermit into PostgreSQL and shows that when
//! tuples live on secondary storage, (a) TRS-Tree lookup time is negligible
//! next to host-index and heap accesses, and (b) false-positive validation
//! takes a visible share of query time. Reproducing that regime requires a
//! storage engine where fetching a tuple costs a page access through a
//! buffer pool rather than a pointer dereference.
//!
//! This module provides exactly that substrate:
//!
//! * [`page::Page`] — an 8 KiB fixed-size page holding fixed-width records.
//! * [`io::PageStore`] — the backing store abstraction, with a real
//!   file-backed implementation ([`io::FilePageStore`]) and an in-memory one
//!   with a simulated per-miss latency ([`io::SimulatedPageStore`]) so the
//!   disk experiment is reproducible on any machine.
//! * [`buffer_pool::BufferPool`] — a clock-replacement buffer pool with hit
//!   and miss accounting.
//! * [`heap::PagedTable`] — a slotted table heap storing fixed-width numeric
//!   rows across pages.

pub mod buffer_pool;
pub mod heap;
pub mod io;
pub mod page;

pub use buffer_pool::{BufferPool, PoolStats};
pub use heap::PagedTable;
pub use io::{FilePageStore, IoStats, PageStore, SimulatedPageStore};
pub use page::{Page, PageId, PAGE_SIZE};
