//! A paged table heap of fixed-width numeric rows.
//!
//! Rows are the same `Value` rows as the in-memory [`crate::Table`], but
//! serialized into 8 KiB pages behind a buffer pool. Row locations reuse
//! [`RowLoc`]: `block` is the page id, `offset` is the slot.
//!
//! Serialization: each cell is 9 bytes — a tag byte (0 = NULL, 1 = Int,
//! 2 = Float) followed by 8 payload bytes little-endian.

use super::buffer_pool::BufferPool;
use super::page::PageId;
use crate::batch::RowRef;
use crate::error::StorageError;
use crate::schema::{ColumnId, Schema};
use crate::stats::ColumnStats;
use crate::table::RowLoc;
use crate::value::Value;
use crate::Result;
use parking_lot::Mutex;
use std::sync::Arc;

const CELL_BYTES: usize = 9;

fn encode_row(schema: &Schema, row: &[Value], buf: &mut Vec<u8>) -> Result<()> {
    if row.len() != schema.width() {
        return Err(StorageError::ArityMismatch { got: row.len(), expected: schema.width() });
    }
    buf.clear();
    for (cid, v) in row.iter().enumerate() {
        let def = schema.column(cid)?;
        match v {
            Value::Null => {
                if !def.nullable {
                    return Err(StorageError::UnexpectedNull { column: cid });
                }
                buf.push(0);
                buf.extend_from_slice(&[0u8; 8]);
            }
            Value::Int(x) => {
                buf.push(1);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            Value::Float(x) => {
                buf.push(2);
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    Ok(())
}

fn decode_cell(bytes: &[u8]) -> Value {
    let payload: [u8; 8] = bytes[1..9].try_into().expect("cell is 9 bytes");
    match bytes[0] {
        0 => Value::Null,
        1 => Value::Int(i64::from_le_bytes(payload)),
        _ => Value::Float(f64::from_le_bytes(payload)),
    }
}

fn decode_row(bytes: &[u8], width: usize) -> Vec<Value> {
    (0..width).map(|c| decode_cell(&bytes[c * CELL_BYTES..])).collect()
}

/// Decode one cell of an encoded row, treating out-of-range columns as NULL
/// (used by [`crate::batch::RowRef`]).
#[inline]
pub(crate) fn decode_cell_at(bytes: &[u8], cid: usize) -> Value {
    let start = cid * CELL_BYTES;
    if start + CELL_BYTES > bytes.len() {
        return Value::Null;
    }
    decode_cell(&bytes[start..])
}

/// A table heap stored in pages behind a buffer pool.
pub struct PagedTable {
    schema: Schema,
    pool: Arc<BufferPool>,
    pages: Mutex<Vec<PageId>>,
    stats: Mutex<Vec<ColumnStats>>,
    live_rows: Mutex<usize>,
    record_width: u16,
}

impl PagedTable {
    /// Create an empty paged table over `pool`.
    pub fn new(schema: Schema, pool: Arc<BufferPool>) -> Self {
        let record_width = (schema.width() * CELL_BYTES) as u16;
        let stats = schema.columns().iter().map(|_| ColumnStats::default()).collect();
        PagedTable {
            schema,
            pool,
            pages: Mutex::new(Vec::new()),
            stats: Mutex::new(stats),
            live_rows: Mutex::new(0),
            record_width,
        }
    }

    /// Reattach to a heap whose pages already exist in `pool`'s store: the
    /// recovery path. `pages` is the checkpointed page directory in heap
    /// order; the live row count and per-column [`ColumnStats`] are
    /// recomputed by scanning every page once (the catalog does not persist
    /// stats — recomputing them is cheap and cannot disagree with the data).
    ///
    /// Returns the table plus each page's `(live rows, content CRC)` as
    /// observed by the same scan, so recovery's torn-checkpoint
    /// cross-check against the catalog does not have to re-read the heap.
    pub fn reopen(
        schema: Schema,
        pool: Arc<BufferPool>,
        page_ids: Vec<PageId>,
    ) -> Result<(Self, Vec<(u32, u32)>)> {
        let record_width = (schema.width() * CELL_BYTES) as u16;
        let mut stats: Vec<ColumnStats> =
            schema.columns().iter().map(|_| ColumnStats::default()).collect();
        let mut observed = Vec::with_capacity(page_ids.len());
        for &pid in &page_ids {
            let entry = pool.read(pid, |page| {
                if page.record_width() != record_width {
                    return Err(StorageError::Io(format!(
                        "page {pid} holds {}-byte records, schema needs {record_width}",
                        page.record_width()
                    )));
                }
                let mut count = 0u32;
                for (_, bytes) in page.iter() {
                    for (cid, stat) in stats.iter_mut().enumerate() {
                        stat.observe(&decode_cell(&bytes[cid * CELL_BYTES..]));
                    }
                    count += 1;
                }
                Ok((count, crate::recovery::crc32(page.as_bytes())))
            })??;
            observed.push(entry);
        }
        let live = observed.iter().map(|&(c, _)| c as usize).sum();
        let table = PagedTable {
            schema,
            pool,
            pages: Mutex::new(page_ids),
            stats: Mutex::new(stats),
            live_rows: Mutex::new(live),
            record_width,
        };
        Ok((table, observed))
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The buffer pool the table reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        *self.live_rows.lock()
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of heap pages allocated.
    pub fn page_count(&self) -> usize {
        self.pages.lock().len()
    }

    /// The page directory (heap pages in allocation order) — what a
    /// checkpoint catalog persists.
    pub fn pages(&self) -> Vec<PageId> {
        self.pages.lock().clone()
    }

    /// Live rows per page, aligned with [`pages`](Self::pages).
    pub fn page_live_counts(&self) -> Result<Vec<u32>> {
        let pages = self.pages.lock().clone();
        let mut counts = Vec::with_capacity(pages.len());
        for pid in pages {
            counts.push(self.pool.read(pid, |page| page.iter().count() as u32)?);
        }
        Ok(counts)
    }

    /// `(live rows, content CRC)` per page, aligned with
    /// [`pages`](Self::pages). Checkpoints record these next to the
    /// directory so recovery can detect a page write that never reached
    /// the device — the CRC catches content changes the live count alone
    /// would miss (a delete plus an insert on the same page). One pass
    /// over the heap; the scan is load-bearing (the CRC cannot be
    /// maintained incrementally), which is why checkpoints pay it.
    pub fn page_checkpoint_entries(&self) -> Result<Vec<(u32, u32)>> {
        let pages = self.pages.lock().clone();
        let mut entries = Vec::with_capacity(pages.len());
        for pid in pages {
            entries.push(self.pool.read(pid, |page| {
                (page.iter().count() as u32, crate::recovery::crc32(page.as_bytes()))
            })?);
        }
        Ok(entries)
    }

    /// Insert a row, appending a page when the last one fills.
    ///
    /// The page-directory lock is held across the slot write — including
    /// the write into a freshly allocated page. Releasing it before that
    /// write (as this method once did) let concurrent writers fill the new
    /// page first and the "empty" insert fail with `PageFull`.
    pub fn insert(&self, row: &[Value]) -> Result<RowLoc> {
        let mut encoded = Vec::with_capacity(self.record_width as usize);
        encode_row(&self.schema, row, &mut encoded)?;
        let mut pages = self.pages.lock();
        // Try the last page first.
        if let Some(&last) = pages.last() {
            let slot = self.pool.write(last, |page| page.insert(&encoded))?;
            if let Ok(slot) = slot {
                return self.finish_insert(row, last, slot);
            }
        }
        let new_page = self.pool.allocate(self.record_width)?;
        pages.push(new_page);
        let slot = self.pool.write(new_page, |page| page.insert(&encoded))??;
        self.finish_insert(row, new_page, slot)
    }

    fn finish_insert(&self, row: &[Value], page: PageId, slot: u16) -> Result<RowLoc> {
        let mut stats = self.stats.lock();
        for (cid, v) in row.iter().enumerate() {
            stats[cid].observe(v);
        }
        *self.live_rows.lock() += 1;
        Ok(RowLoc::new(page as u32, slot as u32))
    }

    /// Fetch a full row; costs a buffer-pool access.
    pub fn get(&self, loc: RowLoc) -> Result<Vec<Value>> {
        let width = self.schema.width();
        self.pool.read(loc.block as PageId, |page| {
            page.get(loc.offset as u16).map(|b| decode_row(b, width))
        })?
    }

    /// Fetch one cell; still costs a full page access, as in a real heap.
    pub fn value(&self, loc: RowLoc, cid: ColumnId) -> Result<Value> {
        self.schema.column(cid)?;
        self.pool.read(loc.block as PageId, |page| {
            page.get(loc.offset as u16).map(|b| decode_cell(&b[cid * CELL_BYTES..]))
        })?
    }

    /// Numeric view of one cell (`Ok(None)` for NULL).
    pub fn value_f64(&self, loc: RowLoc, cid: ColumnId) -> Result<Option<f64>> {
        Ok(self.value(loc, cid)?.as_f64())
    }

    /// Visit one row under a single page access. The callback receives
    /// `None` if the row is deleted or its page unreadable; otherwise a
    /// [`RowRef`] from which any number of cells can be decoded without
    /// further pool traffic.
    pub fn with_row<T>(&self, loc: RowLoc, f: impl FnOnce(Option<RowRef<'_>>) -> T) -> T {
        let mut f = Some(f);
        let result = self.pool.read(loc.block as PageId, |page| {
            let f = f.take().expect("pool read callback runs at most once");
            f(page.get(loc.offset as u16).ok().map(|bytes| RowRef::Encoded { bytes }))
        });
        match result {
            Ok(t) => t,
            // The page itself was unreadable; the row is as good as gone.
            Err(_) => (f.take().expect("callback not yet consumed"))(None),
        }
    }

    /// Visit a set of candidate rows grouped by page: candidates are sorted
    /// by `(page, slot)` through the reusable `order` scratch buffer, each
    /// page is pinned once, and all of its candidates are visited under that
    /// single pool access. `f` receives the candidate's index into `locs`
    /// plus its row view (`None` when deleted/unreadable).
    ///
    /// Visitation order is page order, not `locs` order — callers that care
    /// about the original position use the index argument.
    ///
    /// `f` runs while the row's page is pinned (its pool shard locked), so
    /// it must not re-enter the buffer pool; read everything needed through
    /// the provided [`RowRef`].
    pub fn for_each_row_batch(
        &self,
        locs: &[RowLoc],
        order: &mut Vec<u32>,
        mut f: impl FnMut(usize, Option<RowRef<'_>>),
    ) {
        order.clear();
        order.extend(0..locs.len() as u32);
        order.sort_unstable_by_key(|&i| {
            let loc = locs[i as usize];
            (loc.block, loc.offset)
        });
        let mut start = 0usize;
        while start < order.len() {
            let pid = locs[order[start] as usize].block as PageId;
            let mut end = start + 1;
            while end < order.len() && locs[order[end] as usize].block as PageId == pid {
                end += 1;
            }
            let run = &order[start..end];
            let visited = self.pool.read(pid, |page| {
                for &i in run {
                    let loc = locs[i as usize];
                    let row =
                        page.get(loc.offset as u16).ok().map(|bytes| RowRef::Encoded { bytes });
                    f(i as usize, row);
                }
            });
            if visited.is_err() {
                for &i in run {
                    f(i as usize, None);
                }
            }
            start = end;
        }
    }

    /// Tombstone a row. The old row is decoded under the same page access
    /// so per-column live counts can be folded out of the stats.
    pub fn delete(&self, loc: RowLoc) -> Result<()> {
        self.delete_returning(loc).map(|_| ())
    }

    /// Tombstone a row and return its old values — fetch and delete under
    /// *one* page access, so callers that must maintain indexes from the
    /// deleted row (`delete_by_pk`) pay a single pool access and never
    /// observe a row they then fail to delete.
    pub fn delete_returning(&self, loc: RowLoc) -> Result<Vec<Value>> {
        let width = self.schema.width();
        let row = self.pool.write(loc.block as PageId, |page| {
            let old = page.get(loc.offset as u16).map(|b| decode_row(b, width))?;
            page.delete(loc.offset as u16).map(|()| old)
        })??;
        {
            let mut stats = self.stats.lock();
            for (cid, v) in row.iter().enumerate() {
                stats[cid].observe_delete(v);
            }
        }
        *self.live_rows.lock() -= 1;
        Ok(row)
    }

    /// Scan all live rows, yielding `(RowLoc, row)`.
    pub fn scan(&self) -> Result<Vec<(RowLoc, Vec<Value>)>> {
        let pages = self.pages.lock().clone();
        let width = self.schema.width();
        let mut out = Vec::new();
        for pid in pages {
            self.pool.read(pid, |page| {
                for (slot, bytes) in page.iter() {
                    out.push((RowLoc::new(pid as u32, slot as u32), decode_row(bytes, width)));
                }
            })?;
        }
        Ok(out)
    }

    /// Stream every live row through a [`RowRef`] visitor, page by page in
    /// allocation order: each heap page is pinned once and all of its live
    /// rows are visited under that single pool access. The visitor returns
    /// `false` to stop early (a `LIMIT`ed sequential scan); the final
    /// return value reports whether the scan ran to completion.
    ///
    /// Unreadable pages are skipped — their rows are as good as gone, the
    /// same stance [`with_row`](Self::with_row) takes. `f` runs while the
    /// page is pinned, so it must not re-enter the buffer pool.
    pub fn for_each_live_row(&self, mut f: impl FnMut(RowLoc, RowRef<'_>) -> bool) -> bool {
        let pages = self.pages.lock().clone();
        for pid in pages {
            let mut keep_going = true;
            let _ = self.pool.read(pid, |page| {
                for (slot, bytes) in page.iter() {
                    if !f(RowLoc::new(pid as u32, slot as u32), RowRef::Encoded { bytes }) {
                        keep_going = false;
                        break;
                    }
                }
            });
            if !keep_going {
                return false;
            }
        }
        true
    }

    /// Project two numeric columns over all live rows (Algorithm 1's
    /// temporary table), skipping NULLs.
    pub fn project_pairs(
        &self,
        target: ColumnId,
        host: ColumnId,
    ) -> Result<Vec<(f64, f64, RowLoc)>> {
        self.schema.column(target)?;
        self.schema.column(host)?;
        let pages = self.pages.lock().clone();
        let mut out = Vec::new();
        for pid in pages {
            self.pool.read(pid, |page| {
                for (slot, bytes) in page.iter() {
                    let t = decode_cell(&bytes[target * CELL_BYTES..]).as_f64();
                    let h = decode_cell(&bytes[host * CELL_BYTES..]).as_f64();
                    if let (Some(t), Some(h)) = (t, h) {
                        out.push((t, h, RowLoc::new(pid as u32, slot as u32)));
                    }
                }
            })?;
        }
        Ok(out)
    }

    /// Column statistics (same contract as [`crate::Table::stats`]).
    pub fn stats(&self, cid: ColumnId) -> Result<ColumnStats> {
        self.schema.column(cid)?;
        Ok(self.stats.lock()[cid].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::io::SimulatedPageStore;
    use crate::schema::ColumnDef;

    fn make_table(pool_pages: usize) -> PagedTable {
        let schema = Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("a"),
            ColumnDef::float_null("b"),
        ]);
        let pool = Arc::new(BufferPool::new(Arc::new(SimulatedPageStore::new()), pool_pages));
        PagedTable::new(schema, pool)
    }

    fn row(pk: i64, a: f64, b: Option<f64>) -> Vec<Value> {
        vec![Value::Int(pk), Value::Float(a), b.map_or(Value::Null, Value::Float)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = make_table(8);
        let l = t.insert(&row(1, 2.5, None)).unwrap();
        assert_eq!(t.get(l).unwrap(), row(1, 2.5, None));
        assert_eq!(t.value(l, 1).unwrap(), Value::Float(2.5));
        assert_eq!(t.value_f64(l, 2).unwrap(), None);
    }

    #[test]
    fn spills_across_pages() {
        let t = make_table(4);
        let n = 2000usize; // 27-byte records, ~300 per page → several pages
        let locs: Vec<RowLoc> = (0..n)
            .map(|i| t.insert(&row(i as i64, i as f64, Some(i as f64 * 2.0))).unwrap())
            .collect();
        assert!(t.page_count() > 3, "expected multiple pages, got {}", t.page_count());
        // Random-ish probes across pages (forces pool churn with 4 frames).
        for i in (0..n).step_by(97) {
            assert_eq!(t.get(locs[i]).unwrap()[0], Value::Int(i as i64));
        }
        assert!(t.pool().stats().misses() > 0, "pool should have missed");
    }

    #[test]
    fn delete_and_scan() {
        let t = make_table(8);
        let l0 = t.insert(&row(1, 1.0, None)).unwrap();
        let _l1 = t.insert(&row(2, 2.0, None)).unwrap();
        t.delete(l0).unwrap();
        assert_eq!(t.len(), 1);
        let scan = t.scan().unwrap();
        assert_eq!(scan.len(), 1);
        assert_eq!(scan[0].1[0], Value::Int(2));
        assert!(t.get(l0).is_err());
    }

    #[test]
    fn project_pairs_skips_nulls() {
        let t = make_table(8);
        t.insert(&row(1, 1.0, Some(10.0))).unwrap();
        t.insert(&row(2, 2.0, None)).unwrap();
        t.insert(&row(3, 3.0, Some(30.0))).unwrap();
        let pairs = t.project_pairs(1, 2).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1].1, 30.0);
    }

    #[test]
    fn stats_maintained() {
        let t = make_table(8);
        t.insert(&row(1, 5.0, Some(-2.0))).unwrap();
        t.insert(&row(2, -5.0, None)).unwrap();
        assert_eq!(t.stats(1).unwrap().range(), Some((-5.0, 5.0)));
        assert_eq!(t.stats(2).unwrap().null_count(), 1);
    }

    #[test]
    fn rejects_bad_rows() {
        let t = make_table(8);
        assert!(t.insert(&[Value::Int(1)]).is_err());
        assert!(t.insert(&[Value::Null, Value::Float(1.0), Value::Null]).is_err());
    }

    #[test]
    fn with_row_reads_both_columns_in_one_visit() {
        let t = make_table(8);
        let loc = t.insert(&row(3, 1.5, Some(9.0))).unwrap();
        t.pool().stats().reset();
        let (a, b) = t.with_row(loc, |r| {
            let r = r.expect("row is live");
            (r.f64(1), r.f64(2))
        });
        assert_eq!((a, b), (Some(1.5), Some(9.0)));
        assert_eq!(t.pool().stats().hits() + t.pool().stats().misses(), 1, "one page access");
        // Deleted rows come back as None.
        t.delete(loc).unwrap();
        assert!(t.with_row(loc, |r| r.is_none()));
    }

    #[test]
    fn batch_visits_each_page_once() {
        let t = make_table(64);
        let n = 2000usize;
        let locs: Vec<RowLoc> = (0..n)
            .map(|i| t.insert(&row(i as i64, i as f64, Some(i as f64 * 2.0))).unwrap())
            .collect();
        let pages = t.page_count();
        assert!(pages > 3);
        // Candidates shuffled across pages: every 7th row, in reverse.
        let cand: Vec<RowLoc> = (0..n).step_by(7).rev().map(|i| locs[i]).collect();
        t.pool().stats().reset();
        let mut got: Vec<Option<Option<f64>>> = vec![None; cand.len()];
        let mut order = Vec::new();
        t.for_each_row_batch(&cand, &mut order, |i, r| {
            got[i] = Some(r.expect("all rows live").f64(1));
        });
        let accesses = t.pool().stats().hits() + t.pool().stats().misses();
        assert!(
            accesses <= pages as u64,
            "page-grouped batch should pin each page at most once: {accesses} accesses for {pages} pages"
        );
        for (i, &loc) in cand.iter().enumerate() {
            assert_eq!(got[i], Some(t.value_f64(loc, 1).unwrap()), "candidate {i} mismatch");
        }
    }

    #[test]
    fn for_each_live_row_streams_in_page_order_and_stops() {
        let t = make_table(64);
        let n = 1500usize;
        let locs: Vec<RowLoc> =
            (0..n).map(|i| t.insert(&row(i as i64, i as f64, None)).unwrap()).collect();
        t.delete(locs[7]).unwrap();
        t.pool().stats().reset();
        let mut seen = Vec::new();
        let complete = t.for_each_live_row(|_, r| {
            seen.push(r.f64(0).unwrap() as i64);
            true
        });
        assert!(complete);
        assert_eq!(seen.len(), n - 1);
        assert!(!seen.contains(&7));
        let accesses = t.pool().stats().hits() + t.pool().stats().misses();
        assert_eq!(accesses, t.page_count() as u64, "one pool access per page");
        // Early stop terminates without visiting the rest.
        let mut count = 0;
        let complete = t.for_each_live_row(|_, _| {
            count += 1;
            count < 10
        });
        assert!(!complete);
        assert_eq!(count, 10);
    }

    #[test]
    fn reopen_recomputes_rows_and_stats() {
        let schema = Schema::new(vec![
            ColumnDef::int("pk"),
            ColumnDef::float("a"),
            ColumnDef::float_null("b"),
        ]);
        let store = Arc::new(SimulatedPageStore::new());
        let pool = Arc::new(BufferPool::new(Arc::clone(&store) as Arc<_>, 8));
        let t = PagedTable::new(schema.clone(), Arc::clone(&pool));
        let n = 900usize;
        let locs: Vec<RowLoc> = (0..n)
            .map(|i| t.insert(&row(i as i64, i as f64, (i % 3 == 0).then_some(i as f64))).unwrap())
            .collect();
        t.delete(locs[5]).unwrap();
        t.delete(locs[700]).unwrap();
        let pages = t.pages();
        let live = t.page_live_counts().unwrap();
        assert_eq!(live.iter().sum::<u32>() as usize, n - 2);
        pool.flush().unwrap();

        // Fresh pool over the same store: the recovered table must agree on
        // rows, stats, and per-page counts + CRCs.
        let checkpoint_entries = t.page_checkpoint_entries().unwrap();
        let pool2 = Arc::new(BufferPool::new(store, 8));
        let (r, observed) = PagedTable::reopen(schema, pool2, pages.clone()).unwrap();
        assert_eq!(r.len(), n - 2);
        assert_eq!(
            observed, checkpoint_entries,
            "reopen's (count, crc) scan must match the flushed table's"
        );
        assert_eq!(
            observed.iter().map(|&(c, _)| c).collect::<Vec<_>>(),
            live,
            "reopen's live counts must match"
        );
        assert_eq!(r.get(locs[10]).unwrap(), t.get(locs[10]).unwrap());
        assert!(r.get(locs[5]).is_err(), "tombstone must survive reopen");
        let (sa, sb) = (t.stats(1).unwrap(), r.stats(1).unwrap());
        assert_eq!(sa.range(), sb.range());
        assert_eq!(sa.non_null_count(), sb.non_null_count());
        assert_eq!(t.stats(2).unwrap().null_count(), r.stats(2).unwrap().null_count());
        // Inserts continue where the directory left off.
        r.insert(&row(5_000, 1.0, None)).unwrap();
        assert_eq!(r.len(), n - 1);
        // A schema/page width mismatch is a typed error, not garbage rows.
        let bad = Schema::new(vec![ColumnDef::int("pk")]);
        let store2 = Arc::new(SimulatedPageStore::new());
        let pool3 = Arc::new(BufferPool::new(Arc::clone(&store2) as Arc<_>, 8));
        let seed = PagedTable::new(
            Schema::new(vec![ColumnDef::int("pk"), ColumnDef::float("a")]),
            Arc::clone(&pool3),
        );
        seed.insert(&[Value::Int(1), Value::Float(2.0)]).unwrap();
        pool3.flush().unwrap();
        let pool4 = Arc::new(BufferPool::new(store2, 8));
        assert!(matches!(PagedTable::reopen(bad, pool4, seed.pages()), Err(StorageError::Io(_))));
    }

    #[test]
    fn concurrent_inserts_never_lose_page_slots() {
        // Regression: the slow path used to release the page-directory lock
        // before writing into a freshly allocated page, so racing writers
        // could fill it first and the insert failed with PageFull.
        let t = std::sync::Arc::new(make_table(64));
        let threads = 8;
        let per_thread = 500usize; // ~300 rows/page -> many page rollovers
        std::thread::scope(|s| {
            for w in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let pk = (w * per_thread + i) as i64;
                        t.insert(&row(pk, pk as f64, None)).expect("no PageFull under races");
                    }
                });
            }
        });
        assert_eq!(t.len(), threads * per_thread);
        assert_eq!(t.scan().unwrap().len(), threads * per_thread);
    }

    #[test]
    fn batch_reports_deleted_rows_as_none() {
        let t = make_table(8);
        let locs: Vec<RowLoc> =
            (0..10).map(|i| t.insert(&row(i, i as f64, None)).unwrap()).collect();
        t.delete(locs[4]).unwrap();
        let mut order = Vec::new();
        let mut missing = Vec::new();
        t.for_each_row_batch(&locs, &mut order, |i, r| {
            if r.is_none() {
                missing.push(i);
            }
        });
        assert_eq!(missing, vec![4]);
    }
}
