//! A sharded clock-replacement buffer pool over a [`PageStore`].
//!
//! The disk experiment (§7.8) reconfigures PostgreSQL's buffer pool so the
//! B+-tree fits in memory while heap fetches still pay for page access; our
//! pool exposes the same knob (capacity in pages) plus hit/miss counters so
//! the benchmark harness can report the breakdown.
//!
//! The pool is split into independent *shards* — inner pools keyed by
//! `page_id % shards`, each behind its own mutex with its own clock hand —
//! so concurrent readers touching different pages do not serialize on a
//! single lock. [`BufferPool::new`] builds a single-shard pool (fully
//! deterministic replacement, the right default for the small pools the
//! experiments configure); [`BufferPool::new_sharded`] spreads the capacity
//! across N shards for parallel execution paths.

use super::io::PageStore;
use super::page::{Page, PageId};
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hit/miss/eviction counters for a buffer pool.
///
/// The counters are shared by all shards (they are lock-free atomics), so
/// [`BufferPool::stats`] always reports pool-wide aggregates no matter how
/// the capacity is sharded.
#[derive(Debug, Default)]
pub struct PoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PoolStats {
    /// Lookups served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to read from the store.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Pages evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

struct Frame {
    page_id: PageId,
    page: Page,
    referenced: bool,
    dirty: bool,
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    /// page id → frame index
    map: HashMap<PageId, usize>,
    /// Unoccupied frame indices; popping one is O(1), replacing the linear
    /// scan a fill used to pay per install.
    free: Vec<usize>,
    clock_hand: usize,
}

impl PoolInner {
    fn with_capacity(capacity: usize) -> Self {
        PoolInner {
            frames: (0..capacity).map(|_| None).collect(),
            map: HashMap::with_capacity(capacity),
            // Reverse order so frames are handed out 0, 1, 2, … — the same
            // fill order the old linear scan produced.
            free: (0..capacity).rev().collect(),
            clock_hand: 0,
        }
    }
}

/// Sharded clock-replacement buffer pool.
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    shards: Vec<Mutex<PoolInner>>,
    capacity: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Single-shard pool holding at most `capacity` pages over `store`.
    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> Self {
        Self::new_sharded(store, capacity, 1)
    }

    /// Pool of `capacity` pages split across `shards` independent clock
    /// pools (shard of a page = `page_id % shards`). Capacity is distributed
    /// as evenly as possible; every shard gets at least one frame, so
    /// `capacity >= shards` is required.
    pub fn new_sharded(store: Arc<dyn PageStore>, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        assert!(shards > 0, "buffer pool needs at least one shard");
        assert!(capacity >= shards, "each shard needs at least one frame ({capacity} < {shards})");
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(PoolInner::with_capacity(base + usize::from(i < extra))))
            .collect();
        BufferPool { store, shards, capacity, stats: PoolStats::default() }
    }

    /// Pool capacity in pages (summed across shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independent shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Hit/miss counters, aggregated across all shards.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Mutex<PoolInner> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Allocate a fresh page in the store and install an empty page image in
    /// the pool.
    pub fn allocate(&self, record_width: u16) -> Result<PageId> {
        let id = self.store.allocate();
        let page = Page::new(record_width);
        // Persist immediately so a later miss can re-read it.
        self.store.write(id, &page)?;
        let mut inner = self.shard(id).lock();
        self.install(&mut inner, id, page)?;
        Ok(id)
    }

    /// Read a page through the pool, copying the result out.
    ///
    /// A copying API (rather than returning guards) keeps the pool trivially
    /// deadlock-free; the per-fetch copy is the same order of magnitude as
    /// the page-miss cost we are modeling and is charged to both hits and
    /// misses uniformly. Batch callers amortize the lock + map lookup by
    /// extracting many values under one `f`.
    pub fn read<T>(&self, id: PageId, f: impl FnOnce(&Page) -> T) -> Result<T> {
        let mut inner = self.shard(id).lock();
        if let Some(&frame_idx) = inner.map.get(&id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            let frame = inner.frames[frame_idx].as_mut().expect("mapped frame exists");
            frame.referenced = true;
            return Ok(f(&frame.page));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let page = self.store.read(id)?;
        let frame_idx = self.install(&mut inner, id, page)?;
        let frame = inner.frames[frame_idx].as_ref().expect("installed frame exists");
        Ok(f(&frame.page))
    }

    /// Mutate a page through the pool; the frame is marked dirty and written
    /// back on eviction or [`flush`](Self::flush).
    pub fn write<T>(&self, id: PageId, f: impl FnOnce(&mut Page) -> T) -> Result<T> {
        let mut inner = self.shard(id).lock();
        let frame_idx = if let Some(&idx) = inner.map.get(&id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            idx
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            let page = self.store.read(id)?;
            self.install(&mut inner, id, page)?
        };
        let frame = inner.frames[frame_idx].as_mut().expect("frame exists");
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write all dirty frames back to the store and [`PageStore::sync`] it,
    /// so a completed flush is an actual durability point (previously the
    /// written pages could still sit in the OS page cache at a crash).
    pub fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            let mut inner = shard.lock();
            for frame in inner.frames.iter_mut().flatten() {
                if frame.dirty {
                    self.store.write(frame.page_id, &frame.page)?;
                    frame.dirty = false;
                }
            }
        }
        self.store.sync()
    }

    /// Drop every cached frame (writing dirty ones back). Used by benchmarks
    /// to start from a cold cache.
    pub fn clear(&self) -> Result<()> {
        self.flush()?;
        for shard in &self.shards {
            let mut inner = shard.lock();
            let capacity = inner.frames.len();
            for frame in inner.frames.iter_mut() {
                *frame = None;
            }
            inner.map.clear();
            inner.free.clear();
            inner.free.extend((0..capacity).rev());
            inner.clock_hand = 0;
        }
        Ok(())
    }

    /// Install `page` into a frame of `inner`, evicting via the clock
    /// algorithm if necessary. Returns the frame index.
    fn install(&self, inner: &mut PoolInner, id: PageId, page: Page) -> Result<usize> {
        // Fast path: a free frame off the stack.
        if let Some(idx) = inner.free.pop() {
            inner.frames[idx] = Some(Frame { page_id: id, page, referenced: true, dirty: false });
            inner.map.insert(id, idx);
            return Ok(idx);
        }
        // Clock sweep: clear reference bits until a victim is found. Bounded
        // by two full sweeps.
        let cap = inner.frames.len();
        for _ in 0..2 * cap {
            let idx = inner.clock_hand;
            inner.clock_hand = (inner.clock_hand + 1) % cap;
            let frame = inner.frames[idx].as_mut().expect("no free frames at this point");
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            // Victim found.
            if frame.dirty {
                self.store.write(frame.page_id, &frame.page)?;
            }
            inner.map.remove(&frame.page_id);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            inner.frames[idx] = Some(Frame { page_id: id, page, referenced: true, dirty: false });
            inner.map.insert(id, idx);
            return Ok(idx);
        }
        unreachable!("clock sweep always finds a victim within two sweeps");
    }
}

/// Dropping the pool flushes dirty frames back to the store, best-effort.
///
/// Without this, every dirty frame still resident at drop was silently
/// discarded — on a file-backed store the rows were simply gone after
/// reopen. Errors are swallowed (there is nowhere to report them from a
/// destructor); paths that need guaranteed durability call
/// [`flush`](BufferPool::flush) explicitly and check the result.
impl Drop for BufferPool {
    fn drop(&mut self) {
        // hermit-lint: allow(error-swallow) destructors have nowhere to report; durable paths call flush() explicitly and check it (see the impl docs)
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::io::SimulatedPageStore;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(SimulatedPageStore::new()), cap)
    }

    fn sharded(cap: usize, shards: usize) -> BufferPool {
        BufferPool::new_sharded(Arc::new(SimulatedPageStore::new()), cap, shards)
    }

    #[test]
    fn read_through_and_hit() {
        let p = pool(4);
        let id = p.allocate(8).unwrap();
        p.write(id, |page| page.insert(&7u64.to_le_bytes()).unwrap()).unwrap();
        let v = p
            .read(id, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap()))
            .unwrap();
        assert_eq!(v, 7);
        // allocate() installs the page, so both accesses were hits.
        assert_eq!(p.stats().misses(), 0);
        assert!(p.stats().hits() >= 2);
    }

    #[test]
    fn eviction_and_writeback() {
        let p = pool(2);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate(8).unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |page| page.insert(&(i as u64).to_le_bytes()).unwrap()).unwrap();
        }
        // Pool holds 2 of 4 pages; reading them all forces misses + evictions.
        for (i, &id) in ids.iter().enumerate() {
            let v = p
                .read(id, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap()))
                .unwrap();
            assert_eq!(v, i as u64, "page {id} lost its dirty data across eviction");
        }
        assert!(p.stats().evictions() > 0);
        assert!(p.stats().misses() > 0);
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let store = Arc::new(SimulatedPageStore::new());
        let p = BufferPool::new(store.clone(), 2);
        let id = p.allocate(8).unwrap();
        p.write(id, |page| page.insert(&99u64.to_le_bytes()).unwrap()).unwrap();
        p.flush().unwrap();
        // Bypass the pool: the store must have the data.
        let raw = store.read(id).unwrap();
        assert_eq!(raw.get(0).unwrap(), &99u64.to_le_bytes());
    }

    #[test]
    fn dropped_pool_flushes_dirty_frames_to_the_store() {
        use crate::paged::io::FilePageStore;
        let dir = std::env::temp_dir().join(format!("hermit-pool-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let id = {
            let store = Arc::new(FilePageStore::create(&path).unwrap());
            let p = BufferPool::new(store, 4);
            let id = p.allocate(8).unwrap();
            p.write(id, |page| page.insert(&4_2u64.to_le_bytes()).unwrap()).unwrap();
            id
            // Pool dropped here with the frame still dirty — the Drop impl
            // must write it back (the old behavior lost the row entirely).
        };
        let store = FilePageStore::open(&path).unwrap();
        let page = store.read(id).unwrap();
        assert_eq!(
            page.get(0).unwrap(),
            &4_2u64.to_le_bytes(),
            "dirty frame dropped on the floor: row did not survive pool drop + reopen"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_cools_the_cache() {
        let p = pool(4);
        let id = p.allocate(8).unwrap();
        p.write(id, |page| page.insert(&1u64.to_le_bytes()).unwrap()).unwrap();
        p.clear().unwrap();
        p.stats().reset();
        p.read(id, |_| ()).unwrap();
        assert_eq!(p.stats().misses(), 1, "read after clear must miss");
    }

    #[test]
    fn capacity_one_pool_works() {
        let p = pool(1);
        let a = p.allocate(8).unwrap();
        let b = p.allocate(8).unwrap();
        p.write(a, |page| page.insert(&1u64.to_le_bytes()).unwrap()).unwrap();
        p.write(b, |page| page.insert(&2u64.to_le_bytes()).unwrap()).unwrap();
        let va =
            p.read(a, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap())).unwrap();
        let vb =
            p.read(b, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap())).unwrap();
        assert_eq!((va, vb), (1, 2));
    }

    #[test]
    fn sharded_pool_distributes_capacity() {
        let p = sharded(10, 4);
        assert_eq!(p.capacity(), 10);
        assert_eq!(p.shard_count(), 4);
        // 10 frames over 4 shards → 3 + 3 + 2 + 2.
        let sizes: Vec<usize> = p.shards.iter().map(|s| s.lock().frames.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn sharded_pool_roundtrips_across_shards() {
        let p = sharded(8, 4);
        let ids: Vec<PageId> = (0..16).map(|_| p.allocate(8).unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |page| page.insert(&(i as u64).to_le_bytes()).unwrap()).unwrap();
        }
        // Each shard holds 2 frames for 4 resident pages → forced evictions
        // inside every shard; data must survive the churn.
        for (i, &id) in ids.iter().enumerate() {
            let v = p
                .read(id, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap()))
                .unwrap();
            assert_eq!(v, i as u64, "page {id} lost data across sharded eviction");
        }
        assert!(p.stats().evictions() > 0);
    }

    #[test]
    fn sharded_stats_aggregate_across_shards() {
        let p = sharded(4, 4);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate(8).unwrap()).collect();
        p.stats().reset();
        // One read per page; pages 0..4 land in 4 distinct shards, and every
        // hit must show up in the shared counters.
        for &id in &ids {
            p.read(id, |_| ()).unwrap();
        }
        assert_eq!(p.stats().hits(), 4);
        assert_eq!(p.stats().misses(), 0);
        p.clear().unwrap();
        p.stats().reset();
        for &id in &ids {
            p.read(id, |_| ()).unwrap();
        }
        assert_eq!(p.stats().misses(), 4, "cold reads in every shard must all be counted");
    }

    #[test]
    fn clock_victim_rotation_single_shard() {
        // Capacity 3 with pages a,b,c resident, all reference bits set by
        // their installs. Installing d sweeps the clock: one full rotation
        // clears every bit, the hand wraps to frame 0 and evicts a. The
        // next install (e) resumes from frame 1 and evicts b — rotation, not
        // restart-from-zero.
        let p = pool(3);
        let a = p.allocate(8).unwrap();
        let b = p.allocate(8).unwrap();
        let c = p.allocate(8).unwrap();
        let d = p.allocate(8).unwrap();
        let e = p.allocate(8).unwrap();
        assert_eq!(p.stats().evictions(), 2);
        // Survivors c (bit cleared by d's sweep), d, and e are resident.
        p.stats().reset();
        for id in [c, d, e] {
            p.read(id, |_| ()).unwrap();
        }
        assert_eq!(p.stats().hits(), 3, "c/d/e must have survived the rotation");
        assert_eq!(p.stats().misses(), 0);
        // The rotation's victims were a then b.
        p.stats().reset();
        p.read(a, |_| ()).unwrap();
        p.read(b, |_| ()).unwrap();
        assert_eq!(p.stats().misses(), 2, "a and b must have been the clock victims");
    }

    #[test]
    fn free_list_fills_before_evicting() {
        let p = pool(4);
        for _ in 0..4 {
            p.allocate(8).unwrap();
        }
        assert_eq!(p.stats().evictions(), 0, "fills must use free frames, not evict");
        p.allocate(8).unwrap();
        assert_eq!(p.stats().evictions(), 1, "fifth install into 4 frames must evict");
    }

    #[test]
    #[should_panic(expected = "each shard needs at least one frame")]
    fn rejects_more_shards_than_frames() {
        let _ = sharded(2, 4);
    }

    #[test]
    fn concurrent_sharded_reads() {
        let p = std::sync::Arc::new(sharded(16, 4));
        let ids: Vec<PageId> = (0..32).map(|_| p.allocate(8).unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |page| page.insert(&(i as u64).to_le_bytes()).unwrap()).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = &p;
                let ids = &ids;
                s.spawn(move || {
                    for round in 0..50 {
                        for (i, &id) in ids.iter().enumerate().skip(t % 2).step_by(2) {
                            let v = p
                                .read(id, |page| {
                                    u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap())
                                })
                                .unwrap();
                            assert_eq!(v, i as u64, "thread {t} round {round}");
                        }
                    }
                });
            }
        });
        // 32 pages through 16 frames: plenty of concurrent churn.
        assert!(p.stats().evictions() > 0);
    }
}
