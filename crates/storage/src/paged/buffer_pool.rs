//! A clock-replacement buffer pool over a [`PageStore`].
//!
//! The disk experiment (§7.8) reconfigures PostgreSQL's buffer pool so the
//! B+-tree fits in memory while heap fetches still pay for page access; our
//! pool exposes the same knob (capacity in pages) plus hit/miss counters so
//! the benchmark harness can report the breakdown.

use super::io::PageStore;
use super::page::{Page, PageId};
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hit/miss/eviction counters for a buffer pool.
#[derive(Debug, Default)]
pub struct PoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PoolStats {
    /// Lookups served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to read from the store.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Pages evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

struct Frame {
    page_id: PageId,
    page: Page,
    referenced: bool,
    dirty: bool,
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    /// page id → frame index
    map: HashMap<PageId, usize>,
    clock_hand: usize,
}

/// Clock-replacement buffer pool.
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    inner: Mutex<PoolInner>,
    capacity: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Pool holding at most `capacity` pages over `store`.
    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            store,
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::with_capacity(capacity),
                clock_hand: 0,
            }),
            capacity,
            stats: PoolStats::default(),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Allocate a fresh page in the store and install an empty page image in
    /// the pool.
    pub fn allocate(&self, record_width: u16) -> Result<PageId> {
        let id = self.store.allocate();
        let page = Page::new(record_width);
        // Persist immediately so a later miss can re-read it.
        self.store.write(id, &page)?;
        let mut inner = self.inner.lock();
        self.install(&mut inner, id, page)?;
        Ok(id)
    }

    /// Read a page through the pool, copying the result out.
    ///
    /// A copying API (rather than returning guards) keeps the pool trivially
    /// deadlock-free; the per-fetch copy is the same order of magnitude as
    /// the page-miss cost we are modeling and is charged to both hits and
    /// misses uniformly.
    pub fn read<T>(&self, id: PageId, f: impl FnOnce(&Page) -> T) -> Result<T> {
        let mut inner = self.inner.lock();
        if let Some(&frame_idx) = inner.map.get(&id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            let frame = inner.frames[frame_idx].as_mut().expect("mapped frame exists");
            frame.referenced = true;
            return Ok(f(&frame.page));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let page = self.store.read(id)?;
        let frame_idx = self.install(&mut inner, id, page)?;
        let frame = inner.frames[frame_idx].as_ref().expect("installed frame exists");
        Ok(f(&frame.page))
    }

    /// Mutate a page through the pool; the frame is marked dirty and written
    /// back on eviction or [`flush`](Self::flush).
    pub fn write<T>(&self, id: PageId, f: impl FnOnce(&mut Page) -> T) -> Result<T> {
        let mut inner = self.inner.lock();
        let frame_idx = if let Some(&idx) = inner.map.get(&id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            idx
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            let page = self.store.read(id)?;
            self.install(&mut inner, id, page)?
        };
        let frame = inner.frames[frame_idx].as_mut().expect("frame exists");
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write all dirty frames back to the store.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter_mut().flatten() {
            if frame.dirty {
                self.store.write(frame.page_id, &frame.page)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every cached frame (writing dirty ones back). Used by benchmarks
    /// to start from a cold cache.
    pub fn clear(&self) -> Result<()> {
        self.flush()?;
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter_mut() {
            *frame = None;
        }
        inner.map.clear();
        inner.clock_hand = 0;
        Ok(())
    }

    /// Install `page` into a frame, evicting via the clock algorithm if
    /// necessary. Returns the frame index.
    fn install(&self, inner: &mut PoolInner, id: PageId, page: Page) -> Result<usize> {
        // Fast path: a free frame.
        if let Some(idx) = inner.frames.iter().position(|f| f.is_none()) {
            inner.frames[idx] = Some(Frame { page_id: id, page, referenced: true, dirty: false });
            inner.map.insert(id, idx);
            return Ok(idx);
        }
        // Clock sweep: clear reference bits until a victim is found. Bounded
        // by two full sweeps.
        let cap = inner.frames.len();
        for _ in 0..2 * cap {
            let idx = inner.clock_hand;
            inner.clock_hand = (inner.clock_hand + 1) % cap;
            let frame = inner.frames[idx].as_mut().expect("no free frames at this point");
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            // Victim found.
            if frame.dirty {
                self.store.write(frame.page_id, &frame.page)?;
            }
            inner.map.remove(&frame.page_id);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            inner.frames[idx] = Some(Frame { page_id: id, page, referenced: true, dirty: false });
            inner.map.insert(id, idx);
            return Ok(idx);
        }
        unreachable!("clock sweep always finds a victim within two sweeps");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::io::SimulatedPageStore;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(SimulatedPageStore::new()), cap)
    }

    #[test]
    fn read_through_and_hit() {
        let p = pool(4);
        let id = p.allocate(8).unwrap();
        p.write(id, |page| page.insert(&7u64.to_le_bytes()).unwrap()).unwrap();
        let v = p
            .read(id, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap()))
            .unwrap();
        assert_eq!(v, 7);
        // allocate() installs the page, so both accesses were hits.
        assert_eq!(p.stats().misses(), 0);
        assert!(p.stats().hits() >= 2);
    }

    #[test]
    fn eviction_and_writeback() {
        let p = pool(2);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate(8).unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |page| page.insert(&(i as u64).to_le_bytes()).unwrap()).unwrap();
        }
        // Pool holds 2 of 4 pages; reading them all forces misses + evictions.
        for (i, &id) in ids.iter().enumerate() {
            let v = p
                .read(id, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap()))
                .unwrap();
            assert_eq!(v, i as u64, "page {id} lost its dirty data across eviction");
        }
        assert!(p.stats().evictions() > 0);
        assert!(p.stats().misses() > 0);
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let store = Arc::new(SimulatedPageStore::new());
        let p = BufferPool::new(store.clone(), 2);
        let id = p.allocate(8).unwrap();
        p.write(id, |page| page.insert(&99u64.to_le_bytes()).unwrap()).unwrap();
        p.flush().unwrap();
        // Bypass the pool: the store must have the data.
        let raw = store.read(id).unwrap();
        assert_eq!(raw.get(0).unwrap(), &99u64.to_le_bytes());
    }

    #[test]
    fn clear_cools_the_cache() {
        let p = pool(4);
        let id = p.allocate(8).unwrap();
        p.write(id, |page| page.insert(&1u64.to_le_bytes()).unwrap()).unwrap();
        p.clear().unwrap();
        p.stats().reset();
        p.read(id, |_| ()).unwrap();
        assert_eq!(p.stats().misses(), 1, "read after clear must miss");
    }

    #[test]
    fn capacity_one_pool_works() {
        let p = pool(1);
        let a = p.allocate(8).unwrap();
        let b = p.allocate(8).unwrap();
        p.write(a, |page| page.insert(&1u64.to_le_bytes()).unwrap()).unwrap();
        p.write(b, |page| page.insert(&2u64.to_le_bytes()).unwrap()).unwrap();
        let va =
            p.read(a, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap())).unwrap();
        let vb =
            p.read(b, |page| u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap())).unwrap();
        assert_eq!((va, vb), (1, 2));
    }
}
